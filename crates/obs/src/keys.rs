//! The shared metric vocabulary.
//!
//! Every crate that emits into the observability layer uses these keys, so
//! a snapshot merged from any mix of engines, simulator, and sweep shards
//! has one consistent namespace: `updates.*` for the engine-side update
//! counters, `sim.*` for the machine model, `energy.*` for the energy
//! rollup, `run.*` for run-level aggregates, and bare phase names for the
//! time breakdown.

/// Vertex-state writes performed by engines (`UpdateCounters` total).
pub const STATE_WRITES: &str = "updates.state_writes";
/// Edges processed during propagation.
pub const EDGES_PROCESSED: &str = "updates.edges_processed";
/// Final writes of vertices whose value actually changed (Fig 3b/11).
pub const USEFUL_UPDATES: &str = "updates.useful";
/// Per-batch distribution of writes per touched vertex.
pub const WRITES_PER_VERTEX: &str = "updates.writes_per_vertex";

/// L1D hits.
pub const L1_HITS: &str = "sim.l1_hits";
/// L2 hits.
pub const L2_HITS: &str = "sim.l2_hits";
/// LLC hits.
pub const LLC_HITS: &str = "sim.llc_hits";
/// LLC misses (DRAM line reads).
pub const LLC_MISSES: &str = "sim.llc_misses";
/// Total accesses issued.
pub const ACCESSES: &str = "sim.accesses";
/// NoC hop·cycles.
pub const NOC_HOP_CYCLES: &str = "sim.noc_hop_cycles";
/// Coherence invalidations.
pub const INVALIDATIONS: &str = "sim.invalidations";
/// State-region LLC lines evicted or flushed.
pub const STATE_LINES: &str = "sim.state_lines";
/// 4 B words touched in those lines while resident.
pub const STATE_WORDS_TOUCHED: &str = "sim.state_words_touched";
/// Prefix for per-op counters (`sim.op.<snake_case_op>`).
pub const OP_PREFIX: &str = "sim.op.";
/// Prefix for per-region access counters (`sim.region.<snake_case_region>`).
pub const REGION_PREFIX: &str = "sim.region.";

/// DRAM bytes moved (reads + writebacks).
pub const DRAM_BYTES: &str = "sim.dram_bytes";
/// DRAM line reads.
pub const DRAM_READS: &str = "sim.dram_reads";

/// Core energy in nanojoules (gauge).
pub const ENERGY_CORE_NJ: &str = "energy.core_nj";
/// Cache-hierarchy energy in nanojoules (gauge).
pub const ENERGY_CACHE_NJ: &str = "energy.cache_nj";
/// NoC energy in nanojoules (gauge).
pub const ENERGY_NOC_NJ: &str = "energy.noc_nj";
/// DRAM energy in nanojoules (gauge).
pub const ENERGY_DRAM_NJ: &str = "energy.dram_nj";

/// Total simulated cycles of a run.
pub const RUN_CYCLES: &str = "run.cycles";
/// Update batches streamed.
pub const RUN_BATCHES: &str = "run.batches";
/// Engine label of a run.
pub const RUN_ENGINE: &str = "run.engine";
/// Algorithm label of a run.
pub const RUN_ALGO: &str = "run.algo";

/// The propagation phase (Fig 3a/10 "state propagation").
pub const PHASE_PROPAGATION: &str = "propagation";
/// Every other phase (batch application, tracking, scheduling).
pub const PHASE_OTHER: &str = "other";

/// Total records quarantined by lenient ingest. Emitted only when
/// non-zero so clean runs stay byte-identical to pre-quarantine snapshots.
pub const QUARANTINE_TOTAL: &str = "quarantine.total";
/// Quarantine per-reason counter: unparseable edge-list lines.
pub const QUARANTINE_MALFORMED_LINE: &str = "quarantine.malformed_line";
/// Quarantine per-reason counter: vertex ids overflowing `VertexId`.
pub const QUARANTINE_ID_OVERFLOW: &str = "quarantine.id_overflow";
/// Quarantine per-reason counter: reader failures mid-stream.
pub const QUARANTINE_IO_INTERRUPTED: &str = "quarantine.io_interrupted";
/// Quarantine per-reason counter: self-loop additions.
pub const QUARANTINE_SELF_LOOP: &str = "quarantine.self_loop";
/// Quarantine per-reason counter: add+delete conflicts within a batch.
pub const QUARANTINE_CONFLICTING_UPDATE: &str = "quarantine.conflicting_update";
/// Quarantine per-reason counter: NaN/±inf addition weights.
pub const QUARANTINE_NON_FINITE_WEIGHT: &str = "quarantine.non_finite_weight";
/// Quarantine per-reason counter: endpoints outside the vertex range.
pub const QUARANTINE_VERTEX_OUT_OF_BOUNDS: &str = "quarantine.vertex_out_of_bounds";
/// Quarantine per-reason counter: deletions of absent edges.
pub const QUARANTINE_ABSENT_DELETION: &str = "quarantine.absent_deletion";
/// Quarantine per-reason counter: wire lines cut short by connection loss
/// (EOF mid-line or a torn write at a crash).
pub const QUARANTINE_TRUNCATED_LINE: &str = "quarantine.truncated_line";
/// Quarantine per-reason counter: reasons added after this release
/// (`QuarantineReason` is `#[non_exhaustive]`; unknown variants roll up
/// here so old consumers keep counting instead of panicking).
pub const QUARANTINE_OTHER: &str = "quarantine.other";

/// Differential-oracle comparisons performed mid-run. Emitted only when
/// non-zero (i.e., `OracleMode::EveryNBatches` was active).
pub const ORACLE_CHECKS: &str = "oracle.checks";
/// Differential-oracle comparisons that found a mismatch.
pub const ORACLE_MISMATCHES: &str = "oracle.mismatches";

// ---------------------------------------------------------------------
// Graph-store keys (`storage.*`): tier occupancy and transitions of the
// degree-adaptive hybrid store. Like `quarantine.*`, the whole group is
// emitted only when non-zero — the CSR baseline has no tiers, so its
// snapshots stay byte-identical to the pre-storage-axis era.
// ---------------------------------------------------------------------

/// Vertices resident in the inline tier at the end of the run (gauge-like
/// counter, end-of-run value).
pub const STORAGE_TIER_INLINE: &str = "storage.tier.inline";
/// Vertices resident in the linear-buffer tier at the end of the run.
pub const STORAGE_TIER_LINEAR: &str = "storage.tier.linear";
/// Vertices resident in the hash-indexed tier at the end of the run.
pub const STORAGE_TIER_INDEXED: &str = "storage.tier.indexed";
/// Tier promotions performed over the whole run (inline→linear,
/// linear→indexed).
pub const STORAGE_PROMOTIONS: &str = "storage.promotions";
/// Tier demotions performed over the whole run (indexed→linear,
/// linear→inline).
pub const STORAGE_DEMOTIONS: &str = "storage.demotions";

/// Per-shard replay telemetry: access events replayed by a shard's
/// private-cache workers (host-parallel execution only).
pub const SHARD_EVENTS_REPLAYED: &str = "sim.shard.events_replayed";
/// Per-shard replay telemetry: boundary fill events a shard forwarded to
/// the sequential reduction pass.
pub const SHARD_BOUNDARY_FILLS: &str = "sim.shard.boundary_fills";
/// Per-shard replay telemetry: private-hit boundary touches a shard
/// forwarded to the reduction pass (pre-encoding event count).
pub const SHARD_BOUNDARY_TOUCHES: &str = "sim.shard.boundary_touches";
/// Per-shard replay telemetry: touch-stream bytes after the run's
/// boundary-event encoding (8 B/touch packed, 16 B/run run-length).
/// Thread-count and lane-count independent: runs never span a core's
/// stream, so totals depend only on the access schedule.
pub const SHARD_TOUCH_BYTES_ENCODED: &str = "sim.shard.touch_bytes_encoded";
/// Per-shard replay telemetry: directory invalidation candidates probed.
pub const SHARD_INVAL_PROBES: &str = "sim.shard.inval_probes";
/// Per-shard replay telemetry: invalidations that actually dropped a
/// private line.
pub const SHARD_INVALIDATIONS: &str = "sim.shard.invalidations";

// ---------------------------------------------------------------------
// Streaming-service keys (`serve.*`).
//
// All of these live in the *service-level* stats recorder, never in a
// tenant's session recorder: every one of them is timing- or
// deployment-dependent (close reasons, queue depths, crash recovery,
// shedding), and tenant snapshots must stay byte-identical to an offline
// replay of the recorded schedule. Grouped by subsystem:
//
// | group              | keys                                          |
// |--------------------|-----------------------------------------------|
// | batch forming      | `serve.batches_*`                             |
// | line intake        | `serve.lines_*`                               |
// | queue / tenancy    | `serve.queue_peak_depth`, `serve.tenants_*`   |
// | write-ahead log    | `serve.wal.*`                                 |
// | supervision        | `serve.supervision.*`                         |
// | overload shedding  | `serve.shed.*`                                |
// ---------------------------------------------------------------------

/// Batch forming: batches the batch former closed on reaching the size
/// threshold.
pub const SERVE_BATCHES_SIZE_CLOSED: &str = "serve.batches_size_closed";
/// Batch forming: batches the batch former closed on a latency deadline.
pub const SERVE_BATCHES_DEADLINE_CLOSED: &str = "serve.batches_deadline_closed";
/// Batch forming: batches flushed by client request or shutdown drain.
pub const SERVE_BATCHES_FLUSHED: &str = "serve.batches_flushed";

/// Line intake: wire lines accepted onto a tenant queue.
pub const SERVE_LINES_ACCEPTED: &str = "serve.lines_accepted";
/// Line intake: wire lines that failed to frame (quarantined as malformed
/// once their batch is ingested).
pub const SERVE_LINES_MALFORMED: &str = "serve.lines_malformed";
/// Line intake: wire lines cut short by connection loss — EOF mid-line or
/// a torn write — flushed as quarantined truncated fragments instead of
/// being dropped.
pub const SERVE_LINES_TRUNCATED: &str = "serve.lines_truncated";

/// Queue / tenancy: peak depth any tenant ingest queue reached (gauge;
/// must stay within the configured queue capacity).
pub const SERVE_QUEUE_PEAK_DEPTH: &str = "serve.queue_peak_depth";
/// Queue / tenancy: tenant sessions finished and reported.
pub const SERVE_TENANTS_FINISHED: &str = "serve.tenants_finished";

/// Write-ahead log: entries (raw wire lines and truncated fragments)
/// appended to a tenant WAL before entering its queue.
pub const SERVE_WAL_APPENDED_ENTRIES: &str = "serve.wal.appended_entries";
/// Write-ahead log: batch-close markers appended (one per closed batch).
pub const SERVE_WAL_BATCH_MARKS: &str = "serve.wal.batch_marks";
/// Write-ahead log: `fsync` calls issued (one per batch close; entry
/// appends are durable against process death, syncs add machine-crash
/// durability at batch granularity).
pub const SERVE_WAL_FSYNCS: &str = "serve.wal.fsyncs";
/// Write-ahead log: closed batches replayed from a recovered WAL through
/// the recorded-schedule machinery at daemon restart.
pub const SERVE_WAL_REPLAYED_BATCHES: &str = "serve.wal.replayed_batches";
/// Write-ahead log: entries contained in those replayed batches.
pub const SERVE_WAL_REPLAYED_ENTRIES: &str = "serve.wal.replayed_entries";
/// Write-ahead log: recovered un-batched tail entries re-fed into the
/// batch former at daemon restart.
pub const SERVE_WAL_TAIL_ENTRIES: &str = "serve.wal.tail_entries_recovered";
/// Write-ahead log: torn tail records (partial line at the crash point)
/// detected, dropped, and logged during recovery.
pub const SERVE_WAL_TORN_DROPPED: &str = "serve.wal.torn_records_dropped";
/// Write-ahead log: append/sync I/O failures (the service keeps serving;
/// durability is degraded and the failure is counted here).
pub const SERVE_WAL_IO_ERRORS: &str = "serve.wal.io_errors";

/// Supervision: engine-generation panics caught by the per-tenant
/// supervisor (includes panics re-hit while replaying after a restart).
pub const SERVE_SUPERVISION_PANICS: &str = "serve.supervision.panics_caught";
/// Supervision: wall-clock watchdog expiries — a generation exceeded the
/// per-batch deadline and was detached.
pub const SERVE_SUPERVISION_WATCHDOG: &str = "serve.supervision.watchdog_fired";
/// Supervision: generation restarts performed (bounded per tenant by the
/// supervision config).
pub const SERVE_SUPERVISION_RESTARTS: &str = "serve.supervision.restarts";
/// Supervision: tenants that finished `Recovered` — at least one restart,
/// final report produced from a full schedule replay.
pub const SERVE_SUPERVISION_RECOVERED: &str = "serve.supervision.tenants_recovered";
/// Supervision: tenants abandoned after exhausting the restart bound;
/// their reports carry the failure evidence instead of a result.
pub const SERVE_SUPERVISION_ABANDONED: &str = "serve.supervision.tenants_abandoned";

/// Overload shedding: data lines refused admission (total across
/// reasons); each shed line got an explicit `retry_after` reply.
pub const SERVE_SHED_LINES: &str = "serve.shed.lines";
/// Overload shedding: lines shed because the global unprocessed-entry
/// budget was saturated.
pub const SERVE_SHED_ENTRY_BUDGET: &str = "serve.shed.entry_budget";
/// Overload shedding: lines shed because the tenant's bounded queue was
/// at capacity (only when the overload policy opts out of blocking
/// backpressure).
pub const SERVE_SHED_QUEUE_FULL: &str = "serve.shed.queue_full";

/// Fleet coordinator: cells assigned to worker processes (re-assignments
/// after a reclaim count again).
pub const FLEET_CELLS_ASSIGNED: &str = "fleet.cells_assigned";
/// Fleet coordinator: cells whose results were accepted from a worker.
pub const FLEET_CELLS_REMOTE: &str = "fleet.cells_remote";
/// Fleet coordinator: cells the coordinator executed inline after the
/// worker pool degraded away (spawn failures, exhausted respawn budget,
/// or a cell exceeding its per-cell attempt bound).
pub const FLEET_CELLS_INLINE: &str = "fleet.cells_inline";
/// Fleet coordinator: cells restored from the lease log on restart
/// without re-executing.
pub const FLEET_CELLS_RESTORED: &str = "fleet.cells_restored";
/// Fleet coordinator: leases reclaimed because the worker's connection
/// died (process exit or crash).
pub const FLEET_RECLAIMS_DEAD: &str = "fleet.reclaims_dead";
/// Fleet coordinator: leases reclaimed because heartbeats stopped and the
/// wall-clock lease TTL expired (wedged worker).
pub const FLEET_RECLAIMS_EXPIRED: &str = "fleet.reclaims_expired";
/// Fleet coordinator: worker processes observed dead (disconnects).
pub const FLEET_WORKER_DEATHS: &str = "fleet.worker_deaths";
/// Fleet coordinator: replacement workers spawned after a death or wedge.
pub const FLEET_RESPAWNS: &str = "fleet.respawns";
/// Fleet coordinator: worker spawn attempts that failed (the fleet
/// degrades to fewer workers instead of aborting).
pub const FLEET_SPAWN_FAILURES: &str = "fleet.spawn_failures";
/// Fleet coordinator: results dropped because their lease fencing token
/// was stale — a reclaimed worker reported after its lease moved on.
pub const FLEET_STALE_RESULTS: &str = "fleet.stale_results";
/// Fleet coordinator: heartbeat events received from workers.
pub const FLEET_HEARTBEATS: &str = "fleet.heartbeats";
/// Fleet coordinator: torn final lines dropped while recovering the
/// lease log or checkpoint on restart.
pub const FLEET_TORN_TAILS: &str = "fleet.torn_tails_dropped";
