//! Structured trace events and their JSON-lines rendering.
//!
//! A [`TraceEvent`] is a named, flat record of typed fields. It renders as
//! one JSON line with the fields in insertion order, which is what makes
//! the rendering reproducible: the same event always produces the same
//! bytes. Wall-clock durations go in as [`Value::Wall`] so
//! [`TraceEvent::canonical_json_line`] can strip them — the canonical form
//! of an event stream is schedule-independent even though the full form
//! carries timings.

use std::fmt::Write as _;

/// A typed field value of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned counter or id.
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A ratio or measurement.
    F64(f64),
    /// A flag.
    Bool(bool),
    /// A label (escaped on rendering).
    Str(String),
    /// A wall-clock measurement (microseconds). Rendered like a number by
    /// [`TraceEvent::to_json_line`], omitted by
    /// [`TraceEvent::canonical_json_line`] — wall-clock time is
    /// schedule-dependent and never part of a determinism contract.
    Wall(u128),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A structured observability event: a name plus typed fields in insertion
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// A named event (rendered with a leading `"event":"<name>"` field).
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self { name, fields: Vec::new() }
    }

    /// An anonymous record: no `"event"` field, just the fields themselves
    /// (used for canonical cell records, whose format predates this crate
    /// and must stay byte-stable).
    #[must_use]
    pub fn record() -> Self {
        Self { name: "", fields: Vec::new() }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Appends a wall-clock field in microseconds (stripped from the
    /// canonical rendering).
    #[must_use]
    pub fn wall_micros(mut self, key: &'static str, micros: u128) -> Self {
        self.fields.push((key, Value::Wall(micros)));
        self
    }

    /// The event name (empty for anonymous records).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The fields in insertion order.
    #[must_use]
    pub fn fields(&self) -> &[(&'static str, Value)] {
        &self.fields
    }

    /// Looks up a field by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON line (no trailing newline), fields in
    /// insertion order, wall-clock fields included.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.render(true)
    }

    /// Renders the schedule-independent form: identical to
    /// [`TraceEvent::to_json_line`] minus every [`Value::Wall`] field.
    #[must_use]
    pub fn canonical_json_line(&self) -> String {
        self.render(false)
    }

    fn render(&self, include_wall: bool) -> String {
        let mut out = String::from("{");
        let mut first = true;
        if !self.name.is_empty() {
            let _ = write!(out, "\"event\":\"{}\"", json_escape(self.name));
            first = false;
        }
        for (key, value) in &self.fields {
            if matches!(value, Value::Wall(_)) && !include_wall {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{key}\":");
            match value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Str(v) => {
                    let _ = write!(out, "\"{}\"", json_escape(v));
                }
                Value::Wall(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Escapes a string for embedding in a JSON line: quotes, backslashes, and
/// newlines/tabs are escaped; other control characters become spaces.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_event_renders_fields_in_insertion_order() {
        let e = TraceEvent::new("cell_started")
            .field("cell", 3usize)
            .field("dataset", "AM")
            .field("ok", true);
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"cell_started\",\"cell\":3,\"dataset\":\"AM\",\"ok\":true}"
        );
    }

    #[test]
    fn anonymous_record_has_no_event_field() {
        let e = TraceEvent::record().field("cell", 0usize).field("verified", false);
        assert_eq!(e.to_json_line(), "{\"cell\":0,\"verified\":false}");
    }

    #[test]
    fn canonical_line_strips_wall_fields_only() {
        let e = TraceEvent::new("cell_finished")
            .field("cell", 1usize)
            .wall_micros("wall_micros", 12345)
            .field("verified", true);
        assert!(e.to_json_line().contains("\"wall_micros\":12345"));
        assert_eq!(
            e.canonical_json_line(),
            "{\"event\":\"cell_finished\",\"cell\":1,\"verified\":true}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::new("x").field("detail", "a \"b\"\nc\\d\u{1}");
        assert_eq!(e.to_json_line(), "{\"event\":\"x\",\"detail\":\"a \\\"b\\\"\\nc\\\\d \"}");
    }

    #[test]
    fn get_finds_fields() {
        let e = TraceEvent::new("x").field("cell", 7usize);
        assert_eq!(e.get("cell"), Some(&Value::U64(7)));
        assert_eq!(e.get("missing"), None);
    }
}
