//! Trace sinks: where [`TraceEvent`] streams go.
//!
//! A [`TraceSink`] is the shared-consumer side of the layer — sweep
//! progress, cell lifecycle, and any ad-hoc events flow through one. The
//! built-in sinks cover the common cases: [`JsonlSink`] renders each event
//! as one JSON line into any writer, [`VecSink`] buffers events for tests,
//! and any `Fn(&TraceEvent)` closure is a sink via the blanket impl.

use std::io::Write;
use std::sync::{Mutex, PoisonError};

use crate::event::TraceEvent;

/// Consumes a stream of trace events. Sinks are shared across worker
/// threads, so they take `&self` and must be `Send + Sync`; interior
/// mutability (usually a mutex around a writer or buffer) is the sink's
/// business.
pub trait TraceSink: Send + Sync {
    /// Receives one event. Ordering across threads is whatever the
    /// producers' schedule happens to be; per-producer ordering is
    /// preserved because each producer emits synchronously.
    fn emit(&self, event: &TraceEvent);
}

impl<F> TraceSink for F
where
    F: Fn(&TraceEvent) + Send + Sync,
{
    fn emit(&self, event: &TraceEvent) {
        self(event);
    }
}

/// An `Arc`'d sink is a sink, so a producer can keep one handle and hand
/// another to a runner (e.g. a shared [`VecSink`] inspected after a sweep).
impl<T: TraceSink + ?Sized> TraceSink for std::sync::Arc<T> {
    fn emit(&self, event: &TraceEvent) {
        (**self).emit(event);
    }
}

/// Renders each event as one JSON line into a writer.
///
/// In full mode (the default) lines include wall-clock fields; in canonical
/// mode they use [`TraceEvent::canonical_json_line`], producing a
/// schedule-independent stream. Write errors are swallowed — tracing must
/// never take down the run it is observing.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
    canonical: bool,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing full lines (wall-clock fields included).
    #[must_use]
    pub fn new(writer: W) -> Self {
        Self { writer: Mutex::new(writer), canonical: false }
    }

    /// A sink writing canonical lines (wall-clock fields stripped).
    #[must_use]
    pub fn canonical(writer: W) -> Self {
        Self { writer: Mutex::new(writer), canonical: true }
    }

    /// Flushes and returns the writer.
    #[must_use]
    pub fn into_inner(self) -> W {
        let mut writer = self.writer.into_inner().unwrap_or_else(PoisonError::into_inner);
        let _ = writer.flush();
        writer
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: &TraceEvent) {
        let line = if self.canonical { event.canonical_json_line() } else { event.to_json_line() };
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(writer, "{line}");
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("canonical", &self.canonical).finish_non_exhaustive()
    }
}

/// Buffers every event in memory — the test sink.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered events, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Drains and returns the buffered events.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// The buffered events rendered as full JSON lines.
    #[must_use]
    pub fn json_lines(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(TraceEvent::to_json_line)
            .collect()
    }

    /// The buffered events rendered as canonical (schedule-independent)
    /// JSON lines.
    #[must_use]
    pub fn canonical_lines(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(TraceEvent::canonical_json_line)
            .collect()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for VecSink {
    fn emit(&self, event: &TraceEvent) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&TraceEvent::new("a").field("x", 1u64));
        sink.emit(&TraceEvent::new("b").wall_micros("wall_micros", 9));
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, "{\"event\":\"a\",\"x\":1}\n{\"event\":\"b\",\"wall_micros\":9}\n");
    }

    #[test]
    fn canonical_sink_strips_wall_fields() {
        let sink = JsonlSink::canonical(Vec::new());
        sink.emit(&TraceEvent::new("b").field("x", 1u64).wall_micros("wall_micros", 9));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, "{\"event\":\"b\",\"x\":1}\n");
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let sink = VecSink::new();
        assert!(sink.is_empty());
        sink.emit(&TraceEvent::new("a"));
        sink.emit(&TraceEvent::new("b"));
        assert_eq!(sink.len(), 2);
        let names: Vec<_> = sink.events().iter().map(|e| e.name()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn closures_are_sinks() {
        let count = std::sync::atomic::AtomicUsize::new(0);
        let sink = |_e: &TraceEvent| {
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        };
        let dyn_sink: &dyn TraceSink = &sink;
        dyn_sink.emit(&TraceEvent::new("a"));
        dyn_sink.emit(&TraceEvent::new("b"));
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
