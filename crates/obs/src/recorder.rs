//! The emission API: the [`Recorder`] trait, the no-op [`NullRecorder`],
//! and the hot-path [`RecorderHandle`].

use crate::event::TraceEvent;

/// Receives instrumentation as it happens.
///
/// Implementations decide what to keep: [`crate::MemoryRecorder`]
/// aggregates into a deterministic [`crate::Snapshot`];
/// [`NullRecorder`] discards everything and reports itself disabled so
/// callers can skip emission entirely.
pub trait Recorder {
    /// Whether emissions reach anything. Hot paths consult this once and
    /// skip all emission work when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the counter named `key`.
    fn counter(&mut self, key: &'static str, delta: u64);

    /// Sets the gauge named `key` (last write wins; merging sums).
    fn gauge(&mut self, key: &'static str, value: f64);

    /// Attaches a label (last write wins).
    fn label(&mut self, key: &'static str, value: &str);

    /// Opens a span for `phase`; wall-clock attribution starts now.
    fn span_enter(&mut self, phase: &'static str);

    /// Closes the innermost open span for `phase`, attributing `cycles` of
    /// simulated time (wall-clock time is measured by the recorder).
    fn span_exit(&mut self, phase: &'static str, cycles: u64);

    /// Records `value` into the histogram named `key`.
    fn histogram(&mut self, key: &'static str, value: u64);

    /// Emits a structured trace event.
    fn event(&mut self, event: &TraceEvent);
}

/// The disabled recorder: every method is a no-op the optimizer removes,
/// and [`Recorder::enabled`] is `false` so instrumented code can skip
/// emission without even a virtual call (see [`RecorderHandle`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn counter(&mut self, _key: &'static str, _delta: u64) {}

    #[inline(always)]
    fn gauge(&mut self, _key: &'static str, _value: f64) {}

    #[inline(always)]
    fn label(&mut self, _key: &'static str, _value: &str) {}

    #[inline(always)]
    fn span_enter(&mut self, _phase: &'static str) {}

    #[inline(always)]
    fn span_exit(&mut self, _phase: &'static str, _cycles: u64) {}

    #[inline(always)]
    fn histogram(&mut self, _key: &'static str, _value: u64) {}

    #[inline(always)]
    fn event(&mut self, _event: &TraceEvent) {}
}

/// The form instrumented hot paths hold a recorder in.
///
/// A handle over a disabled recorder stores [`None`], so every emission
/// reduces to one predictable branch — no virtual call, no argument
/// marshalling. This is what lets `BatchCtx` forward every state write and
/// edge touch without measurably slowing the propagation path when tracing
/// is off (the criterion smoke in `tdgraph-bench` asserts it).
#[derive(Default)]
pub struct RecorderHandle<'a> {
    inner: Option<&'a mut dyn Recorder>,
}

impl std::fmt::Debug for RecorderHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecorderHandle").field("enabled", &self.is_enabled()).finish()
    }
}

impl<'a> RecorderHandle<'a> {
    /// A handle that forwards to `recorder` — unless the recorder reports
    /// itself disabled, in which case the handle is empty and emissions
    /// cost one branch.
    #[must_use]
    pub fn new(recorder: &'a mut dyn Recorder) -> Self {
        if recorder.enabled() {
            Self { inner: Some(recorder) }
        } else {
            Self { inner: None }
        }
    }

    /// The no-op handle.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether emissions reach a live recorder.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Re-borrows the handle for a narrower scope.
    #[must_use]
    pub fn reborrow(&mut self) -> RecorderHandle<'_> {
        match &mut self.inner {
            Some(r) => RecorderHandle { inner: Some(*r) },
            None => RecorderHandle { inner: None },
        }
    }

    /// Forwards [`Recorder::counter`].
    #[inline]
    pub fn counter(&mut self, key: &'static str, delta: u64) {
        if let Some(r) = &mut self.inner {
            r.counter(key, delta);
        }
    }

    /// Forwards [`Recorder::gauge`].
    #[inline]
    pub fn gauge(&mut self, key: &'static str, value: f64) {
        if let Some(r) = &mut self.inner {
            r.gauge(key, value);
        }
    }

    /// Forwards [`Recorder::label`].
    #[inline]
    pub fn label(&mut self, key: &'static str, value: &str) {
        if let Some(r) = &mut self.inner {
            r.label(key, value);
        }
    }

    /// Forwards [`Recorder::span_enter`].
    #[inline]
    pub fn span_enter(&mut self, phase: &'static str) {
        if let Some(r) = &mut self.inner {
            r.span_enter(phase);
        }
    }

    /// Forwards [`Recorder::span_exit`].
    #[inline]
    pub fn span_exit(&mut self, phase: &'static str, cycles: u64) {
        if let Some(r) = &mut self.inner {
            r.span_exit(phase, cycles);
        }
    }

    /// Forwards [`Recorder::histogram`].
    #[inline]
    pub fn histogram(&mut self, key: &'static str, value: u64) {
        if let Some(r) = &mut self.inner {
            r.histogram(key, value);
        }
    }

    /// Forwards [`Recorder::event`].
    #[inline]
    pub fn event(&mut self, event: &TraceEvent) {
        if let Some(r) = &mut self.inner {
            r.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MemoryRecorder;

    #[test]
    fn null_recorder_reports_disabled() {
        assert!(!NullRecorder.enabled());
        let mut null = NullRecorder;
        let handle = RecorderHandle::new(&mut null);
        assert!(!handle.is_enabled(), "a handle over NullRecorder must be empty");
    }

    #[test]
    fn disabled_handle_drops_everything() {
        let mut h = RecorderHandle::disabled();
        h.counter("k", 1);
        h.span_enter("p");
        h.span_exit("p", 10);
        h.histogram("h", 3);
        h.event(&TraceEvent::new("e"));
        assert!(!h.is_enabled());
    }

    #[test]
    fn live_handle_forwards() {
        let mut mem = MemoryRecorder::new();
        {
            let mut h = RecorderHandle::new(&mut mem);
            assert!(h.is_enabled());
            h.counter("k", 2);
            h.counter("k", 3);
            let mut narrow = h.reborrow();
            narrow.counter("k", 5);
        }
        assert_eq!(mem.snapshot().counter("k"), 10);
    }
}
