//! # tdgraph-obs — the unified observability layer.
//!
//! Every figure of the paper's evaluation is a derived metric: the
//! useful/useless update split (Fig 3b/11), phase-time breakdowns (Fig
//! 3a/10), cache/NoC/DRAM traffic (Fig 15–18), and energy (Fig 19). Before
//! this crate the reproduction computed those through three disconnected
//! surfaces — `UpdateCounters`/`RunMetrics` in the engines crate,
//! `MachineStats` in the simulator, and the sweep runner's ad-hoc
//! JSON-lines progress events. This crate is the one instrumentation
//! substrate they all emit into:
//!
//! * [`Recorder`] — the emission trait: named counters, per-phase spans
//!   (cycle *and* wall-clock attribution), and value histograms.
//! * [`NullRecorder`] / [`RecorderHandle`] — the disabled path. A handle
//!   built from [`RecorderHandle::disabled`] reduces every hot-path
//!   emission to one branch on an [`Option`], so instrumented code pays
//!   nothing when tracing is off.
//! * [`MemoryRecorder`] / [`Snapshot`] — the in-memory sink. A snapshot
//!   stores everything in ordered maps, so two snapshots built from the
//!   same events in any interleaving render byte-identically.
//! * [`ShardedRecorder`] — per-thread shards (one per sweep cell) that
//!   merge deterministically in shard-key order, independent of how many
//!   worker threads produced them.
//! * [`TraceEvent`] / [`TraceSink`] — structured events rendered as JSON
//!   lines. The sweep runner's progress events (`cell_started`,
//!   `cell_failed`, `cell_restored`, …) are ordinary trace events, and
//!   [`TraceEvent::canonical_json_line`] strips wall-clock fields so event
//!   streams can be compared across schedules.
//!
//! The domain crates keep their dense accumulators (`MachineStats`,
//! `UpdateCounters`) as hot-path representations, export them into a
//! [`Snapshot`] at phase/run boundaries, and derive their public metric
//! types *from* the snapshot — the snapshot is the source of truth.

// Robustness gate: non-test observability code must never unwrap/expect —
// a tracing layer must not be able to take the system down (enforced by CI
// clippy, same as the engines and facade crates).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod keys;
pub mod recorder;
pub mod sharded;
pub mod sink;
pub mod snapshot;

pub use event::{TraceEvent, Value};
pub use recorder::{NullRecorder, Recorder, RecorderHandle};
pub use sharded::{ShardRecorder, ShardedRecorder};
pub use sink::{JsonlSink, TraceSink, VecSink};
pub use snapshot::{Histogram, MemoryRecorder, PhaseTotals, Snapshot};
