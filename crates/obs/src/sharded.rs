//! Per-thread sharded recording with deterministic merging.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use crate::recorder::Recorder;
use crate::snapshot::{MemoryRecorder, Snapshot};
use crate::TraceEvent;

/// A recorder shared across worker threads without hot-path locking.
///
/// Each unit of parallel work (a sweep cell, a worker) takes its own
/// [`ShardRecorder`] keyed by a stable `u64` — typically the cell index.
/// The shard accumulates into a private [`MemoryRecorder`] with no
/// synchronization at all; the shared map is locked exactly once, when the
/// shard is finished (or dropped).
///
/// Merging walks shards in key order and snapshot contents in key order,
/// so the merged [`Snapshot`] — and any rendering of it — is byte-identical
/// no matter how many threads produced the shards or in what order they
/// finished. This is the property the sweep determinism tests pin down.
#[derive(Debug, Default)]
pub struct ShardedRecorder {
    shards: Mutex<BTreeMap<u64, Snapshot>>,
}

impl ShardedRecorder {
    /// An empty sharded recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the shard for `key`. Dropping the returned recorder (or
    /// calling [`ShardRecorder::finish`]) folds its snapshot into this
    /// recorder; recording itself never locks.
    #[must_use]
    pub fn shard(&self, key: u64) -> ShardRecorder<'_> {
        ShardRecorder { parent: self, key, inner: Some(MemoryRecorder::new()) }
    }

    /// Folds a ready-made snapshot into the shard for `key` (restored
    /// checkpoint cells use this — they have a snapshot but never ran).
    pub fn absorb(&self, key: u64, snapshot: Snapshot) {
        let mut shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        shards.entry(key).or_default().merge_from(&snapshot);
    }

    /// Number of shards recorded so far.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// The per-shard snapshots in key order.
    #[must_use]
    pub fn shard_snapshots(&self) -> Vec<(u64, Snapshot)> {
        let shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        shards.iter().map(|(&k, v)| (k, v.clone())).collect()
    }

    /// The snapshot for one shard, if it recorded anything.
    #[must_use]
    pub fn shard_snapshot(&self, key: u64) -> Option<Snapshot> {
        let shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        shards.get(&key).cloned()
    }

    /// Merges every shard, in key order, into one snapshot.
    #[must_use]
    pub fn merged(&self) -> Snapshot {
        let shards = self.shards.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Snapshot::new();
        for snapshot in shards.values() {
            out.merge_from(snapshot);
        }
        out
    }
}

/// One shard of a [`ShardedRecorder`]: a private, lock-free recorder whose
/// contents fold into the parent when finished or dropped.
#[derive(Debug)]
pub struct ShardRecorder<'p> {
    parent: &'p ShardedRecorder,
    key: u64,
    inner: Option<MemoryRecorder>,
}

impl ShardRecorder<'_> {
    /// The shard key.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Folds the shard into the parent now (instead of at drop).
    pub fn finish(mut self) {
        self.fold();
    }

    fn fold(&mut self) {
        if let Some(inner) = self.inner.take() {
            self.parent.absorb(self.key, inner.into_snapshot());
        }
    }
}

impl Drop for ShardRecorder<'_> {
    fn drop(&mut self) {
        self.fold();
    }
}

impl Recorder for ShardRecorder<'_> {
    fn counter(&mut self, key: &'static str, delta: u64) {
        if let Some(inner) = &mut self.inner {
            inner.counter(key, delta);
        }
    }

    fn gauge(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.gauge(key, value);
        }
    }

    fn label(&mut self, key: &'static str, value: &str) {
        if let Some(inner) = &mut self.inner {
            inner.label(key, value);
        }
    }

    fn span_enter(&mut self, phase: &'static str) {
        if let Some(inner) = &mut self.inner {
            inner.span_enter(phase);
        }
    }

    fn span_exit(&mut self, phase: &'static str, cycles: u64) {
        if let Some(inner) = &mut self.inner {
            inner.span_exit(phase, cycles);
        }
    }

    fn histogram(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.histogram(key, value);
        }
    }

    fn event(&mut self, event: &TraceEvent) {
        if let Some(inner) = &mut self.inner {
            inner.event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_fold_on_drop() {
        let sharded = ShardedRecorder::new();
        {
            let mut shard = sharded.shard(0);
            shard.counter("k", 5);
        }
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.merged().counter("k"), 5);
    }

    #[test]
    fn merge_order_is_key_order_not_completion_order() {
        let run = |keys: &[u64]| {
            let sharded = ShardedRecorder::new();
            for &k in keys {
                let mut shard = sharded.shard(k);
                shard.counter("cells", 1);
                shard.histogram("cycles", 100 * (k + 1));
                shard.finish();
            }
            sharded.merged().canonical_json_line()
        };
        assert_eq!(run(&[0, 1, 2, 3]), run(&[3, 1, 0, 2]));
    }

    #[test]
    fn parallel_shards_merge_deterministically() {
        let run = |threads: usize| {
            let sharded = ShardedRecorder::new();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let sharded = &sharded;
                    scope.spawn(move || {
                        for key in (t as u64..8).step_by(threads) {
                            let mut shard = sharded.shard(key);
                            shard.counter("work", key + 1);
                            shard.span_exit("p", 10 * key);
                        }
                    });
                }
            });
            sharded.merged()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert_eq!(one.canonical_json_line(), four.canonical_json_line());
        assert_eq!(one.counter("work"), (1..=8).sum::<u64>());
    }

    #[test]
    fn absorb_merges_into_existing_shard() {
        let sharded = ShardedRecorder::new();
        let mut snap = Snapshot::new();
        snap.add_counter("k", 3);
        sharded.absorb(7, snap.clone());
        sharded.absorb(7, snap);
        assert_eq!(sharded.shard_snapshot(7).unwrap().counter("k"), 6);
        assert!(sharded.shard_snapshot(8).is_none());
    }
}
