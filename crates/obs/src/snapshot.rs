//! Deterministic in-memory aggregation: [`MemoryRecorder`] and the
//! [`Snapshot`] it produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::event::json_escape;
use crate::recorder::Recorder;
use crate::TraceEvent;

/// Aggregated totals of one phase across all of its spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Number of closed spans.
    pub count: u64,
    /// Simulated cycles attributed at span exit.
    pub cycles: u64,
    /// Wall-clock nanoseconds between enter and exit (schedule-dependent;
    /// excluded from the canonical rendering).
    pub wall_nanos: u128,
}

/// Summary histogram: count, sum, and extrema of the recorded values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The in-memory result of a recording session.
///
/// Everything lives in ordered maps keyed by `&'static str`, so iteration
/// order — and therefore every rendering — depends only on the recorded
/// keys, never on emission order or thread interleaving. `RunMetrics` and
/// `MachineStats` are reconstructed *from* snapshots (see their
/// `from_snapshot` constructors); this struct is the layer the figures
/// ultimately read.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    labels: BTreeMap<&'static str, String>,
    phases: BTreeMap<&'static str, PhaseTotals>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `key` (0 when never incremented).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The gauge named `key`.
    #[must_use]
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// The label named `key`.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }

    /// The phase totals for `phase`.
    #[must_use]
    pub fn phase(&self, phase: &str) -> Option<&PhaseTotals> {
        self.phases.get(phase)
    }

    /// The histogram named `key`.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All phases in key order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, &PhaseTotals)> + '_ {
        self.phases.iter().map(|(&k, v)| (k, v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.labels.is_empty()
            && self.phases.is_empty()
            && self.histograms.is_empty()
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, key: &'static str, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Sets a label.
    pub fn set_label(&mut self, key: &'static str, value: impl Into<String>) {
        self.labels.insert(key, value.into());
    }

    /// Adds a closed span to a phase.
    pub fn add_span(&mut self, phase: &'static str, cycles: u64, wall_nanos: u128) {
        let totals = self.phases.entry(phase).or_default();
        totals.count += 1;
        totals.cycles += cycles;
        totals.wall_nanos += wall_nanos;
    }

    /// Records a histogram value.
    pub fn add_histogram(&mut self, key: &'static str, value: u64) {
        self.histograms.entry(key).or_default().record(value);
    }

    /// Merges `other` into this snapshot: counters, spans, and histograms
    /// accumulate; gauges sum (they are per-shard quantities like energy);
    /// labels take `other`'s value on conflict.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.gauges {
            *self.gauges.entry(key).or_insert(0.0) += v;
        }
        for (&key, v) in &other.labels {
            self.labels.insert(key, v.clone());
        }
        for (&key, v) in &other.phases {
            let totals = self.phases.entry(key).or_default();
            totals.count += v.count;
            totals.cycles += v.cycles;
            totals.wall_nanos += v.wall_nanos;
        }
        for (&key, v) in &other.histograms {
            self.histograms.entry(key).or_default().merge_from(v);
        }
    }

    /// Replays the snapshot into a recorder (counters, gauges, labels,
    /// spans as zero-wall entries, histogram summaries as one event each).
    pub fn replay_into(&self, recorder: &mut dyn Recorder) {
        for (&key, &v) in &self.counters {
            recorder.counter(key, v);
        }
        for (&key, &v) in &self.gauges {
            recorder.gauge(key, v);
        }
        for (&key, v) in &self.labels {
            recorder.label(key, v);
        }
        for (&key, v) in &self.phases {
            recorder.span_enter(key);
            recorder.span_exit(key, v.cycles);
        }
        for (&key, v) in &self.histograms {
            recorder.event(
                &TraceEvent::new("histogram")
                    .field("key", key)
                    .field("count", v.count)
                    .field("sum", v.sum)
                    .field("min", v.min)
                    .field("max", v.max),
            );
        }
    }

    /// Renders the snapshot as one canonical JSON line: keys sorted,
    /// wall-clock excluded, so two equal snapshots render byte-identically
    /// regardless of how they were produced.
    #[must_use]
    pub fn canonical_json_line(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(key));
        }
        out.push_str("},\"gauges\":{");
        for (i, (key, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(key));
        }
        out.push_str("},\"labels\":{");
        for (i, (key, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(key), json_escape(v));
        }
        out.push_str("},\"phases\":{");
        for (i, (key, v)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"cycles\":{}}}",
                json_escape(key),
                v.count,
                v.cycles
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json_escape(key),
                v.count,
                v.sum,
                v.min,
                v.max
            );
        }
        out.push_str("}}");
        out
    }

    /// Parses a line produced by [`Snapshot::canonical_json_line`] back
    /// into a snapshot — the inverse used when a snapshot crosses a
    /// process boundary (fleet workers ship their cell snapshots to the
    /// coordinator as canonical lines).
    ///
    /// Round-trip contract: for any snapshot `s`,
    /// `Snapshot::parse_canonical(&s.canonical_json_line())` is equal to
    /// `s` up to the wall-clock nanoseconds the canonical rendering
    /// deliberately excludes — so re-rendering the parsed snapshot
    /// reproduces the input line byte for byte (integer values exactly,
    /// gauges via `f64`'s round-tripping `Display`).
    ///
    /// Keys become `&'static str` through a process-wide interner; the
    /// interned set only grows with *distinct* keys, which are drawn from
    /// the finite [`crate::keys`] vocabulary in practice.
    ///
    /// # Errors
    ///
    /// A human-readable reason when `line` is not a canonical snapshot
    /// rendering.
    pub fn parse_canonical(line: &str) -> Result<Self, String> {
        let mut cur = Cursor { s: line.trim(), pos: 0 };
        let mut snap = Snapshot::new();
        cur.eat("{\"counters\":{")?;
        cur.entries(|cur, key| {
            let v = cur.number_token()?;
            let v = v.parse::<u64>().map_err(|e| format!("counter {key:?}: {e}"))?;
            snap.counters.insert(intern(&key), v);
            Ok(())
        })?;
        cur.eat(",\"gauges\":{")?;
        cur.entries(|cur, key| {
            let v = cur.number_token()?;
            let v = v.parse::<f64>().map_err(|e| format!("gauge {key:?}: {e}"))?;
            snap.gauges.insert(intern(&key), v);
            Ok(())
        })?;
        cur.eat(",\"labels\":{")?;
        cur.entries(|cur, key| {
            let v = cur.string()?;
            snap.labels.insert(intern(&key), v);
            Ok(())
        })?;
        cur.eat(",\"phases\":{")?;
        cur.entries(|cur, key| {
            cur.eat("{\"count\":")?;
            let count = cur.u64_field()?;
            cur.eat(",\"cycles\":")?;
            let cycles = cur.u64_field()?;
            cur.eat("}")?;
            snap.phases.insert(intern(&key), PhaseTotals { count, cycles, wall_nanos: 0 });
            Ok(())
        })?;
        cur.eat(",\"histograms\":{")?;
        cur.entries(|cur, key| {
            cur.eat("{\"count\":")?;
            let count = cur.u64_field()?;
            cur.eat(",\"sum\":")?;
            let sum = cur.u64_field()?;
            cur.eat(",\"min\":")?;
            let min = cur.u64_field()?;
            cur.eat(",\"max\":")?;
            let max = cur.u64_field()?;
            cur.eat("}")?;
            snap.histograms.insert(intern(&key), Histogram { count, sum, min, max });
            Ok(())
        })?;
        cur.eat("}")?;
        if cur.pos != cur.s.len() {
            return Err(format!("trailing bytes after snapshot at offset {}", cur.pos));
        }
        Ok(snap)
    }
}

/// Interns a parsed key so it can live in the `&'static str`-keyed maps.
/// Each distinct key leaks exactly once, process-wide.
fn intern(key: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&existing) = set.get(key) {
        return existing;
    }
    let leaked: &'static str = Box::leak(key.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// A tiny cursor over one canonical snapshot line. The grammar is the
/// exact output of [`Snapshot::canonical_json_line`] — no whitespace, no
/// reordering — so the parser can demand literals instead of tolerating
/// general JSON.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl Cursor<'_> {
    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at offset {}", self.pos))
        }
    }

    fn peek(&self) -> Option<char> {
        self.s[self.pos..].chars().next()
    }

    /// Parses the `"key":value` entries of one section, up to and
    /// including the closing `}`.
    fn entries(
        &mut self,
        mut entry: impl FnMut(&mut Self, String) -> Result<(), String>,
    ) -> Result<(), String> {
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.eat(":")?;
            entry(self, key)?;
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    /// Parses a quoted string, undoing [`json_escape`]'s escapes.
    fn string(&mut self) -> Result<String, String> {
        self.eat("\"")?;
        let mut out = String::new();
        let mut chars = self.s[self.pos..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, other)) => return Err(format!("bad escape '\\{other}'")),
                    None => return Err("dangling escape".to_string()),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    /// The raw token up to the next `,` or `}` (numbers never contain
    /// either).
    fn number_token(&mut self) -> Result<&str, String> {
        let rest = &self.s[self.pos..];
        let end = rest
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated value at offset {}", self.pos))?;
        if end == 0 {
            return Err(format!("empty value at offset {}", self.pos));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn u64_field(&mut self) -> Result<u64, String> {
        let pos = self.pos;
        let token = self.number_token()?;
        token.parse::<u64>().map_err(|e| format!("bad integer at offset {pos}: {e}"))
    }
}

/// A [`Recorder`] that aggregates everything into a [`Snapshot`].
///
/// Spans nest: `span_enter`/`span_exit` pairs may be stacked, and exits
/// close the innermost open span of the named phase. Events are kept in
/// emission order (they carry their own ordering contract; see the sweep
/// determinism tests).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    snapshot: Snapshot,
    open_spans: Vec<(&'static str, Instant)>,
    events: Vec<TraceEvent>,
}

impl MemoryRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The snapshot so far.
    #[must_use]
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Consumes the recorder, closing any still-open spans with zero
    /// cycles, and returns the snapshot.
    #[must_use]
    pub fn into_snapshot(mut self) -> Snapshot {
        while let Some((phase, started)) = self.open_spans.pop() {
            self.snapshot.add_span(phase, 0, started.elapsed().as_nanos());
        }
        self.snapshot
    }

    /// Structured events received, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&mut self, key: &'static str, delta: u64) {
        self.snapshot.add_counter(key, delta);
    }

    fn gauge(&mut self, key: &'static str, value: f64) {
        self.snapshot.set_gauge(key, value);
    }

    fn label(&mut self, key: &'static str, value: &str) {
        self.snapshot.set_label(key, value);
    }

    fn span_enter(&mut self, phase: &'static str) {
        self.open_spans.push((phase, Instant::now()));
    }

    fn span_exit(&mut self, phase: &'static str, cycles: u64) {
        // Close the innermost open span of this phase; an unmatched exit
        // still counts the cycles (zero wall) rather than being lost.
        let open = self.open_spans.iter().rposition(|(p, _)| *p == phase);
        let wall = match open {
            Some(i) => self.open_spans.remove(i).1.elapsed().as_nanos(),
            None => 0,
        };
        self.snapshot.add_span(phase, cycles, wall);
    }

    fn histogram(&mut self, key: &'static str, value: u64) {
        self.snapshot.add_histogram(key, value);
    }

    fn event(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MemoryRecorder::new();
        r.counter("a", 1);
        r.counter("a", 2);
        r.counter("b", 10);
        assert_eq!(r.snapshot().counter("a"), 3);
        assert_eq!(r.snapshot().counter("b"), 10);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn spans_attribute_cycles_and_wall() {
        let mut r = MemoryRecorder::new();
        r.span_enter("propagation");
        r.span_exit("propagation", 100);
        r.span_enter("propagation");
        r.span_exit("propagation", 50);
        let snap = r.into_snapshot();
        let p = snap.phase("propagation").unwrap();
        assert_eq!(p.count, 2);
        assert_eq!(p.cycles, 150);
    }

    #[test]
    fn unmatched_span_exit_still_counts_cycles() {
        let mut r = MemoryRecorder::new();
        r.span_exit("other", 42);
        assert_eq!(r.snapshot().phase("other").unwrap().cycles, 42);
    }

    #[test]
    fn histograms_track_extrema() {
        let mut r = MemoryRecorder::new();
        for v in [5u64, 1, 9, 3] {
            r.histogram("h", v);
        }
        let h = *r.snapshot().histogram("h").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 18, 1, 9));
        assert!((h.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = Snapshot::new();
        a.add_counter("x", 1);
        a.add_histogram("h", 7);
        a.add_span("p", 10, 5);
        let mut b = Snapshot::new();
        b.add_counter("x", 2);
        b.add_counter("y", 4);
        b.add_histogram("h", 3);
        b.add_span("p", 20, 6);

        let mut ab = Snapshot::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = Snapshot::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.canonical_json_line(), ba.canonical_json_line());
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.phase("p").unwrap().cycles, 30);
    }

    #[test]
    fn canonical_line_is_sorted_and_wall_free() {
        let mut s = Snapshot::new();
        s.add_counter("z", 1);
        s.add_counter("a", 2);
        s.add_span("p", 3, 999_999);
        let line = s.canonical_json_line();
        assert!(line.find("\"a\":2").unwrap() < line.find("\"z\":1").unwrap());
        assert!(!line.contains("999999"), "wall must not leak into the canonical line: {line}");
    }

    #[test]
    fn parse_canonical_round_trips_byte_identically() {
        let mut s = Snapshot::new();
        s.add_counter("run.cycles", 12345);
        s.add_counter("updates.useful", 0);
        s.set_gauge("energy.core_nj", 1234.5678);
        s.set_gauge("energy.noc_nj", 0.125);
        s.set_label("run.engine", "tdgraph-h");
        s.set_label("weird", "quote\" slash\\ nl\n tab\t");
        s.add_span("propagation", 999, 777); // wall excluded from canonical
        s.add_span("other", 0, 0);
        s.add_histogram("updates.writes_per_vertex", 3);
        s.add_histogram("updates.writes_per_vertex", 9);

        let line = s.canonical_json_line();
        let parsed = Snapshot::parse_canonical(&line).unwrap();
        assert_eq!(parsed.canonical_json_line(), line);
        assert_eq!(parsed.counter("run.cycles"), 12345);
        assert_eq!(parsed.gauge("energy.core_nj"), Some(1234.5678));
        assert_eq!(parsed.label("weird"), Some("quote\" slash\\ nl\n tab\t"));
        assert_eq!(parsed.phase("propagation").unwrap().cycles, 999);
        let h = parsed.histogram("updates.writes_per_vertex").unwrap();
        assert_eq!((h.count, h.min, h.max), (2, 3, 9));
    }

    #[test]
    fn parse_canonical_handles_the_empty_snapshot() {
        let line = Snapshot::new().canonical_json_line();
        let parsed = Snapshot::parse_canonical(&line).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.canonical_json_line(), line);
    }

    #[test]
    fn parse_canonical_rejects_malformed_lines() {
        assert!(Snapshot::parse_canonical("not json").is_err());
        assert!(Snapshot::parse_canonical("{\"counters\":{}}").is_err());
        let good = {
            let mut s = Snapshot::new();
            s.add_counter("a", 1);
            s.canonical_json_line()
        };
        // A truncated line (torn write) must be rejected, not half-parsed.
        for cut in 1..good.len() {
            assert!(
                Snapshot::parse_canonical(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        assert!(Snapshot::parse_canonical(&format!("{good}x")).is_err(), "trailing bytes");
    }

    #[test]
    fn replay_reproduces_counters_and_phases() {
        let mut src = MemoryRecorder::new();
        src.counter("a", 3);
        src.gauge("g", 2.5);
        src.label("l", "x");
        src.span_exit("p", 11);
        src.histogram("h", 4);
        let snap = src.into_snapshot();

        let mut dst = MemoryRecorder::new();
        snap.replay_into(&mut dst);
        let out = dst.into_snapshot();
        assert_eq!(out.counter("a"), 3);
        assert_eq!(out.gauge("g"), Some(2.5));
        assert_eq!(out.label("l"), Some("x"));
        assert_eq!(out.phase("p").unwrap().cycles, 11);
    }
}
