//! Hosts the repository-root integration tests; see `tests/` at the workspace root.
