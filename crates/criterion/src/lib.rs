//! A minimal, fully offline benchmarking shim exposing the subset of the
//! `criterion` crate's API this repository uses.
//!
//! The build environment has no network access and its registry mirror
//! does not carry the real `criterion`, so the workspace resolves the
//! dependency to this path crate instead (see the root `Cargo.toml`).
//! Benchmarks compile and run: each `bench_function` performs a short
//! warm-up, then times `sample_size` batches and prints min/mean per-batch
//! wall-clock times. There are no statistical analyses, plots, or saved
//! baselines — swap the real `criterion` back in for those.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", id.as_ref(), 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one closure under this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, id.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { sample: Duration::ZERO, iters: 0 };
    // Warm-up sample (untimed in the report).
    f(&mut b);
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut iters = 0u64;
    for _ in 0..samples {
        b.sample = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        total += b.sample;
        min = min.min(b.sample);
        iters += b.iters;
    }
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    eprintln!(
        "bench {label:<40} samples {samples:>3}  iters {iters:>6}  \
         min {min:>12.3?}  mean {:>12.3?}",
        total / u32::try_from(samples.max(1)).unwrap_or(1),
    );
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine` (one iteration per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.sample += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group runner (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }
}
