//! The sweep determinism contract: a cell's result depends only on the
//! cell, never on the schedule, so serial and parallel runs of the same
//! spec produce byte-identical canonical reports.

use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::sim::SimConfig;
use tdgraph::{EngineKind, SweepRunner, SweepSpec};

/// A grid crossing a monotonic and an accumulative algorithm (the latter
/// exercises residual seeding, historically the order-sensitive path)
/// with a software and a hardware engine over two datasets.
fn spec() -> SweepSpec {
    SweepSpec::new()
        .algo(Algo::pagerank())
        .hub_sssp()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        })
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let spec = spec();
    let serial = SweepRunner::new().threads(1).run(&spec);
    let parallel = SweepRunner::new().threads(2).run(&spec);
    assert_eq!(serial.len(), spec.cell_count());
    assert_eq!(parallel.len(), spec.cell_count());
    serial.assert_all_verified();
    assert_eq!(serial.canonical_lines(), parallel.canonical_lines());
}

#[test]
fn repeated_parallel_sweeps_are_byte_identical() {
    let spec = spec();
    let a = SweepRunner::new().threads(2).run(&spec);
    let b = SweepRunner::new().threads(2).run(&spec);
    assert_eq!(a.canonical_lines(), b.canonical_lines());
}
