//! The sweep determinism contract: a cell's result depends only on the
//! cell, never on the schedule, so serial and parallel runs of the same
//! spec produce byte-identical canonical reports.

use std::collections::BTreeMap;
use std::sync::Arc;

use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::obs::Value;
use tdgraph::sim::SimConfig;
use tdgraph::{EngineKind, SweepRunner, SweepSpec, TraceEvent, VecSink};

/// A grid crossing a monotonic and an accumulative algorithm (the latter
/// exercises residual seeding, historically the order-sensitive path)
/// with a software and a hardware engine over two datasets.
fn spec() -> SweepSpec {
    SweepSpec::new()
        .algo(Algo::pagerank())
        .hub_sssp()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        })
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let spec = spec();
    let serial = SweepRunner::new().threads(1).run(&spec);
    let parallel = SweepRunner::new().threads(2).run(&spec);
    assert_eq!(serial.len(), spec.cell_count());
    assert_eq!(parallel.len(), spec.cell_count());
    serial.assert_all_verified();
    assert_eq!(serial.canonical_lines(), parallel.canonical_lines());
}

#[test]
fn repeated_parallel_sweeps_are_byte_identical() {
    let spec = spec();
    let a = SweepRunner::new().threads(2).run(&spec);
    let b = SweepRunner::new().threads(2).run(&spec);
    assert_eq!(a.canonical_lines(), b.canonical_lines());
}

/// Groups a trace-event stream by cell index: each cell's canonical event
/// sub-sequence, in emission order.
fn per_cell_canonical(events: &[TraceEvent]) -> BTreeMap<u64, Vec<String>> {
    let mut per_cell: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for e in events {
        if let Some(Value::U64(cell)) = e.get("cell") {
            per_cell.entry(*cell).or_default().push(e.canonical_json_line());
        }
    }
    per_cell
}

#[test]
fn per_cell_trace_event_streams_are_schedule_independent() {
    let spec = spec();
    let run = |threads: usize| {
        let sink = Arc::new(VecSink::new());
        let report = SweepRunner::new().threads(threads).trace_sink(Arc::clone(&sink)).run(&spec);
        report.assert_all_verified();
        sink.events()
    };
    let serial = run(1);
    let parallel = run(2);

    // The global interleaving is schedule-dependent, but every cell's own
    // sub-sequence of canonical events (started → finished, with cycles
    // and verdicts, minus wall-clock fields) is byte-identical no matter
    // how many threads ran the sweep.
    let serial_cells = per_cell_canonical(&serial);
    let parallel_cells = per_cell_canonical(&parallel);
    assert_eq!(serial_cells.len(), spec.cell_count());
    for (cell, lines) in &serial_cells {
        assert_eq!(lines.len(), 2, "cell {cell}: started + finished");
        assert_eq!(lines, &parallel_cells[cell], "cell {cell} diverged");
    }
    assert_eq!(serial_cells, parallel_cells);

    // The closing summary agrees canonically too (`sweep_started` carries
    // the thread count, which differs by construction).
    assert_eq!(
        serial.last().unwrap().canonical_json_line(),
        parallel.last().unwrap().canonical_json_line()
    );
}

#[test]
fn observed_snapshots_are_schedule_independent() {
    let spec = spec();
    let serial = SweepRunner::new().threads(1).observe(true).run(&spec);
    let parallel = SweepRunner::new().threads(2).observe(true).run(&spec);
    let a = serial.obs.expect("observed");
    let b = parallel.obs.expect("observed");
    assert_eq!(a.canonical_json_line(), b.canonical_json_line());
}
