//! Kill-tolerant fleet execution of `tdgraph-sweepd`: worker processes
//! are really killed (SIGABRT mid-cell) and really wedged (alive, silent),
//! the coordinator is really SIGKILLed and restarted over the same lease
//! log — and every run prints byte-for-byte what an uncrashed `--serial`
//! run prints, with every cell finishing exactly once.

use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

/// The spec under test: 2 engines × 3 seeds = 6 tiny cells, observed so
/// the merged snapshot line is part of the compared surface.
const SPEC: [&str; 8] =
    ["--sizing", "tiny", "--small-sim", "--batches", "1", "--seeds", "1,2,3", "--observe"];

fn sweepd(extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tdgraph-sweepd"))
        .args(SPEC)
        .args(extra)
        .stdin(Stdio::null())
        .output()
        .unwrap()
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "sweepd failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).unwrap()
}

fn serial_control() -> String {
    stdout_of(&sweepd(&["--serial"]))
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tdg-fleet-{tag}-{}", std::process::id()))
}

/// Every cell must have exactly one accepted (`done`) record in the lease
/// log: no lost cells, no double-runs — even across kills and reclaims.
fn assert_exactly_once(lease_log: &Path, cells: usize) {
    let text = std::fs::read_to_string(lease_log).unwrap();
    let mut done_per_cell = vec![0usize; cells];
    for line in text.lines().filter(|l| l.contains("\"fleet\":\"done\"")) {
        let idx: usize = line
            .split("\"cell\":")
            .nth(1)
            .and_then(|rest| rest.split(&[',', '}'][..]).next())
            .and_then(|n| n.parse().ok())
            .unwrap();
        done_per_cell[idx] += 1;
    }
    for (idx, count) in done_per_cell.iter().enumerate() {
        assert_eq!(*count, 1, "cell {idx} must finish exactly once, got {count}: {text}");
    }
}

#[test]
fn killed_workers_are_survived_byte_identically() {
    let control = serial_control();
    // Two of the first spawns abort mid-sweep (one before reporting its
    // cell — the work is lost and must be re-run — one after).
    let out = sweepd(&[
        "--workers",
        "2",
        "--chaos-seed",
        "11",
        "--chaos-kills",
        "2",
        "--lease-ttl-ms",
        "400",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(stdout_of(&out), control, "kill chaos must not change a byte: {stderr}");
    assert!(stderr.contains("deaths="), "fleet stats missing: {stderr}");
    assert!(!stderr.contains("deaths=0"), "chaos must actually kill workers: {stderr}");
}

#[test]
fn wedged_workers_expire_and_their_cells_are_reclaimed() {
    let control = serial_control();
    // One spawn wedges: it stays alive but stops heartbeating, so only
    // lease expiry can detect it.
    let out = sweepd(&[
        "--workers",
        "2",
        "--chaos-seed",
        "5",
        "--chaos-wedges",
        "1",
        "--lease-ttl-ms",
        "300",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(stdout_of(&out), control, "wedge chaos must not change a byte: {stderr}");
    assert!(
        stderr.contains("reclaims=") && !stderr.contains("reclaims=0+0"),
        "a wedged worker's lease must be reclaimed: {stderr}"
    );
}

#[test]
fn combined_chaos_is_byte_identical_across_worker_counts() {
    let control = serial_control();
    for workers in ["1", "2", "4"] {
        let ck = temp_path(&format!("combined-{workers}"));
        let _ = std::fs::remove_file(&ck);
        let ck_str = ck.to_str().unwrap().to_string();
        let lease_log = PathBuf::from(format!("{ck_str}.leases"));
        let _ = std::fs::remove_file(&lease_log);
        let out = sweepd(&[
            "--workers",
            workers,
            "--chaos-seed",
            "29",
            "--chaos-kills",
            "1",
            "--chaos-wedges",
            "1",
            "--lease-ttl-ms",
            "300",
            "--checkpoint",
            &ck_str,
        ]);
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert_eq!(
            stdout_of(&out),
            control,
            "fleet of {workers} under kill+wedge chaos must match serial: {stderr}"
        );
        assert_exactly_once(&lease_log, 6);
        let _ = std::fs::remove_file(&ck);
        let _ = std::fs::remove_file(&lease_log);
        let _ = std::fs::remove_file(PathBuf::from(format!("{ck_str}.lock")));
    }
}

#[test]
fn sigkilled_coordinator_restarts_and_resumes_byte_identically() {
    // A longer sweep (12 cells) so the coordinator can be killed with
    // work still outstanding.
    let seeds = ["--seeds", "1,2,3,4,5,6"];
    let control_out = Command::new(env!("CARGO_BIN_EXE_tdgraph-sweepd"))
        .args(SPEC)
        .args(seeds)
        .arg("--serial")
        .output()
        .unwrap();
    let control = stdout_of(&control_out);

    let ck = temp_path("coord-kill");
    let _ = std::fs::remove_file(&ck);
    let ck_str = ck.to_str().unwrap().to_string();
    let lease_log = PathBuf::from(format!("{ck_str}.leases"));
    let lock = PathBuf::from(format!("{ck_str}.lock"));
    let _ = std::fs::remove_file(&lease_log);
    let _ = std::fs::remove_file(&lock);

    // Phase 1: run the fleet, SIGKILL the coordinator as soon as the
    // checkpoint shows durable progress. Its workers are orphaned and the
    // lock file is left behind pointing at a dead pid.
    let mut phase1 = Command::new(env!("CARGO_BIN_EXE_tdgraph-sweepd"))
        .args(SPEC)
        .args(seeds)
        .args(["--workers", "2", "--checkpoint", &ck_str])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    for _ in 0..2000 {
        if ck.exists() && std::fs::metadata(&ck).unwrap().len() > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert!(ck.exists(), "coordinator never checkpointed");
    phase1.kill().unwrap();
    phase1.wait().unwrap();
    assert!(lock.exists(), "a SIGKILLed coordinator leaves its lock behind");

    // Phase 2: restart over the same checkpoint + lease log. The stale
    // lock must be taken over, finished cells restored (not re-run), and
    // the final output must still be byte-identical to serial.
    let out = Command::new(env!("CARGO_BIN_EXE_tdgraph-sweepd"))
        .args(SPEC)
        .args(seeds)
        .args(["--workers", "2", "--checkpoint", &ck_str])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert_eq!(stdout_of(&out), control, "restart must reproduce the serial bytes: {stderr}");
    assert!(
        !stderr.contains("restored=0 "),
        "the restart must restore the killed run's durable cells: {stderr}"
    );
    // The checkpoint file itself is a byte-prefix contract: after the
    // restart it must equal the serial checkpoint.
    let serial_ck = temp_path("coord-serial");
    let serial_ck_str = serial_ck.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&serial_ck);
    let serial_again = Command::new(env!("CARGO_BIN_EXE_tdgraph-sweepd"))
        .args(SPEC)
        .args(seeds)
        .args(["--serial", "--checkpoint", &serial_ck_str])
        .output()
        .unwrap();
    assert!(serial_again.status.success());
    assert_eq!(
        std::fs::read_to_string(&ck).unwrap(),
        std::fs::read_to_string(&serial_ck).unwrap(),
        "fleet checkpoint must be byte-identical to the serial checkpoint"
    );

    for p in [&ck, &lease_log, &lock, &serial_ck] {
        let _ = std::fs::remove_file(p);
    }
}
