//! Torn-checkpoint recovery, property-tested at every truncation offset:
//! a checkpoint cut anywhere — mid-record, mid-escape, exactly on a
//! newline — loads its intact prefix, drops at most the torn final line,
//! and resuming from it reproduces the uncrashed sweep byte-for-byte.

use tdgraph::checkpoint::load_tolerant;
use tdgraph::{SweepRunner, SweepSpec};

use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::sim::SimConfig;
use tdgraph::EngineKind;

fn tiny_spec() -> SweepSpec {
    SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 1;
        })
}

fn temp_file(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tdg-ckprop-{tag}-{}", std::process::id()))
}

#[test]
fn every_truncation_offset_loads_the_intact_prefix() {
    let spec = tiny_spec();
    let full = temp_file("full");
    let _ = std::fs::remove_file(&full);
    SweepRunner::new().threads(1).checkpoint_to(&full).run(&spec).assert_all_ok();
    let bytes = std::fs::read(&full).unwrap();
    assert!(bytes.len() > 100, "checkpoint too small to exercise truncation");

    let torn = temp_file("torn");
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        std::fs::write(&torn, prefix).unwrap();
        let loaded = load_tolerant(&torn)
            .unwrap_or_else(|e| panic!("offset {cut}: tolerant load must never fail: {e}"));

        // The intact prefix is exactly the newline-terminated lines.
        let newline_terminated = prefix.iter().filter(|b| **b == b'\n').count();
        assert_eq!(
            loaded.records.len(),
            newline_terminated,
            "offset {cut}: every terminated line must load"
        );
        // The torn tail — bytes past the last newline — is dropped and
        // counted, never misparsed.
        let tail_len = cut - prefix.iter().rposition(|b| *b == b'\n').map_or(0, |p| p + 1);
        assert_eq!(
            loaded.torn_tails_dropped,
            usize::from(tail_len > 0),
            "offset {cut}: torn tail accounting"
        );
        assert_eq!(
            loaded.clean_bytes,
            (cut - tail_len) as u64,
            "offset {cut}: clean_bytes must mark the last good line"
        );
        // Loaded records are a strict prefix of the full checkpoint's.
        let complete = load_tolerant(&full).unwrap();
        assert_eq!(
            loaded.records.as_slice(),
            &complete.records[..loaded.records.len()],
            "offset {cut}: records must be an intact prefix"
        );
    }
    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&torn);
}

#[test]
fn resuming_from_a_torn_checkpoint_is_byte_identical() {
    let spec = tiny_spec();
    let control = SweepRunner::new().threads(1).observe(true).run(&spec);

    let full = temp_file("resume-full");
    let _ = std::fs::remove_file(&full);
    SweepRunner::new().threads(1).checkpoint_to(&full).run(&spec).assert_all_ok();
    let bytes = std::fs::read(&full).unwrap();
    let line_ends: Vec<usize> =
        bytes.iter().enumerate().filter(|(_, b)| **b == b'\n').map(|(i, _)| i + 1).collect();

    // A representative spread: empty file, torn first record, exactly one
    // record, mid-second-record, one byte short of complete, complete.
    let cuts = [
        0,
        line_ends[0] / 2,
        line_ends[0],
        line_ends[0] + (line_ends[1] - line_ends[0]) / 2,
        bytes.len() - 1,
        bytes.len(),
    ];
    let torn = temp_file("resume-torn");
    for cut in cuts {
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let report =
            SweepRunner::new().threads(1).observe(true).run(&spec.clone().resume_from(&torn));
        assert_eq!(
            report.canonical_lines(),
            control.canonical_lines(),
            "cut {cut}: resumed lines must match the uncrashed run"
        );
        let torn_tail = !bytes[..cut].is_empty() && bytes[cut - 1] != b'\n';
        assert_eq!(report.torn_tails_dropped, usize::from(torn_tail), "cut {cut}");
    }
    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&torn);
}
