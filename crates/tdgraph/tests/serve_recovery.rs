//! Kill-and-restart recovery of the `tdgraph-served` daemon: SIGKILL
//! mid-stream, restart over the same WAL directory, reconnect, resume at
//! the acked offset — and the finish reply is byte-identical to a run
//! that was never interrupted.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use tdgraph::graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph::graph::update::EdgeUpdate;
use tdgraph::graph::wire::format_update_line;
use tdgraph::serve::{RetryPolicy, ServeClient, SystemClock};

struct Daemon {
    child: Child,
    addr: String,
    /// Stderr lines printed before the listening banner (startup recovery
    /// notes land here).
    prelude: Vec<String>,
}

fn spawn_daemon(wal_dir: &Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_tdgraph-served"))
        .args([
            "127.0.0.1:0",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--batch-max-entries",
            "8",
            "--batch-deadline-ms",
            "600000",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut prelude = Vec::new();
    let addr = loop {
        let mut line = String::new();
        assert_ne!(stderr.read_line(&mut line).unwrap(), 0, "daemon exited before listening");
        if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
            break rest.to_string();
        }
        prelude.push(line);
    };
    Daemon { child, addr, prelude }
}

fn mixed_lines(take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    let mut lines = Vec::new();
    for (i, e) in workload.pending.iter().take(take).enumerate() {
        if i == 5 {
            lines.push(format!("##wire-noise {i}##"));
        }
        lines.push(format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)));
    }
    lines
}

fn connect(addr: &str) -> ServeClient {
    let policy = RetryPolicy {
        max_attempts: 20,
        base_backoff: Duration::from_millis(20),
        max_backoff: Duration::from_millis(200),
    };
    ServeClient::connect_with_retry(addr, &policy, &SystemClock).unwrap()
}

#[test]
fn sigkill_mid_stream_recovers_byte_identically() {
    let lines = mixed_lines(30); // 31 lines with the noise record
    let split = 20;
    let dir = std::env::temp_dir().join(format!("tdg-served-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: stream part of the workload, then SIGKILL the daemon.
    let mut daemon = spawn_daemon(&dir);
    {
        let mut client = connect(&daemon.addr);
        assert_eq!(client.hello("t").unwrap(), 0);
        for line in &lines[..split] {
            client.send_line(line).unwrap();
        }
        // The snapshot reply orders after every data line on this
        // connection: once it arrives, all 20 lines are WAL-durable.
        client.snapshot().unwrap();
    }
    daemon.child.kill().unwrap();
    daemon.child.wait().unwrap();

    // Phase 2: restart over the same WAL directory; the daemon replays
    // the log before listening and the client resumes at acked.
    let mut daemon = spawn_daemon(&dir);
    let mut client = connect(&daemon.addr);
    let acked = client.hello("t").unwrap();
    assert_eq!(acked, split as u64, "acked offset must survive SIGKILL");
    for line in &lines[acked as usize..] {
        client.send_line(line).unwrap();
    }
    assert!(
        daemon.prelude.iter().any(|l| l.contains("recovered tenant t")),
        "daemon must log the WAL recovery before listening: {:?}",
        daemon.prelude
    );
    let interrupted = client.finish().unwrap();
    client.shutdown().unwrap();
    daemon.child.wait().unwrap();

    // Control: the same stream against a fresh daemon, never killed.
    let control_dir = std::env::temp_dir().join(format!("tdg-served-ctl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&control_dir);
    let mut daemon = spawn_daemon(&control_dir);
    let mut client = connect(&daemon.addr);
    client.hello("t").unwrap();
    for line in &lines {
        client.send_line(line).unwrap();
    }
    let uninterrupted = client.finish().unwrap();
    client.shutdown().unwrap();
    daemon.child.wait().unwrap();

    assert_eq!(
        interrupted, uninterrupted,
        "recovered finish reply must be byte-identical to the uncrashed run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}
