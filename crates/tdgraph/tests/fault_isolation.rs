//! Fault-injection suite for the sweep runner's isolation and recovery
//! layer: a deliberately misbehaving engine (`FaultyEngine`, registered
//! through the ordinary [`EngineRegistry`] path) drives the acceptance
//! scenario of the robustness PR — an 8-cell grid with 2 engine panics
//! and 1 watchdog timeout must still return a complete report, and a
//! checkpointed relaunch must re-execute only the failed cells while
//! reproducing the successful cells' canonical lines byte for byte.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::sim::SimConfig;
use tdgraph::{CellOutcome, EngineRegistry, OutcomeKind, SweepRunner, SweepSpec};
use tdgraph_engines::testutil::{FaultMode, FaultyEngine};

/// Per-key build counters, so tests can assert exactly which cells
/// executed (a build happens once per cell execution).
#[derive(Clone, Default)]
struct BuildCounters {
    good: Arc<AtomicUsize>,
    panicker: Arc<AtomicUsize>,
    sleeper: Arc<AtomicUsize>,
    tail: Arc<AtomicUsize>,
}

impl BuildCounters {
    fn counts(&self) -> [usize; 4] {
        [
            self.good.load(Ordering::SeqCst),
            self.panicker.load(Ordering::SeqCst),
            self.sleeper.load(Ordering::SeqCst),
            self.tail.load(Ordering::SeqCst),
        ]
    }
}

/// The acceptance-scenario registry: two healthy engines, one that always
/// panics, and one whose *first* instance sleeps long enough to trip the
/// watchdog (later instances are healthy, so only one cell times out).
fn faulty_registry(counters: &BuildCounters, inject: bool) -> EngineRegistry {
    let mut registry = EngineRegistry::new();
    let c = counters.good.clone();
    registry.register("good", move || {
        c.fetch_add(1, Ordering::SeqCst);
        Box::new(FaultyEngine::new(FaultMode::None))
    });
    let c = counters.panicker.clone();
    registry.register("panicker", move || {
        c.fetch_add(1, Ordering::SeqCst);
        let mode = if inject { FaultMode::PanicOnBatch(0) } else { FaultMode::None };
        Box::new(FaultyEngine::new(mode))
    });
    let c = counters.sleeper.clone();
    registry.register("sleeper", move || {
        let first = c.fetch_add(1, Ordering::SeqCst) == 0;
        let mode = if inject && first {
            FaultMode::SleepOnBatch(0, Duration::from_secs(30))
        } else {
            FaultMode::None
        };
        Box::new(FaultyEngine::new(mode))
    });
    let c = counters.tail.clone();
    registry.register("tail", move || {
        c.fetch_add(1, Ordering::SeqCst);
        Box::new(FaultyEngine::new(FaultMode::None))
    });
    registry
}

/// 2 datasets × 4 engines = 8 cells; per dataset the expansion order is
/// good, panicker, sleeper, tail.
fn acceptance_spec() -> SweepSpec {
    SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engine_named("good")
        .engine_named("panicker")
        .engine_named("sleeper")
        .engine_named("tail")
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 1;
        })
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tdgraph-fault-{}-{name}", std::process::id()))
}

#[test]
fn eight_cell_sweep_with_panics_and_timeout_completes_and_resumes() {
    let path = temp_path("acceptance.jsonl");
    let _ = std::fs::remove_file(&path);
    let spec = acceptance_spec();

    // --- First launch: 2 panics + 1 timeout, on a single worker so a
    // lost thread would hang or truncate the sweep. ---
    let counters = BuildCounters::default();
    let report = SweepRunner::new()
        .threads(1)
        .registry(faulty_registry(&counters, true))
        .cell_timeout(Duration::from_millis(500))
        .checkpoint_to(&path)
        .run(&spec);

    // The report is complete: every cell has an outcome, in order.
    assert_eq!(report.len(), 8);
    for (i, c) in report.cells.iter().enumerate() {
        assert_eq!(c.cell.index, i);
    }
    let counts = report.outcome_counts();
    assert_eq!(counts.completed, 5, "{}", report.failure_digest());
    assert_eq!(counts.panicked, 2);
    assert_eq!(counts.timed_out, 1);
    assert_eq!(report.checkpoint_write_errors, 0);

    // (a) Panic containment: the panicking cells carry the payload and
    // the cells scheduled after them on the same worker still ran.
    for idx in [1, 5] {
        match &report.cells[idx].outcome {
            CellOutcome::Panicked { message, backtrace_hint } => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(backtrace_hint.contains("RUST_BACKTRACE=1"));
            }
            other => panic!("cell {idx}: expected a contained panic, got {other:?}"),
        }
    }
    // (b) Watchdog: only the sleeper's first instance (Amazon) overran.
    assert_eq!(report.cells[2].outcome.kind(), OutcomeKind::TimedOut);
    assert_eq!(report.cells[6].outcome.kind(), OutcomeKind::Completed);
    // Every healthy cell verified against the oracle.
    for idx in [0, 3, 4, 6, 7] {
        assert!(report.cells[idx].is_verified(), "cell {idx} should have verified");
    }
    // Each of the 8 cells was executed exactly once (no retries here).
    assert_eq!(counters.counts(), [2, 2, 2, 2]);

    // --- Relaunch with the fault fixed: only the 3 failed cells may
    // execute; the 5 checkpointed cells are restored. ---
    let resumed_counters = BuildCounters::default();
    let resumed = SweepRunner::new()
        .threads(2)
        .registry(faulty_registry(&resumed_counters, false))
        .cell_timeout(Duration::from_millis(500))
        .run(&spec.clone().resume_from(&path));

    assert_eq!(resumed.len(), 8);
    resumed.assert_all_ok();
    resumed.assert_all_verified();
    let resumed_counts = resumed.outcome_counts();
    assert_eq!(resumed_counts.restored, 5);
    assert_eq!(resumed_counts.completed, 3);
    // No duplicate cells: each index appears exactly once.
    let mut seen = [0u32; 8];
    for c in &resumed.cells {
        seen[c.cell.index] += 1;
    }
    assert_eq!(seen, [1; 8]);
    // Only the failed cells re-executed: good/tail never rebuilt, the
    // panicker re-ran on both datasets, the sleeper only on Amazon.
    assert_eq!(resumed_counters.counts(), [0, 2, 1, 0]);

    // Byte-identical canonical lines for every cell that succeeded on the
    // first launch (restored lines re-emit the checkpoint verbatim).
    let first_lines: Vec<&str> = report.canonical_lines().leak().lines().collect();
    let resumed_lines: Vec<&str> = resumed.canonical_lines().leak().lines().collect();
    for idx in [0, 3, 4, 6, 7] {
        assert_eq!(first_lines[idx], resumed_lines[idx], "cell {idx} drifted across resume");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn deterministic_retry_reproduces_the_clean_run_byte_for_byte() {
    // (c) A transient fault (first build panics, second succeeds) is
    // absorbed by retry_once and the canonical report matches a run that
    // never faulted.
    let spec = SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(Sizing::Tiny)
        .engine_named("flaky")
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 2;
        });
    let registry = |fail_first: bool| {
        let mut r = EngineRegistry::new();
        let builds = Arc::new(AtomicUsize::new(0));
        r.register("flaky", move || {
            if fail_first && builds.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected fault: transient build failure");
            }
            Box::new(FaultyEngine::new(FaultMode::None))
        });
        r
    };

    let flaky = SweepRunner::new().threads(1).registry(registry(true)).retry_once(true).run(&spec);
    flaky.assert_all_verified();
    assert_eq!(flaky.total_retries(), 1);

    let clean = SweepRunner::new().threads(1).registry(registry(false)).run(&spec);
    assert_eq!(flaky.canonical_lines(), clean.canonical_lines());
}

#[test]
fn wrong_state_faults_surface_as_unverified_not_as_failures() {
    // Divergence is a *verification* failure, not a fault: the cell
    // completes, the report carries verified=false, and assert_all_ok
    // passes while assert_all_verified does not.
    let mut registry = EngineRegistry::new();
    registry
        .register("corruptor", || Box::new(FaultyEngine::new(FaultMode::WrongStatesOnBatch(0))));
    let spec = SweepSpec::new()
        .dataset(Dataset::Amazon)
        .sizing(Sizing::Tiny)
        .engine_named("corruptor")
        .tune(|o| {
            o.sim = SimConfig::small_test();
            o.batches = 1;
        });
    let report = SweepRunner::new().registry(registry).run(&spec);
    report.assert_all_ok();
    assert!(!report.all_verified());
    assert!(report.canonical_lines().contains("\"verified\":false"));
}

#[test]
fn progress_events_record_failures_and_restores() {
    let path = temp_path("events.jsonl");
    let _ = std::fs::remove_file(&path);
    let spec = acceptance_spec();
    let counters = BuildCounters::default();
    let events: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();

    let sink = Arc::clone(&events);
    let _ = SweepRunner::new()
        .threads(1)
        .registry(faulty_registry(&counters, true))
        .cell_timeout(Duration::from_millis(500))
        .checkpoint_to(&path)
        .on_progress(move |e| sink.lock().unwrap().push(e.to_json_line()))
        .run(&spec);

    let sink = Arc::clone(&events);
    let _ = SweepRunner::new()
        .threads(1)
        .registry(faulty_registry(&BuildCounters::default(), false))
        .cell_timeout(Duration::from_millis(500))
        .on_progress(move |e| sink.lock().unwrap().push(e.to_json_line()))
        .run(&spec.clone().resume_from(&path));

    let events = events.lock().unwrap();
    let count = |needle: &str| events.iter().filter(|e| e.contains(needle)).count();
    assert_eq!(count("\"event\":\"cell_failed\""), 3);
    assert_eq!(count("\"outcome\":\"panicked\""), 2);
    assert_eq!(count("\"outcome\":\"timed_out\""), 1);
    assert_eq!(count("\"event\":\"cell_restored\""), 5);
    // The two sweep_finished summaries carry the outcome tallies.
    let finished: Vec<&String> = events.iter().filter(|e| e.contains("sweep_finished")).collect();
    assert_eq!(finished.len(), 2);
    assert!(finished[0].contains("\"failed\":3"), "{}", finished[0]);
    assert!(finished[1].contains("\"failed\":0") && finished[1].contains("\"restored\":5"));
    let _ = std::fs::remove_file(&path);
}
