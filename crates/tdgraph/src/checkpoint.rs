//! Sweep checkpointing: append-only JSON-lines logs of finished cells.
//!
//! A checkpoint line is *exactly* the cell's canonical report line (see
//! [`SweepReport::canonical_lines`](crate::SweepReport::canonical_lines)),
//! so a resumed sweep reproduces the original report byte for byte: the
//! restored cells re-emit their stored lines verbatim and only the cells
//! that never completed are executed again.
//!
//! The workspace deliberately carries no serde dependency, so the format
//! is written and parsed by hand. It is a flat JSON object whose string
//! values (dataset abbreviation, sizing, algorithm label, engine key)
//! never contain quotes, commas, or braces — the parser relies on that.

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use tdgraph_engines::harness::RunResult;
use tdgraph_obs::TraceEvent;

use crate::sweep::ExperimentCell;

/// An error reading or writing a sweep checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint file could not be opened, read, or appended.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A checkpoint line is not a canonical cell record.
    Parse {
        /// 1-based line number within the checkpoint file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A checkpoint record does not correspond to the sweep being resumed
    /// (different grid, reordered axes, or a stale file).
    SpecMismatch {
        /// The cell index the record claims.
        index: usize,
        /// The coordinates the spec expands to at that index.
        expected: String,
        /// The coordinates the checkpoint recorded.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint i/o error at {}: {source}", path.display())
            }
            CheckpointError::Parse { line, reason } => {
                write!(f, "checkpoint parse error at line {line}: {reason}")
            }
            CheckpointError::SpecMismatch { index, expected, found } => write!(
                f,
                "checkpoint does not match the sweep spec at cell {index}: \
                 expected {expected}, found {found}"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Parse { .. } | CheckpointError::SpecMismatch { .. } => None,
        }
    }
}

/// The canonical, timing-free record of one completed cell: its grid
/// coordinates plus the headline metrics and oracle verdict.
///
/// [`CanonicalCell::to_json_line`] is the single source of the canonical
/// line format — both [`SweepReport::canonical_lines`](crate::SweepReport)
/// and the checkpoint log serialize through it, which is what makes
/// checkpoint/resume byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalCell {
    /// Cell index in expansion order.
    pub cell: usize,
    /// Dataset abbreviation.
    pub dataset: String,
    /// Workload sizing (`Debug` rendering).
    pub sizing: String,
    /// Algorithm label.
    pub algo: String,
    /// Engine registry key.
    pub engine: String,
    /// Workload seed.
    pub seed: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Propagation-phase cycles.
    pub propagation_cycles: u64,
    /// Non-propagation cycles.
    pub other_cycles: u64,
    /// Vertex-state writes.
    pub state_updates: u64,
    /// Writes that changed the converged state.
    pub useful_updates: u64,
    /// Edges streamed through the engines.
    pub edges_processed: u64,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Update batches streamed.
    pub batches: u64,
    /// Oracle verdict.
    pub verified: bool,
}

impl CanonicalCell {
    /// Builds the canonical record of a completed cell.
    #[must_use]
    pub fn of(cell: &ExperimentCell, result: &RunResult) -> Self {
        let m = &result.metrics;
        Self {
            cell: cell.index,
            dataset: cell.dataset.abbrev().to_string(),
            sizing: format!("{:?}", cell.sizing),
            algo: cell.algo.label().to_string(),
            engine: cell.engine.key().to_string(),
            seed: cell.options.seed,
            cycles: m.cycles,
            propagation_cycles: m.propagation_cycles,
            other_cycles: m.other_cycles,
            state_updates: m.state_updates,
            useful_updates: m.useful_updates,
            edges_processed: m.edges_processed,
            dram_bytes: m.dram_bytes,
            batches: m.batches,
            verified: result.verify.is_match(),
        }
    }

    /// Renders the record as one canonical JSON line (no trailing
    /// newline). The record predates the obs crate, so it renders as an
    /// anonymous [`TraceEvent`] — same field order, no `"event"` tag.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        TraceEvent::record()
            .field("cell", self.cell)
            .field("dataset", self.dataset.as_str())
            .field("sizing", self.sizing.as_str())
            .field("algo", self.algo.as_str())
            .field("engine", self.engine.as_str())
            .field("seed", self.seed)
            .field("cycles", self.cycles)
            .field("propagation_cycles", self.propagation_cycles)
            .field("other_cycles", self.other_cycles)
            .field("state_updates", self.state_updates)
            .field("useful_updates", self.useful_updates)
            .field("edges_processed", self.edges_processed)
            .field("dram_bytes", self.dram_bytes)
            .field("batches", self.batches)
            .field("verified", self.verified)
            .to_json_line()
    }

    /// Parses one canonical JSON line.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the line is not a canonical record.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let str_field = |key: &str| -> Result<String, String> {
            let raw = lookup(&fields, key)?;
            raw.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_string)
                .ok_or_else(|| format!("field '{key}' is not a string: {raw}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            lookup(&fields, key)?
                .parse::<u64>()
                .map_err(|e| format!("field '{key}' is not an integer: {e}"))
        };
        let cell = lookup(&fields, "cell")?
            .parse::<usize>()
            .map_err(|e| format!("field 'cell' is not an index: {e}"))?;
        let verified = match lookup(&fields, "verified")? {
            "true" => true,
            "false" => false,
            other => return Err(format!("field 'verified' is not a bool: {other}")),
        };
        Ok(Self {
            cell,
            dataset: str_field("dataset")?,
            sizing: str_field("sizing")?,
            algo: str_field("algo")?,
            engine: str_field("engine")?,
            seed: u64_field("seed")?,
            cycles: u64_field("cycles")?,
            propagation_cycles: u64_field("propagation_cycles")?,
            other_cycles: u64_field("other_cycles")?,
            state_updates: u64_field("state_updates")?,
            useful_updates: u64_field("useful_updates")?,
            edges_processed: u64_field("edges_processed")?,
            dram_bytes: u64_field("dram_bytes")?,
            batches: u64_field("batches")?,
            verified,
        })
    }

    /// Whether this record describes `cell` (same index-independent
    /// coordinates; used to detect stale checkpoints on resume).
    #[must_use]
    pub fn matches(&self, cell: &ExperimentCell) -> bool {
        self.dataset == cell.dataset.abbrev()
            && self.sizing == format!("{:?}", cell.sizing)
            && self.algo == cell.algo.label()
            && self.engine == cell.engine.key()
            && self.seed == cell.options.seed
    }

    /// Compact human-readable coordinates (for mismatch diagnostics).
    #[must_use]
    pub fn coordinates(&self) -> String {
        format!("{}/{}/{}/{} seed={}", self.dataset, self.sizing, self.algo, self.engine, self.seed)
    }
}

/// The coordinates a spec expands to for `cell`, in the same compact form
/// as [`CanonicalCell::coordinates`].
#[must_use]
pub fn cell_coordinates(cell: &ExperimentCell) -> String {
    format!(
        "{}/{:?}/{}/{} seed={}",
        cell.dataset.abbrev(),
        cell.sizing,
        cell.algo.label(),
        cell.engine.key(),
        cell.options.seed
    )
}

fn parse_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    body.split(',')
        .map(|pair| {
            let (k, v) = pair.split_once(':').ok_or_else(|| format!("malformed field '{pair}'"))?;
            let key = k
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted key '{k}'"))?;
            Ok((key.to_string(), v.trim().to_string()))
        })
        .collect()
}

fn lookup<'a>(fields: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field '{key}'"))
}

/// Loads every record of a checkpoint file.
///
/// A missing file is an empty checkpoint (first launch of a sweep that
/// will resume later), not an error. Blank lines are skipped.
///
/// # Errors
///
/// [`CheckpointError::Io`] on read failures other than a missing file,
/// [`CheckpointError::Parse`] on a malformed line — including a torn
/// final line; use [`load_tolerant`] when a crash mid-append must not
/// poison the resume.
pub fn load(path: &Path) -> Result<Vec<CanonicalCell>, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(CheckpointError::Io { path: path.to_path_buf(), source: e }),
    };
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = CanonicalCell::from_json_line(line)
            .map_err(|reason| CheckpointError::Parse { line: idx + 1, reason })?;
        records.push(record);
    }
    Ok(records)
}

/// A tolerantly-loaded checkpoint: the clean records plus what (if
/// anything) was dropped off the tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedCheckpoint {
    /// Every record of the clean prefix, in file order.
    pub records: Vec<CanonicalCell>,
    /// Byte length of the clean prefix — the offset a recovering writer
    /// truncates to before appending.
    pub clean_bytes: u64,
    /// Torn final lines dropped (0 or 1): a tail not ending in `\n`, or a
    /// final newline-terminated line that does not decode.
    pub torn_tails_dropped: usize,
}

/// Loads a checkpoint, tolerating a torn final line the way the serve
/// WAL loader does: a process killed mid-append leaves either a tail
/// without a newline or an undecodable final record, and a resume must
/// treat that as "one fewer cell checkpointed", not as corruption.
///
/// The drop is bounded to the *final* line — a malformed line with clean
/// records after it cannot come from a torn append and is still a hard
/// [`CheckpointError::Parse`]. A missing file is an empty checkpoint.
///
/// # Errors
///
/// [`CheckpointError::Io`] on read failures other than a missing file,
/// [`CheckpointError::Parse`] on a malformed non-final line.
pub fn load_tolerant(path: &Path) -> Result<LoadedCheckpoint, CheckpointError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => {
            return Ok(LoadedCheckpoint {
                records: Vec::new(),
                clean_bytes: 0,
                torn_tails_dropped: 0,
            })
        }
        Err(e) => return Err(CheckpointError::Io { path: path.to_path_buf(), source: e }),
    };

    // Segment the text into newline-terminated lines plus an optional
    // unterminated tail, tracking byte offsets for the clean prefix.
    let mut records = Vec::new();
    let mut clean_bytes = 0u64;
    let mut torn = 0usize;
    let mut line_no = 0usize;
    let mut start = 0usize;
    while start < text.len() {
        let (line, end, terminated) = match text[start..].find('\n') {
            Some(i) => (&text[start..start + i], start + i + 1, true),
            None => (&text[start..], text.len(), false),
        };
        line_no += 1;
        if !terminated {
            // A tail without its newline is a torn append, even if its
            // bytes happen to decode — the writer died before finishing.
            if !line.trim().is_empty() {
                torn = 1;
            }
            break;
        }
        if line.trim().is_empty() {
            clean_bytes = end as u64;
            start = end;
            continue;
        }
        match CanonicalCell::from_json_line(line) {
            Ok(record) => {
                records.push(record);
                clean_bytes = end as u64;
            }
            Err(reason) => {
                // Only the final line may be dropped; anything followed by
                // more content is real corruption.
                if text[end..].trim().is_empty() {
                    torn = 1;
                    break;
                }
                return Err(CheckpointError::Parse { line: line_no, reason });
            }
        }
        start = end;
    }
    Ok(LoadedCheckpoint { records, clean_bytes, torn_tails_dropped: torn })
}

/// An append-only checkpoint writer shared across sweep worker threads.
///
/// Each completed cell is appended as one canonical line and flushed, so
/// a sweep killed mid-flight loses at most the cells still in progress.
#[derive(Debug)]
pub struct CheckpointLog {
    path: PathBuf,
    file: Mutex<File>,
}

impl CheckpointLog {
    /// Opens (creating if necessary) `path` for appending.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be opened.
    pub fn append_to(path: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CheckpointError::Io { path: path.clone(), source: e })?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    /// Recovering open: loads the clean prefix tolerantly (see
    /// [`load_tolerant`]), truncates any torn tail away, and opens the
    /// file for appending. Returns the log plus what was loaded — the
    /// caller resumes writing exactly after the last durable record.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the file cannot be read, truncated, or
    /// opened; [`CheckpointError::Parse`] on a malformed non-final line.
    pub fn resume(path: impl Into<PathBuf>) -> Result<(Self, LoadedCheckpoint), CheckpointError> {
        let path = path.into();
        let loaded = load_tolerant(&path)?;
        if loaded.torn_tails_dropped > 0 {
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(loaded.clean_bytes))
                .map_err(|e| CheckpointError::Io { path: path.clone(), source: e })?;
        }
        let log = Self::append_to(path)?;
        Ok((log, loaded))
    }

    /// The file this log appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write or flush failure.
    pub fn append(&self, record: &CanonicalCell) -> Result<(), CheckpointError> {
        self.append_line(&record.to_json_line())
    }

    /// Appends one pre-rendered canonical line verbatim and flushes it.
    /// The fleet coordinator streams worker-rendered lines through this
    /// without re-encoding them, preserving byte identity; the caller
    /// guarantees the line is a canonical record with no newline.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on write or flush failure.
    pub fn append_line(&self, line: &str) -> Result<(), CheckpointError> {
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| CheckpointError::Io { path: self.path.clone(), source: e })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CanonicalCell {
        CanonicalCell {
            cell: 3,
            dataset: "AM".into(),
            sizing: "Tiny".into(),
            algo: "SSSP".into(),
            engine: "ligra-o".into(),
            seed: 2006,
            cycles: 123,
            propagation_cycles: 100,
            other_cycles: 23,
            state_updates: 42,
            useful_updates: 40,
            edges_processed: 99,
            dram_bytes: 4096,
            batches: 2,
            verified: true,
        }
    }

    #[test]
    fn json_line_round_trips_byte_identically() {
        let r = record();
        let line = r.to_json_line();
        let parsed = CanonicalCell::from_json_line(&line).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json_line(), line);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(CanonicalCell::from_json_line("not json").is_err());
        assert!(CanonicalCell::from_json_line("{\"cell\":0}").is_err());
        let bad_bool = record().to_json_line().replace("true", "maybe");
        assert!(CanonicalCell::from_json_line(&bad_bool).is_err());
    }

    #[test]
    fn load_of_missing_file_is_empty() {
        let records = load(Path::new("/nonexistent/tdgraph-checkpoint.jsonl")).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "tdgraph-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let _ = std::fs::remove_file(&path);

        let log = CheckpointLog::append_to(&path).unwrap();
        let mut a = record();
        let mut b = record();
        b.cell = 4;
        b.verified = false;
        log.append(&a).unwrap();
        log.append(&b).unwrap();
        // Re-appending a cell: the loader keeps both, resume takes the last.
        a.cycles = 999;
        log.append(&a).unwrap();

        let records = load(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].cycles, 123);
        assert_eq!(records[1].cell, 4);
        assert_eq!(records[2].cycles, 999);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tolerant_load_drops_only_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "tdgraph-ckpt-torn-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let full = format!("{}\n{}\n", record().to_json_line(), record().to_json_line());

        // Unterminated tail: dropped + counted, clean prefix preserved.
        let torn = format!("{full}{}", &record().to_json_line()[..20]);
        std::fs::write(&path, &torn).unwrap();
        let loaded = load_tolerant(&path).unwrap();
        assert_eq!(loaded.records.len(), 2);
        assert_eq!(loaded.clean_bytes, full.len() as u64);
        assert_eq!(loaded.torn_tails_dropped, 1);
        // The strict loader refuses the same file.
        assert!(matches!(load(&path), Err(CheckpointError::Parse { .. })));

        // A malformed line *followed by clean records* is corruption, not
        // a torn append.
        let corrupt = format!("garbage\n{full}");
        std::fs::write(&path, &corrupt).unwrap();
        assert!(matches!(load_tolerant(&path), Err(CheckpointError::Parse { line: 1, .. })));

        // Missing file: empty, no drops.
        let missing = load_tolerant(Path::new("/nonexistent/tdgraph.jsonl")).unwrap();
        assert_eq!(
            missing,
            LoadedCheckpoint { records: vec![], clean_bytes: 0, torn_tails_dropped: 0 }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_truncates_the_torn_tail_before_appending() {
        let dir = std::env::temp_dir().join(format!(
            "tdgraph-ckpt-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        let a = record();
        let mut b = record();
        b.cell = 4;
        std::fs::write(&path, format!("{}\n{}", a.to_json_line(), &b.to_json_line()[..33]))
            .unwrap();

        let (log, loaded) = CheckpointLog::resume(&path).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.torn_tails_dropped, 1);
        log.append(&b).unwrap();
        drop(log);

        let records = load(&path).unwrap();
        assert_eq!(records.len(), 2, "torn bytes must not corrupt the re-append");
        assert_eq!(records[1].cell, 4);
        let _ = std::fs::remove_file(&path);
    }
}
