//! Declarative experiment sweeps and the parallel multi-experiment runner.
//!
//! The paper's evaluation is a grid: engines × algorithms × datasets (×
//! batch size, α, add-fraction for the sensitivity studies). This module
//! makes the grid a first-class value:
//!
//! * [`SweepSpec`] — a builder describing the axes of a sweep. Expanding a
//!   spec yields independent [`ExperimentCell`]s, each carrying its own
//!   fully-resolved [`RunConfig`] (machine config, seed, overrides), so a
//!   cell's result depends only on the cell, never on the schedule.
//! * [`SweepRunner`] — executes cells across scoped worker threads,
//!   resolves engines through an [`EngineRegistry`], emits JSON-lines
//!   progress events, and collects a stable-ordered [`SweepReport`] with
//!   per-cell wall-clock timing and oracle verdicts.
//! * [`SweepReport`] — lookup helpers for figure renderers plus a
//!   canonical, timing-free serialization used to assert determinism.
//!
//! # Observability
//!
//! Progress events are ordinary [`TraceEvent`]s from the `tdgraph-obs`
//! crate: attach any [`TraceSink`] with [`SweepRunner::trace_sink`] (the
//! JSON-lines stream of [`SweepRunner::progress_jsonl`] is just a
//! [`JsonlSink`]), and enable [`SweepRunner::observe`] to collect a merged,
//! deterministic metrics [`Snapshot`] across every cell of the sweep in
//! [`SweepReport::obs`].
//!
//! # Fault isolation
//!
//! A long sweep must survive one misbehaving cell. Every cell executes
//! behind a fault boundary and finishes with a [`CellOutcome`]:
//!
//! * typed failures ([`TdgraphError`]) — unknown engine keys, invalid run
//!   options, workload preparation errors — become
//!   [`CellOutcome::Failed`];
//! * engine panics are contained with `catch_unwind` and become
//!   [`CellOutcome::Panicked`], never a lost worker thread;
//! * with [`SweepRunner::cell_timeout`], a wall-clock watchdog turns a
//!   wedged cell into [`CellOutcome::TimedOut`];
//! * [`SweepRunner::retry_once`] re-executes a misbehaving cell exactly
//!   once (cells are deterministic, so a retry that succeeds produces the
//!   same bytes a clean run would).
//!
//! [`SweepRunner::checkpoint_to`] appends every completed cell's canonical
//! line to a JSON-lines file, and [`SweepSpec::resume_from`] restores
//! those cells on relaunch so only unfinished cells execute again.
//!
//! ```
//! use tdgraph::graph::datasets::{Dataset, Sizing};
//! use tdgraph::{EngineKind, RunConfig, SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::new()
//!     .datasets([Dataset::Amazon, Dataset::Dblp])
//!     .sizing(Sizing::Tiny)
//!     .engines([EngineKind::LigraO, EngineKind::TdGraphH])
//!     .tune(|o| {
//!         o.sim = tdgraph::sim::SimConfig::small_test();
//!         o.batches = 1;
//!     });
//! let report = SweepRunner::new().threads(2).run(&spec);
//! assert_eq!(report.len(), 4);
//! report.assert_all_ok();
//! report.assert_all_verified();
//! ```

use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use tdgraph_algos::traits::Algo;
use tdgraph_engines::config::{OracleMode, RunConfig, RunSource};
use tdgraph_engines::metrics::RunMetrics;
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_engines::session::RunResult;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::fault::FaultPlan;
use tdgraph_graph::quarantine::{IngestMode, QuarantineReport};
use tdgraph_graph::store::StorageKind;
use tdgraph_obs::{
    keys, JsonlSink, MemoryRecorder, Recorder, ShardedRecorder, Snapshot, TraceEvent, TraceSink,
};
use tdgraph_sim::ExecConfig;

use crate::checkpoint::{self, CanonicalCell, CheckpointError, CheckpointLog};
use crate::error::TdgraphError;
use crate::experiment::{default_registry, EngineKind};

/// How a cell names the engine it runs.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSel {
    /// A built-in engine.
    Kind(EngineKind),
    /// A registry key — built-in or registered by the caller.
    Named(String),
}

impl EngineSel {
    /// The registry key this selection resolves through.
    #[must_use]
    pub fn key(&self) -> &str {
        match self {
            EngineSel::Kind(k) => k.key(),
            EngineSel::Named(n) => n,
        }
    }
}

impl From<EngineKind> for EngineSel {
    fn from(kind: EngineKind) -> Self {
        EngineSel::Kind(kind)
    }
}

impl From<&str> for EngineSel {
    fn from(name: &str) -> Self {
        EngineSel::Named(name.to_string())
    }
}

/// The algorithm axis: a concrete algorithm or the workload's hub SSSP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoSel {
    /// A fixed algorithm.
    Fixed(Algo),
    /// SSSP rooted at the workload's highest-degree vertex (the
    /// methodology default; the root depends on the dataset).
    HubSssp,
}

impl AlgoSel {
    /// Display label (paper benchmark name; hub SSSP is labelled `SSSP`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AlgoSel::Fixed(a) => a.name(),
            AlgoSel::HubSssp => "SSSP",
        }
    }

    /// Resolves to a concrete algorithm for `workload`.
    #[must_use]
    pub fn resolve(&self, workload: &StreamingWorkload) -> Algo {
        match self {
            AlgoSel::Fixed(a) => *a,
            AlgoSel::HubSssp => Algo::sssp(workload.hub_vertex()),
        }
    }
}

impl From<Algo> for AlgoSel {
    fn from(a: Algo) -> Self {
        AlgoSel::Fixed(a)
    }
}

/// A declarative sweep: datasets × algorithms × engines, optionally
/// crossed with batch-size / α / add-fraction / seed override axes.
///
/// Unset override axes inherit the base [`RunConfig`] value, so the
/// minimal spec — datasets and engines — reproduces the serial
/// [`Experiment`](crate::Experiment) loops cell for cell.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    datasets: Vec<Dataset>,
    sizing: Sizing,
    algos: Vec<AlgoSel>,
    engines: Vec<EngineSel>,
    base: RunConfig,
    batch_sizes: Vec<Option<usize>>,
    alphas: Vec<f64>,
    add_fractions: Vec<f64>,
    seeds: Vec<u64>,
    fault_plans: Vec<FaultPlan>,
    oracle_modes: Vec<OracleMode>,
    exec_configs: Vec<ExecConfig>,
    storages: Vec<StorageKind>,
    resume: Option<PathBuf>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty spec: no datasets, no engines, hub SSSP, the
    /// scaled-reference machine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            datasets: Vec::new(),
            sizing: Sizing::Small,
            algos: Vec::new(),
            engines: Vec::new(),
            base: RunConfig {
                sim: tdgraph_sim::SimConfig::scaled_reference(),
                ..RunConfig::default()
            },
            batch_sizes: Vec::new(),
            alphas: Vec::new(),
            add_fractions: Vec::new(),
            seeds: Vec::new(),
            fault_plans: Vec::new(),
            oracle_modes: Vec::new(),
            exec_configs: Vec::new(),
            storages: Vec::new(),
            resume: None,
        }
    }

    /// Appends one dataset.
    #[must_use]
    pub fn dataset(mut self, ds: Dataset) -> Self {
        self.datasets.push(ds);
        self
    }

    /// Appends several datasets.
    #[must_use]
    pub fn datasets(mut self, ds: impl IntoIterator<Item = Dataset>) -> Self {
        self.datasets.extend(ds);
        self
    }

    /// Sets the workload sizing (default [`Sizing::Small`]).
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Appends one fixed algorithm.
    #[must_use]
    pub fn algo(mut self, algo: impl Into<AlgoSel>) -> Self {
        self.algos.push(algo.into());
        self
    }

    /// Appends several algorithm selections — concrete [`Algo`]s or
    /// anything else convertible to [`AlgoSel`], mixed freely.
    #[must_use]
    pub fn algos<I>(mut self, algos: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<AlgoSel>,
    {
        self.algos.extend(algos.into_iter().map(Into::into));
        self
    }

    /// Appends the hub-SSSP algorithm selection (the default when no
    /// algorithm is given).
    #[must_use]
    pub fn hub_sssp(mut self) -> Self {
        self.algos.push(AlgoSel::HubSssp);
        self
    }

    /// Appends one engine.
    #[must_use]
    pub fn engine(mut self, engine: impl Into<EngineSel>) -> Self {
        self.engines.push(engine.into());
        self
    }

    /// Appends several engine selections — built-in [`EngineKind`]s or
    /// registry keys (`&str`), mixed freely via [`EngineSel`] conversion.
    #[must_use]
    pub fn engines<I>(mut self, engines: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<EngineSel>,
    {
        self.engines.extend(engines.into_iter().map(Into::into));
        self
    }

    /// Appends an engine by registry key (for engines registered by the
    /// caller on the runner's [`EngineRegistry`]).
    #[must_use]
    pub fn engine_named(mut self, key: impl Into<String>) -> Self {
        self.engines.push(EngineSel::Named(key.into()));
        self
    }

    /// Replaces the base run configuration.
    #[must_use]
    pub fn options(mut self, options: RunConfig) -> Self {
        self.base = options;
        self
    }

    /// Mutates the base run configuration in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunConfig)) -> Self {
        f(&mut self.base);
        self
    }

    /// Adds a batch-size override axis (Fig 24a).
    #[must_use]
    pub fn batch_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.batch_sizes.extend(sizes.into_iter().map(Some));
        self
    }

    /// Adds an α override axis (Fig 22).
    #[must_use]
    pub fn alphas(mut self, alphas: impl IntoIterator<Item = f64>) -> Self {
        self.alphas.extend(alphas);
        self
    }

    /// Adds an add-fraction override axis (Fig 24b).
    #[must_use]
    pub fn add_fractions(mut self, fractions: impl IntoIterator<Item = f64>) -> Self {
        self.add_fractions.extend(fractions);
        self
    }

    /// Adds a workload-seed override axis (replication studies).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Adds a fault-plan override axis: each plan becomes its own chaos
    /// cell. Include [`FaultPlan::none`] for control cells.
    #[must_use]
    pub fn fault_plans(mut self, plans: impl IntoIterator<Item = FaultPlan>) -> Self {
        self.fault_plans.extend(plans);
        self
    }

    /// Adds a differential-oracle cadence axis.
    #[must_use]
    pub fn oracle_modes(mut self, modes: impl IntoIterator<Item = OracleMode>) -> Self {
        self.oracle_modes.extend(modes);
        self
    }

    /// Crosses the sweep with host execution configurations
    /// ([`ExecConfig::serial`], `.shards(n)`, `.reduce_lanes(k)`,
    /// `.event_encoding(..)`). Cells differ only in host-side parallelism
    /// and wire encoding: canonical report lines, snapshots, and verified
    /// states are identical across configurations by construction, so this
    /// axis measures wall-clock, never model output.
    #[must_use]
    pub fn exec_configs(mut self, configs: impl IntoIterator<Item = ExecConfig>) -> Self {
        self.exec_configs.extend(configs);
        self
    }

    /// Crosses the sweep with graph-storage backends
    /// ([`StorageKind::Csr`], [`StorageKind::Hybrid`]). CSR is the
    /// deterministic byte-identity baseline; the hybrid backend applies
    /// batches in O(touched vertices) and additionally charges its
    /// degree-adaptive layout traffic to the simulated memory system, so
    /// cells that differ only in storage agree on every algorithm fixpoint
    /// while reporting different memory behaviour. Unset, the axis
    /// inherits the base [`RunConfig::storage`].
    #[must_use]
    pub fn storages(mut self, kinds: impl IntoIterator<Item = StorageKind>) -> Self {
        self.storages.extend(kinds);
        self
    }

    /// Former name of [`SweepSpec::exec_configs`], taking the legacy
    /// [`tdgraph_sim::ExecMode`] values.
    #[deprecated(since = "0.8.0", note = "use exec_configs with ExecConfig values")]
    #[must_use]
    #[allow(deprecated)]
    pub fn exec_modes(self, modes: impl IntoIterator<Item = tdgraph_sim::ExecMode>) -> Self {
        self.exec_configs(modes.into_iter().map(ExecConfig::from))
    }

    /// Sets the ingest discipline for every cell (default
    /// [`IngestMode::Strict`]). Lenient ingest turns data-plane faults
    /// into [`CellOutcome::Degraded`] cells with quarantine evidence
    /// instead of [`CellOutcome::Failed`].
    #[must_use]
    pub fn ingest(mut self, mode: IngestMode) -> Self {
        self.base.ingest = mode;
        self
    }

    /// Resumes from the checkpoint file at `path`: cells recorded there
    /// are restored into the report without re-executing, and only the
    /// remaining cells run. A missing file means a fresh start, so the
    /// same spec works for the first launch and every relaunch.
    ///
    /// Records are validated against this spec's expansion
    /// (index and coordinates must agree); a stale or foreign checkpoint
    /// is a [`CheckpointError::SpecMismatch`], not silent corruption.
    #[must_use]
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// The resume checkpoint path, when one was set (the fleet
    /// coordinator honours it the same way the serial runner does).
    pub(crate) fn resume_ref(&self) -> Option<&std::path::Path> {
        self.resume.as_deref()
    }

    /// Number of cells this spec expands to.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        let or1 = |n: usize| n.max(1);
        self.datasets.len()
            * or1(self.algos.len())
            * self.engines.len()
            * or1(self.batch_sizes.len())
            * or1(self.alphas.len())
            * or1(self.add_fractions.len())
            * or1(self.seeds.len())
            * or1(self.fault_plans.len())
            * or1(self.oracle_modes.len())
            * or1(self.exec_configs.len())
            * or1(self.storages.len())
    }

    /// Expands the grid into independent cells, in the documented stable
    /// order: algorithms → datasets → engines → batch sizes → α →
    /// add-fractions → seeds → fault plans → oracle modes → exec configs →
    /// storages, each axis in insertion order.
    ///
    /// Every cell owns a fully-resolved copy of the run options (its own
    /// `SimConfig` and PRNG seed), so running a cell is deterministic no
    /// matter which worker executes it or when.
    #[must_use]
    pub fn expand(&self) -> Vec<ExperimentCell> {
        fn axis<T: Copy>(overrides: &[T], base: T) -> Vec<T> {
            if overrides.is_empty() {
                vec![base]
            } else {
                overrides.to_vec()
            }
        }
        let algos = if self.algos.is_empty() { vec![AlgoSel::HubSssp] } else { self.algos.clone() };
        let batch_sizes = axis(&self.batch_sizes, self.base.batch_size);
        let alphas = axis(&self.alphas, self.base.alpha);
        let add_fractions = axis(&self.add_fractions, self.base.add_fraction);
        let seeds = axis(&self.seeds, self.base.seed);
        let fault_plans = axis(&self.fault_plans, self.base.fault_plan);
        let oracle_modes = axis(&self.oracle_modes, self.base.oracle);
        let exec_configs = axis(&self.exec_configs, self.base.exec);
        let storages = axis(&self.storages, self.base.storage);

        let mut cells = Vec::with_capacity(self.cell_count());
        for algo in &algos {
            for &dataset in &self.datasets {
                for engine in &self.engines {
                    for &batch_size in &batch_sizes {
                        for &alpha in &alphas {
                            for &add_fraction in &add_fractions {
                                for &seed in &seeds {
                                    for &fault_plan in &fault_plans {
                                        for &oracle in &oracle_modes {
                                            for &exec in &exec_configs {
                                                for &storage in &storages {
                                                    let mut options = self.base.clone();
                                                    options.batch_size = batch_size;
                                                    options.alpha = alpha;
                                                    options.add_fraction = add_fraction;
                                                    options.seed = seed;
                                                    options.fault_plan = fault_plan;
                                                    options.oracle = oracle;
                                                    options.exec = exec;
                                                    options.storage = storage;
                                                    cells.push(ExperimentCell {
                                                        index: cells.len(),
                                                        dataset,
                                                        sizing: self.sizing,
                                                        algo: *algo,
                                                        engine: engine.clone(),
                                                        options,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One independent point of a sweep: everything needed to run it, with no
/// shared mutable state.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Position in the expansion order (stable report index).
    pub index: usize,
    /// Dataset to stream.
    pub dataset: Dataset,
    /// Workload sizing.
    pub sizing: Sizing,
    /// Algorithm selection.
    pub algo: AlgoSel,
    /// Engine selection.
    pub engine: EngineSel,
    /// Fully-resolved run configuration (own machine config and seed).
    pub options: RunConfig,
}

impl ExperimentCell {
    /// Runs this cell, resolving the engine through `registry`.
    ///
    /// [`EngineKind::TdGraphCustom`] carries run-time configuration that a
    /// registry key cannot express, so it is the one selection built
    /// directly instead of by key lookup.
    ///
    /// # Errors
    ///
    /// [`TdgraphError::Engine`] when the engine key is unregistered, the
    /// run options fail validation, or the harness reports a typed
    /// failure; [`TdgraphError::Graph`] when the workload cannot be
    /// prepared.
    pub fn run_checked(&self, registry: &EngineRegistry) -> Result<RunResult, TdgraphError> {
        let workload = StreamingWorkload::try_prepare(self.dataset, self.sizing)?;
        let algo = self.algo.resolve(&workload);
        let mut engine = match &self.engine {
            EngineSel::Kind(kind @ EngineKind::TdGraphCustom(_)) => kind.try_build()?,
            sel => registry.try_build(sel.key())?,
        };
        Ok(self.options.run(engine.as_mut(), algo, RunSource::Workload(workload))?)
    }

    /// Runs this cell, panicking on any typed failure. Prefer
    /// [`ExperimentCell::run_checked`]; the sweep runner uses it to keep
    /// failures inside the cell that caused them.
    ///
    /// # Panics
    ///
    /// Panics if [`ExperimentCell::run_checked`] returns an error (e.g.
    /// the engine key is not registered).
    #[must_use]
    pub fn run(&self, registry: &EngineRegistry) -> RunResult {
        match self.run_checked(registry) {
            Ok(result) => result,
            Err(e) => {
                panic!("cell {} [{}] failed: {e}", self.index, checkpoint::cell_coordinates(self))
            }
        }
    }
}

/// The advisory shown with every contained panic: the unwinding stack is
/// gone by the time `catch_unwind` returns, so the honest hint is how to
/// get a real one.
const BACKTRACE_HINT: &str =
    "re-run the failing cell alone with RUST_BACKTRACE=1 to capture a backtrace; \
     cells are deterministic, so the panic reproduces from the cell coordinates";

/// Classification of a [`CellOutcome`] without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeKind {
    /// The cell ran to completion.
    Completed,
    /// The cell ran to completion but quarantined records or hit mid-run
    /// oracle mismatches along the way.
    Degraded,
    /// The cell was restored from a checkpoint without re-executing.
    Restored,
    /// The cell failed with a typed error.
    Failed,
    /// The cell's engine panicked; the panic was contained.
    Panicked,
    /// The cell exceeded the runner's wall-clock watchdog.
    TimedOut,
}

impl OutcomeKind {
    /// Stable lower-snake label (used in progress events and canonical
    /// failure lines).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OutcomeKind::Completed => "completed",
            OutcomeKind::Degraded => "degraded",
            OutcomeKind::Restored => "restored",
            OutcomeKind::Failed => "failed",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::TimedOut => "timed_out",
        }
    }

    /// The kind a [`OutcomeKind::label`] string names (inverse of
    /// `label`; used when outcomes cross a process boundary).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "completed" => Some(OutcomeKind::Completed),
            "degraded" => Some(OutcomeKind::Degraded),
            "restored" => Some(OutcomeKind::Restored),
            "failed" => Some(OutcomeKind::Failed),
            "panicked" => Some(OutcomeKind::Panicked),
            "timed_out" => Some(OutcomeKind::TimedOut),
            _ => None,
        }
    }
}

/// How one cell of a sweep ended.
///
/// Marked `#[non_exhaustive]`: this enum crosses the service boundary,
/// so downstream matches must keep a wildcard arm for outcomes added in
/// later releases.
#[non_exhaustive]
#[derive(Debug)]
pub enum CellOutcome {
    /// The cell ran to completion (metrics and oracle verdict inside,
    /// boxed to keep the failure variants small).
    Completed(Box<RunResult>),
    /// The cell survived to completion, but only by degrading: lenient
    /// ingest quarantined records and/or the mid-run oracle found
    /// mismatches. The full result (including the
    /// [`QuarantineReport`]) is inside; the headline totals are
    /// duplicated here so reporting never digs into the payload.
    Degraded {
        /// The completed run, same shape as a clean completion.
        result: Box<RunResult>,
        /// Total records lenient ingest quarantined.
        quarantined: u64,
        /// Mid-run differential-oracle mismatches.
        oracle_mismatches: u64,
    },
    /// The cell's canonical record was restored from a checkpoint.
    Restored(CanonicalCell),
    /// The cell failed with a typed error before or during the run.
    Failed(TdgraphError),
    /// The cell's engine panicked; the worker thread survived.
    Panicked {
        /// The panic payload (message), when it was a string.
        message: String,
        /// How to obtain a real backtrace for this panic.
        backtrace_hint: String,
    },
    /// The cell exceeded the configured wall-clock timeout. Its runaway
    /// thread is abandoned (threads cannot be killed safely); the worker
    /// moved on to the next cell.
    TimedOut {
        /// The watchdog limit that fired.
        timeout: Duration,
    },
    /// The cell executed in a *worker process* (fleet execution). The
    /// coordinator holds the worker's classification and the canonical
    /// line the worker rendered — re-emitted verbatim by
    /// [`SweepReport::canonical_lines`], which is what makes fleet runs
    /// byte-identical to serial ones — but not the full result payload.
    Remote {
        /// The worker-side outcome classification.
        kind: OutcomeKind,
        /// The worker-side oracle verdict (`false` for failed kinds).
        verified: bool,
        /// The canonical report line the worker rendered (no newline).
        line: String,
        /// The worker-side failure / degradation detail (empty when
        /// clean).
        detail: String,
    },
}

impl CellOutcome {
    /// This outcome's classification.
    #[must_use]
    pub fn kind(&self) -> OutcomeKind {
        match self {
            CellOutcome::Completed(_) => OutcomeKind::Completed,
            CellOutcome::Degraded { .. } => OutcomeKind::Degraded,
            CellOutcome::Restored(_) => OutcomeKind::Restored,
            CellOutcome::Failed(_) => OutcomeKind::Failed,
            CellOutcome::Panicked { .. } => OutcomeKind::Panicked,
            CellOutcome::TimedOut { .. } => OutcomeKind::TimedOut,
            CellOutcome::Remote { kind, .. } => *kind,
        }
    }

    /// Whether the cell produced a usable result (completed, degraded, or
    /// restored — locally or in a worker process).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(
            self.kind(),
            OutcomeKind::Completed | OutcomeKind::Degraded | OutcomeKind::Restored
        )
    }

    /// The full run result, when the cell actually executed this launch.
    #[must_use]
    pub fn run_result(&self) -> Option<&RunResult> {
        match self {
            CellOutcome::Completed(r) => Some(r),
            CellOutcome::Degraded { result, .. } => Some(result),
            _ => None,
        }
    }

    /// One-line failure / degradation description (empty for clean
    /// outcomes).
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            CellOutcome::Completed(_) | CellOutcome::Restored(_) => String::new(),
            CellOutcome::Degraded { result, quarantined, oracle_mismatches } => {
                let mut parts = Vec::new();
                if *quarantined > 0 {
                    parts.push(result.quarantine.summary());
                }
                if *oracle_mismatches > 0 {
                    parts.push(format!(
                        "{oracle_mismatches} oracle mismatch(es) across {} check(s)",
                        result.oracle.checks
                    ));
                }
                parts.join("; ")
            }
            CellOutcome::Failed(e) => e.to_string(),
            CellOutcome::Panicked { message, .. } => message.clone(),
            CellOutcome::TimedOut { timeout } => {
                format!("exceeded the cell timeout of {timeout:?}")
            }
            CellOutcome::Remote { detail, .. } => detail.clone(),
        }
    }
}

/// A finished cell: its spec, outcome, and wall-clock time.
#[derive(Debug)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: ExperimentCell,
    /// How it ended.
    pub outcome: CellOutcome,
    /// Wall-clock execution time of the cell (schedule-dependent; excluded
    /// from [`SweepReport::canonical_lines`]; zero for restored cells).
    pub wall: Duration,
    /// Number of extra executions the runner spent on this cell (0, or 1
    /// when [`SweepRunner::retry_once`] re-ran it).
    pub retries: u32,
}

impl CellResult {
    /// Whether the cell produced a usable result.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the cell's final states matched the oracle (false for
    /// failed cells).
    #[must_use]
    pub fn is_verified(&self) -> bool {
        match &self.outcome {
            CellOutcome::Completed(r) => r.verify.is_match(),
            CellOutcome::Degraded { result, oracle_mismatches, .. } => {
                result.verify.is_match() && *oracle_mismatches == 0
            }
            CellOutcome::Restored(c) => c.verified,
            CellOutcome::Remote { verified, .. } => *verified,
            _ => false,
        }
    }

    /// The run result, when the cell executed this launch.
    #[must_use]
    pub fn run_result(&self) -> Option<&RunResult> {
        self.outcome.run_result()
    }

    /// The run metrics, when the cell executed this launch. Restored
    /// cells only carry their canonical record — re-run without
    /// `resume_from` when the full metrics are needed.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.run_result().map(|r| &r.metrics)
    }

    /// The canonical record of a *clean* ok cell (completed or restored).
    /// Degraded cells return `None` — they are serialized with their
    /// degradation totals appended (see [`SweepReport::canonical_lines`])
    /// and are never checkpointed, so a resume re-runs them.
    #[must_use]
    pub fn canonical(&self) -> Option<CanonicalCell> {
        match &self.outcome {
            CellOutcome::Completed(r) => Some(CanonicalCell::of(&self.cell, r)),
            CellOutcome::Restored(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// This cell's canonical report line, exactly as
    /// [`SweepReport::canonical_lines`] emits it (no trailing newline).
    ///
    /// Clean cells render their canonical record; degraded cells append
    /// their degradation totals; failed cells render an outcome-tagged
    /// line; remote cells re-emit the line their worker rendered,
    /// verbatim.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        match &self.outcome {
            CellOutcome::Remote { line, .. } => line.clone(),
            CellOutcome::Degraded { result, quarantined, oracle_mismatches } => {
                // A degraded cell serializes like a completed one, plus
                // its degradation totals — the metrics are real, the
                // outcome tag says they were earned the hard way.
                let record = CanonicalCell::of(&self.cell, result).to_json_line();
                let base = record.strip_suffix('}').unwrap_or(&record);
                format!(
                    "{base},\"outcome\":\"degraded\",\"quarantined\":{quarantined},\"oracle_mismatches\":{oracle_mismatches}}}"
                )
            }
            _ => match self.canonical() {
                Some(record) => record.to_json_line(),
                None => TraceEvent::record()
                    .field("cell", self.cell.index)
                    .field("dataset", self.cell.dataset.abbrev())
                    .field("sizing", format!("{:?}", self.cell.sizing))
                    .field("algo", self.cell.algo.label())
                    .field("engine", self.cell.engine.key())
                    .field("seed", self.cell.options.seed)
                    .field("outcome", self.outcome.kind().label())
                    .field("detail", self.outcome.detail())
                    .to_json_line(),
            },
        }
    }
}

/// Per-kind outcome totals of a sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Cells that ran to completion.
    pub completed: usize,
    /// Cells that completed with quarantined records or oracle mismatches.
    pub degraded: usize,
    /// Cells restored from a checkpoint.
    pub restored: usize,
    /// Cells that failed with a typed error.
    pub failed: usize,
    /// Cells whose engine panicked.
    pub panicked: usize,
    /// Cells that hit the watchdog timeout.
    pub timed_out: usize,
}

impl OutcomeCounts {
    /// Cells that did not produce a usable result.
    #[must_use]
    pub fn not_ok(&self) -> usize {
        self.failed + self.panicked + self.timed_out
    }
}

/// Stable-ordered results of a sweep (cell order == expansion order).
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Per-cell results, indexed by [`ExperimentCell::index`].
    pub cells: Vec<CellResult>,
    /// Number of checkpoint appends that failed with an I/O error. The
    /// sweep keeps running when the checkpoint disk misbehaves — results
    /// still land in the report — but resume coverage is degraded, so the
    /// count is surfaced here.
    pub checkpoint_write_errors: usize,
    /// Torn final checkpoint lines dropped while resuming (0 or 1): the
    /// previous run was killed mid-append and its last record was
    /// re-executed instead of restored.
    pub torn_tails_dropped: usize,
    /// Merged observability snapshot across every ok cell, present when
    /// the runner ran with [`SweepRunner::observe`]. Cells merge in index
    /// order, so the snapshot (and any rendering of it) is byte-identical
    /// regardless of thread count. Completed cells contribute their full
    /// metrics export; restored cells only carry the headline counters of
    /// their canonical checkpoint record.
    pub obs: Option<Snapshot>,
}

impl SweepReport {
    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Per-kind outcome totals.
    #[must_use]
    pub fn outcome_counts(&self) -> OutcomeCounts {
        let mut counts = OutcomeCounts::default();
        for c in &self.cells {
            match c.outcome.kind() {
                OutcomeKind::Completed => counts.completed += 1,
                OutcomeKind::Degraded => counts.degraded += 1,
                OutcomeKind::Restored => counts.restored += 1,
                OutcomeKind::Failed => counts.failed += 1,
                OutcomeKind::Panicked => counts.panicked += 1,
                OutcomeKind::TimedOut => counts.timed_out += 1,
            }
        }
        counts
    }

    /// Total retries spent across cells.
    #[must_use]
    pub fn total_retries(&self) -> u32 {
        self.cells.iter().map(|c| c.retries).sum()
    }

    /// Whether every cell produced a usable result.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.cells.iter().all(CellResult::is_ok)
    }

    /// Cells that did not produce a usable result, in report order.
    #[must_use]
    pub fn failures(&self) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| !c.is_ok()).collect()
    }

    /// A human-readable digest of every failed cell: index, coordinates,
    /// outcome kind, and the failure detail. Empty when all cells are ok.
    #[must_use]
    pub fn failure_digest(&self) -> String {
        let failures = self.failures();
        if failures.is_empty() {
            return String::new();
        }
        let mut out = format!("{} of {} cells did not complete:\n", failures.len(), self.len());
        for c in failures {
            out.push_str(&format!(
                "  cell {} [{}]: {}: {}{}\n",
                c.cell.index,
                checkpoint::cell_coordinates(&c.cell),
                c.outcome.kind().label(),
                c.outcome.detail(),
                if c.retries > 0 { format!(" (after {} retry)", c.retries) } else { String::new() },
            ));
        }
        out
    }

    /// Panics with the [`SweepReport::failure_digest`] if any cell failed,
    /// panicked, or timed out.
    pub fn assert_all_ok(&self) {
        assert!(self.all_ok(), "sweep had failures\n{}", self.failure_digest());
    }

    /// Whether every cell is ok *and* matched the oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.cells.iter().all(CellResult::is_verified)
    }

    /// Panics with a per-cell description if any cell failed or diverged
    /// from the oracle.
    pub fn assert_all_verified(&self) {
        self.assert_all_ok();
        for c in &self.cells {
            assert!(
                c.is_verified(),
                "{} {} on {:?} diverged from the oracle",
                c.cell.engine.key(),
                c.cell.algo.label(),
                c.cell.dataset,
            );
        }
    }

    /// The first cell matching dataset, algorithm label, and engine key.
    #[must_use]
    pub fn cell(
        &self,
        dataset: Dataset,
        algo_label: &str,
        engine_key: &str,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.cell.dataset == dataset
                && c.cell.algo.label() == algo_label
                && c.cell.engine.key() == engine_key
        })
    }

    /// All cells satisfying `pred`, in report order.
    pub fn select(&self, pred: impl Fn(&CellResult) -> bool) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| pred(c)).collect()
    }

    /// Canonical timing-free serialization: one JSON line per cell with
    /// the cell coordinates, the headline metrics, and the oracle verdict.
    ///
    /// Two runs of the same spec produce byte-identical canonical lines
    /// regardless of thread count or schedule — the determinism contract
    /// the test suite asserts. Restored cells re-emit their stored
    /// checkpoint line verbatim, which extends the contract across
    /// checkpoint/resume. A failed cell emits an outcome-tagged line
    /// (`"outcome"`/`"detail"` instead of metrics).
    #[must_use]
    pub fn canonical_lines(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            out.push_str(&c.canonical_line());
            out.push('\n');
        }
        out
    }

    /// Total wall-clock time across cells (sum, not critical path).
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Degraded cells, in report order.
    #[must_use]
    pub fn degraded(&self) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| c.outcome.kind() == OutcomeKind::Degraded).collect()
    }

    /// A human-readable digest of everything the sweep survived by
    /// degrading: per-cell quarantine / oracle totals plus a merged
    /// quarantine breakdown. Empty when no cell degraded.
    #[must_use]
    pub fn degradation_digest(&self) -> String {
        let degraded = self.degraded();
        if degraded.is_empty() {
            return String::new();
        }
        let mut merged = QuarantineReport::new();
        let mut oracle_checks = 0u64;
        let mut oracle_mismatches = 0u64;
        let mut out = format!("{} of {} cells degraded:\n", degraded.len(), self.len());
        for c in &degraded {
            let Some(r) = c.run_result() else { continue };
            merged.merge(&r.quarantine);
            oracle_checks += r.oracle.checks;
            oracle_mismatches += r.oracle.mismatches;
            out.push_str(&format!(
                "  cell {} [{}]: {}\n",
                c.cell.index,
                checkpoint::cell_coordinates(&c.cell),
                c.outcome.detail(),
            ));
        }
        if !merged.is_empty() {
            out.push_str(&format!("  total: {}\n", merged.summary()));
        }
        if oracle_checks > 0 {
            out.push_str(&format!(
                "  oracle: {oracle_mismatches} mismatch(es) across {oracle_checks} check(s)\n"
            ));
        }
        out
    }
}

/// Constructors for the runner's progress events. Field order within each
/// event is part of the JSON-lines format and must stay stable; wall-clock
/// fields go in as [`tdgraph_obs::Value::Wall`] so canonical renderings
/// stay schedule-independent.
mod events {
    use tdgraph_obs::TraceEvent;

    fn cell_coords(name: &'static str, cell: usize, ds: &str, algo: &str, eng: &str) -> TraceEvent {
        TraceEvent::new(name)
            .field("cell", cell)
            .field("dataset", ds)
            .field("algo", algo)
            .field("engine", eng)
    }

    pub(super) fn sweep_started(cells: usize, threads: usize) -> TraceEvent {
        TraceEvent::new("sweep_started").field("cells", cells).field("threads", threads)
    }

    pub(super) fn cell_started(cell: usize, ds: &str, algo: &str, eng: &str) -> TraceEvent {
        cell_coords("cell_started", cell, ds, algo, eng)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn cell_finished(
        cell: usize,
        ds: &str,
        algo: &str,
        eng: &str,
        cycles: u64,
        verified: bool,
        wall_micros: u128,
    ) -> TraceEvent {
        cell_coords("cell_finished", cell, ds, algo, eng)
            .field("cycles", cycles)
            .field("verified", verified)
            .wall_micros("wall_micros", wall_micros)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn cell_failed(
        cell: usize,
        ds: &str,
        algo: &str,
        eng: &str,
        outcome: &'static str,
        detail: String,
        retries: u32,
        wall_micros: u128,
    ) -> TraceEvent {
        cell_coords("cell_failed", cell, ds, algo, eng)
            .field("outcome", outcome)
            .field("detail", detail)
            .field("retries", u64::from(retries))
            .wall_micros("wall_micros", wall_micros)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn cell_degraded(
        cell: usize,
        ds: &str,
        algo: &str,
        eng: &str,
        cycles: u64,
        quarantined: u64,
        oracle_mismatches: u64,
        wall_micros: u128,
    ) -> TraceEvent {
        cell_coords("cell_degraded", cell, ds, algo, eng)
            .field("cycles", cycles)
            .field("quarantined", quarantined)
            .field("oracle_mismatches", oracle_mismatches)
            .wall_micros("wall_micros", wall_micros)
    }

    pub(super) fn cell_restored(
        cell: usize,
        ds: &str,
        algo: &str,
        eng: &str,
        verified: bool,
    ) -> TraceEvent {
        cell_coords("cell_restored", cell, ds, algo, eng).field("verified", verified)
    }

    pub(super) fn sweep_finished(
        cells: usize,
        verified: usize,
        failed: usize,
        restored: usize,
        retried: u32,
        wall_micros: u128,
    ) -> TraceEvent {
        TraceEvent::new("sweep_finished")
            .field("cells", cells)
            .field("verified", verified)
            .field("failed", failed)
            .field("restored", restored)
            .field("retried", u64::from(retried))
            .wall_micros("wall_micros", wall_micros)
    }
}

type ProgressSink = Arc<dyn Fn(&TraceEvent) + Send + Sync>;

/// The engine registry a sweep resolves through, in a form that can cross
/// into a detached watchdog thread (`'static` either way).
#[derive(Clone)]
pub(crate) enum RegistryHandle {
    /// The process-wide default registry.
    Default,
    /// A caller-supplied registry.
    Shared(Arc<EngineRegistry>),
}

impl RegistryHandle {
    pub(crate) fn get(&self) -> &EngineRegistry {
        match self {
            RegistryHandle::Default => default_registry(),
            RegistryHandle::Shared(r) => r,
        }
    }
}

/// Executes sweeps (and generic index-stable parallel maps) across scoped
/// worker threads.
///
/// Workers pull cells from a shared cursor, so long cells do not starve
/// the rest of the grid; results land in expansion order regardless of
/// completion order. Failures stay inside the cell that caused them — see
/// the module docs for the fault-isolation model.
#[derive(Clone)]
pub struct SweepRunner {
    threads: usize,
    registry: Option<Arc<EngineRegistry>>,
    progress: Option<ProgressSink>,
    sinks: Vec<Arc<dyn TraceSink>>,
    observe: bool,
    cell_timeout: Option<Duration>,
    retry: bool,
    checkpoint: Option<PathBuf>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("custom_registry", &self.registry.is_some())
            .field("progress", &self.progress.is_some())
            .field("sinks", &self.sinks.len())
            .field("observe", &self.observe)
            .field("cell_timeout", &self.cell_timeout)
            .field("retry", &self.retry)
            .field("checkpoint", &self.checkpoint)
            .finish()
    }
}

impl SweepRunner {
    /// A runner using every available core and the default registry.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
        Self {
            threads,
            registry: None,
            progress: None,
            sinks: Vec::new(),
            observe: false,
            cell_timeout: None,
            retry: false,
            checkpoint: None,
        }
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Replaces the engine registry (default: [`default_registry`]), e.g.
    /// to add caller-defined engines for [`SweepSpec::engine_named`].
    #[must_use]
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.registry = Some(Arc::new(registry));
        self
    }

    /// Installs a progress-event callback (a closure [`TraceSink`] that
    /// predates [`SweepRunner::trace_sink`]; both receive every event).
    #[must_use]
    pub fn on_progress(mut self, f: impl Fn(&TraceEvent) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Attaches a structured [`TraceSink`]: every progress event the
    /// runner emits is delivered to it as a [`TraceEvent`]. Sinks fan out
    /// in attachment order; pass an `Arc<VecSink>` (or any shared sink) to
    /// keep a handle for inspection after the sweep.
    #[must_use]
    pub fn trace_sink(mut self, sink: impl TraceSink + 'static) -> Self {
        self.sinks.push(Arc::new(sink));
        self
    }

    /// Streams progress events as JSON lines into `writer` (e.g. stderr or
    /// a log file) through a [`JsonlSink`]. Write errors are ignored —
    /// observability must not kill a sweep.
    #[must_use]
    pub fn progress_jsonl(self, writer: impl Write + Send + 'static) -> Self {
        self.trace_sink(JsonlSink::new(writer))
    }

    /// Collects a merged metrics [`Snapshot`] across the sweep into
    /// [`SweepReport::obs`]: each ok cell's metrics fold into a
    /// [`ShardedRecorder`] shard keyed by the cell index, so the merge
    /// order — and the merged snapshot — is independent of the schedule.
    #[must_use]
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observe = enabled;
        self
    }

    /// Arms a wall-clock watchdog: a cell still running after `timeout`
    /// is reported as [`CellOutcome::TimedOut`] and its worker moves on.
    ///
    /// Each watched cell runs on its own monitored thread; a thread that
    /// overruns is abandoned (Rust threads cannot be killed safely), so a
    /// sweep with timeouts trades bounded thread leakage for bounded
    /// wall-clock time. Unset by default: cells run inline with no extra
    /// thread per cell.
    #[must_use]
    pub fn cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Re-executes a failed / panicked / timed-out cell exactly once
    /// before recording its outcome. Cells are deterministic, so this
    /// only helps against environmental faults (and fault-injection
    /// tests); a retry that succeeds yields the same canonical bytes a
    /// clean run would.
    #[must_use]
    pub fn retry_once(mut self, enabled: bool) -> Self {
        self.retry = enabled;
        self
    }

    /// Appends every completed cell's canonical line to the JSON-lines
    /// file at `path` (created if missing), flushing after each append.
    /// Pair with [`SweepSpec::resume_from`] to make sweeps relaunchable.
    ///
    /// Only completed cells are recorded — failed, panicked, and
    /// timed-out cells stay out of the checkpoint so a resume re-executes
    /// them.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    fn emit(&self, event: &TraceEvent) {
        if let Some(p) = &self.progress {
            p(event);
        }
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn registry_handle(&self) -> RegistryHandle {
        match &self.registry {
            Some(r) => RegistryHandle::Shared(Arc::clone(r)),
            None => RegistryHandle::Default,
        }
    }

    /// Runs every cell of `spec` and collects the stable-ordered report.
    ///
    /// # Panics
    ///
    /// Panics if [`SweepRunner::try_run`] fails to *launch* (checkpoint
    /// file unreadable or mismatched). Per-cell failures never panic the
    /// runner — inspect the report (or call
    /// [`SweepReport::assert_all_ok`]).
    #[must_use]
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        match self.try_run(spec) {
            Ok(report) => report,
            Err(e) => panic!("sweep failed to launch: {e}"),
        }
    }

    /// Runs every cell of `spec` and collects the stable-ordered report.
    ///
    /// Cells that fail — typed error, contained panic, watchdog timeout —
    /// are recorded as their [`CellOutcome`] and do not stop the sweep or
    /// lose a worker thread.
    ///
    /// # Errors
    ///
    /// [`TdgraphError::Checkpoint`] when the spec's resume file exists but
    /// cannot be read or does not describe this sweep, or when the
    /// runner's checkpoint file cannot be opened. Failures *launching*
    /// are errors; failures *running a cell* are outcomes.
    pub fn try_run(&self, spec: &SweepSpec) -> Result<SweepReport, TdgraphError> {
        let cells = spec.expand();
        let (restored, torn_tails_dropped) = match &spec.resume {
            Some(path) => plan_resume(path, &cells)?,
            None => ((0..cells.len()).map(|_| None).collect(), 0),
        };
        let log = match &self.checkpoint {
            Some(path) => Some(CheckpointLog::append_to(path)?),
            None => None,
        };
        let write_errors = AtomicUsize::new(0);
        let registry = self.registry_handle();

        let started = Instant::now();
        self.emit(&events::sweep_started(cells.len(), self.threads.min(cells.len().max(1))));
        let results = self.map(&cells, |i, cell| {
            let (ds, algo, eng) = (cell.dataset.abbrev(), cell.algo.label(), cell.engine.key());
            if let Some(record) = restored.get(i).and_then(Option::as_ref) {
                self.emit(&events::cell_restored(cell.index, ds, algo, eng, record.verified));
                return CellResult {
                    cell: cell.clone(),
                    outcome: CellOutcome::Restored(record.clone()),
                    wall: Duration::ZERO,
                    retries: 0,
                };
            }
            self.emit(&events::cell_started(cell.index, ds, algo, eng));
            let t0 = Instant::now();
            let mut retries = 0;
            let mut outcome = execute_cell(cell, &registry, self.cell_timeout);
            if self.retry && !outcome.is_ok() {
                retries = 1;
                outcome = execute_cell(cell, &registry, self.cell_timeout);
            }
            let wall = t0.elapsed();
            match &outcome {
                CellOutcome::Completed(result) => {
                    if let Some(log) = &log {
                        if log.append(&CanonicalCell::of(cell, result)).is_err() {
                            write_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    self.emit(&events::cell_finished(
                        cell.index,
                        ds,
                        algo,
                        eng,
                        result.metrics.cycles,
                        result.verify.is_match(),
                        wall.as_micros(),
                    ));
                }
                // Degraded cells are deliberately NOT checkpointed: a
                // resume re-runs them, so a fixed input gets a clean pass.
                CellOutcome::Degraded { result, quarantined, oracle_mismatches } => {
                    self.emit(&events::cell_degraded(
                        cell.index,
                        ds,
                        algo,
                        eng,
                        result.metrics.cycles,
                        *quarantined,
                        *oracle_mismatches,
                        wall.as_micros(),
                    ));
                }
                failure => {
                    self.emit(&events::cell_failed(
                        cell.index,
                        ds,
                        algo,
                        eng,
                        failure.kind().label(),
                        failure.detail(),
                        retries,
                        wall.as_micros(),
                    ));
                }
            }
            CellResult { cell: cell.clone(), outcome, wall, retries }
        });
        let obs = self.observe.then(|| {
            let sharded = ShardedRecorder::new();
            for c in &results {
                if let Some(snapshot) = cell_snapshot(c) {
                    sharded.absorb(c.cell.index as u64, snapshot);
                }
            }
            sharded.merged()
        });
        let report = SweepReport {
            cells: results,
            checkpoint_write_errors: write_errors.load(Ordering::Relaxed),
            torn_tails_dropped,
            obs,
        };
        let counts = report.outcome_counts();
        self.emit(&events::sweep_finished(
            report.len(),
            report.cells.iter().filter(|c| c.is_verified()).count(),
            counts.not_ok(),
            counts.restored,
            report.total_retries(),
            started.elapsed().as_micros(),
        ));
        Ok(report)
    }

    /// Index-stable parallel map over arbitrary items: applies `f` to each
    /// item on the worker pool and returns outputs in input order.
    ///
    /// This is the primitive `run` is built on; experiments whose unit of
    /// work is not a simulator cell (native host runs, dataset statistics)
    /// use it directly.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(i, item);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(out) => out,
                // Unreachable: a worker that did not fill its slot panicked
                // in `f`, and that panic already propagated out of the
                // thread scope above.
                None => panic!("worker failed to fill its result slot"),
            })
            .collect()
    }
}

/// Validates a resume checkpoint against the expanded grid and returns,
/// per cell index, the record to restore (last duplicate wins), plus the
/// number of torn final lines dropped by the tolerant loader.
fn plan_resume(
    path: &std::path::Path,
    cells: &[ExperimentCell],
) -> Result<(Vec<Option<CanonicalCell>>, usize), TdgraphError> {
    let loaded = checkpoint::load_tolerant(path)?;
    Ok((plan_restored(loaded.records, cells)?, loaded.torn_tails_dropped))
}

/// Validates already-loaded checkpoint records against the expanded grid
/// (shared between the resume planner and the fleet coordinator).
pub(crate) fn plan_restored(
    records: impl IntoIterator<Item = CanonicalCell>,
    cells: &[ExperimentCell],
) -> Result<Vec<Option<CanonicalCell>>, TdgraphError> {
    let mut restored: Vec<Option<CanonicalCell>> = (0..cells.len()).map(|_| None).collect();
    for record in records {
        let Some(cell) = cells.get(record.cell) else {
            return Err(CheckpointError::SpecMismatch {
                index: record.cell,
                expected: format!("a sweep of {} cells", cells.len()),
                found: record.coordinates(),
            }
            .into());
        };
        if !record.matches(cell) {
            return Err(CheckpointError::SpecMismatch {
                index: record.cell,
                expected: checkpoint::cell_coordinates(cell),
                found: record.coordinates(),
            }
            .into());
        }
        let index = record.cell;
        restored[index] = Some(record);
    }
    Ok(restored)
}

/// The observability snapshot an ok cell contributes to the merged sweep
/// snapshot (`None` for failed cells — they have no metrics to fold).
pub(crate) fn cell_snapshot(result: &CellResult) -> Option<Snapshot> {
    match &result.outcome {
        CellOutcome::Completed(r) => Some(r.metrics.to_snapshot()),
        CellOutcome::Degraded { result, .. } => Some(result.metrics.to_snapshot()),
        CellOutcome::Restored(record) => Some(restored_snapshot(record)),
        _ => None,
    }
}

/// A snapshot rebuilt from a checkpoint record: only the headline counters
/// the canonical line carries (a restored cell never ran, so per-op and
/// cache-level detail is gone).
pub(crate) fn restored_snapshot(record: &CanonicalCell) -> Snapshot {
    let mut mem = MemoryRecorder::new();
    mem.counter(keys::RUN_CYCLES, record.cycles);
    mem.counter(keys::RUN_BATCHES, record.batches);
    mem.counter(keys::STATE_WRITES, record.state_updates);
    mem.counter(keys::USEFUL_UPDATES, record.useful_updates);
    mem.counter(keys::EDGES_PROCESSED, record.edges_processed);
    mem.counter(keys::DRAM_BYTES, record.dram_bytes);
    mem.span_exit(keys::PHASE_PROPAGATION, record.propagation_cycles);
    mem.span_exit(keys::PHASE_OTHER, record.other_cycles);
    mem.into_snapshot()
}

/// Runs one cell behind the fault boundary: typed errors and panics are
/// captured; with a timeout, the cell runs on a monitored thread and a
/// watchdog converts an overrun into [`CellOutcome::TimedOut`].
pub(crate) fn execute_cell(
    cell: &ExperimentCell,
    registry: &RegistryHandle,
    timeout: Option<Duration>,
) -> CellOutcome {
    let Some(limit) = timeout else {
        return execute_inline(cell, registry.get());
    };

    // Completion flag shared with the monitored thread: the cell outcome
    // slot plus a condvar the watchdog waits on.
    type Slot = (Mutex<Option<CellOutcome>>, Condvar);
    let slot: Arc<Slot> = Arc::new((Mutex::new(None), Condvar::new()));
    let worker_slot = Arc::clone(&slot);
    let worker_cell = cell.clone();
    let worker_registry = registry.clone();
    let spawned =
        std::thread::Builder::new().name(format!("tdgraph-cell-{}", cell.index)).spawn(move || {
            // `execute_inline` contains panics, so this thread always
            // reaches the notify and never poisons the slot.
            let outcome = execute_inline(&worker_cell, worker_registry.get());
            let (lock, condvar) = &*worker_slot;
            if let Ok(mut guard) = lock.lock() {
                *guard = Some(outcome);
            }
            condvar.notify_all();
        });
    if spawned.is_err() {
        // Thread exhaustion: degrade to an unwatched inline run rather
        // than reporting a cell failure the cell did not cause.
        return execute_inline(cell, registry.get());
    }

    let (lock, condvar) = &*slot;
    let deadline = Instant::now() + limit;
    let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if let Some(outcome) = guard.take() {
            return outcome;
        }
        let now = Instant::now();
        if now >= deadline {
            // The runaway thread keeps the Arc alive and is abandoned.
            return CellOutcome::TimedOut { timeout: limit };
        }
        let (g, _) =
            condvar.wait_timeout(guard, deadline - now).unwrap_or_else(PoisonError::into_inner);
        guard = g;
    }
}

/// Runs one cell in the current thread, converting typed errors and
/// contained panics into outcomes.
pub(crate) fn execute_inline(cell: &ExperimentCell, registry: &EngineRegistry) -> CellOutcome {
    match catch_unwind(AssertUnwindSafe(|| cell.run_checked(registry))) {
        Ok(Ok(result)) => {
            let quarantined = result.quarantine.total();
            let oracle_mismatches = result.oracle.mismatches;
            if quarantined > 0 || oracle_mismatches > 0 {
                CellOutcome::Degraded { result: Box::new(result), quarantined, oracle_mismatches }
            } else {
                CellOutcome::Completed(Box::new(result))
            }
        }
        Ok(Err(e)) => CellOutcome::Failed(e),
        Err(payload) => CellOutcome::Panicked {
            message: panic_message(payload.as_ref()),
            backtrace_hint: BACKTRACE_HINT.to_string(),
        },
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "engine panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_engines::testutil::{FaultMode, FaultyEngine};
    use tdgraph_sim::SimConfig;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new()
            .datasets([Dataset::Amazon, Dataset::Dblp])
            .sizing(Sizing::Tiny)
            .engines([EngineKind::LigraO, EngineKind::TdGraphH])
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            })
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tdgraph-sweep-{}-{name}", std::process::id()))
    }

    #[test]
    fn expansion_covers_the_grid_in_stable_order() {
        let spec = tiny_spec()
            .algos([Algo::pagerank(), Algo::cc()])
            .alphas([0.005, 0.02])
            .batch_sizes([128]);
        assert_eq!(spec.cell_count(), (2 * 2 * 2) * 2);
        let cells = spec.expand();
        assert_eq!(cells.len(), spec.cell_count());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Outermost axis is the algorithm, innermost the α override.
        assert_eq!(cells[0].algo.label(), "PageRank");
        assert_eq!(cells[0].options.alpha, 0.005);
        assert_eq!(cells[1].options.alpha, 0.02);
        assert_eq!(cells[8].algo.label(), "CC");
        assert!(cells.iter().all(|c| c.options.batch_size == Some(128)));
    }

    #[test]
    fn unset_axes_inherit_base_options() {
        let cells = tiny_spec().expand();
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert_eq!(c.options.seed, RunConfig::default().seed);
            assert_eq!(c.options.alpha, RunConfig::default().alpha);
            assert_eq!(c.algo, AlgoSel::HubSssp);
        }
    }

    #[test]
    fn runner_runs_and_verifies_in_parallel() {
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&events);
        let report = SweepRunner::new()
            .threads(2)
            .on_progress(move |e| sink.lock().unwrap().push(e.to_json_line()))
            .run(&tiny_spec());
        assert_eq!(report.len(), 4);
        report.assert_all_verified();
        assert_eq!(report.outcome_counts().completed, 4);
        // Stable order: report order equals expansion order.
        for (i, c) in report.cells.iter().enumerate() {
            assert_eq!(c.cell.index, i);
        }
        let events = events.lock().unwrap();
        assert!(events[0].contains("sweep_started"));
        assert!(events.last().unwrap().contains("sweep_finished"));
        assert!(events.last().unwrap().contains("\"failed\":0"));
        assert_eq!(events.iter().filter(|e| e.contains("cell_finished")).count(), 4);
        for e in events.iter() {
            assert!(e.starts_with('{') && e.ends_with('}'), "not a JSON line: {e}");
        }
    }

    #[test]
    fn trace_sinks_receive_every_progress_event() {
        let sink = Arc::new(tdgraph_obs::VecSink::new());
        let report = SweepRunner::new().threads(2).trace_sink(Arc::clone(&sink)).run(&tiny_spec());
        report.assert_all_verified();
        let events = sink.events();
        // sweep_started + 4 × (cell_started + cell_finished) + sweep_finished.
        assert_eq!(events.len(), 10);
        assert_eq!(events[0].name(), "sweep_started");
        assert_eq!(events.last().unwrap().name(), "sweep_finished");
        assert_eq!(events.iter().filter(|e| e.name() == "cell_finished").count(), 4);
        // The sink's canonical lines carry the cell coordinates but no
        // schedule-dependent wall-clock fields.
        for e in &events {
            assert!(!e.canonical_json_line().contains("wall_micros"), "{e:?}");
        }
        // The legacy callback and a sink observe the same event stream: a
        // serial run delivers identical canonical lines to both.
        let cb_lines: Arc<Mutex<Vec<String>>> = Arc::default();
        let cb = Arc::clone(&cb_lines);
        let sink2 = Arc::new(tdgraph_obs::VecSink::new());
        SweepRunner::new()
            .threads(1)
            .on_progress(move |e| cb.lock().unwrap().push(e.canonical_json_line()))
            .trace_sink(Arc::clone(&sink2))
            .run(&tiny_spec())
            .assert_all_verified();
        assert_eq!(*cb_lines.lock().unwrap(), sink2.canonical_lines());
    }

    #[test]
    fn observe_collects_a_deterministic_merged_snapshot() {
        let spec = tiny_spec();
        let one = SweepRunner::new().threads(1).observe(true).run(&spec);
        let four = SweepRunner::new().threads(4).observe(true).run(&spec);
        let a = one.obs.expect("observe(true) fills the snapshot");
        let b = four.obs.expect("observe(true) fills the snapshot");
        assert_eq!(a, b);
        assert_eq!(a.canonical_json_line(), b.canonical_json_line());
        assert_eq!(a.counter(keys::RUN_BATCHES), 4);
        assert!(a.counter(keys::EDGES_PROCESSED) > 0);
        assert!(a.counter(keys::RUN_CYCLES) > 0);
        // Unobserved runs carry no snapshot.
        assert!(SweepRunner::new().run(&spec).obs.is_none());
    }

    #[test]
    fn resumed_sweep_restores_headline_counters_into_obs() {
        let path = temp_path("resume-obs.jsonl");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();
        let first = SweepRunner::new().threads(2).observe(true).checkpoint_to(&path).run(&spec);
        let resumed =
            SweepRunner::new().threads(2).observe(true).run(&spec.clone().resume_from(&path));
        assert_eq!(resumed.outcome_counts().restored, 4);
        let a = first.obs.expect("observed");
        let b = resumed.obs.expect("observed");
        for key in [
            keys::RUN_CYCLES,
            keys::RUN_BATCHES,
            keys::STATE_WRITES,
            keys::USEFUL_UPDATES,
            keys::EDGES_PROCESSED,
            keys::DRAM_BYTES,
        ] {
            assert_eq!(a.counter(key), b.counter(key), "counter {key} diverged across resume");
        }
        for phase in [keys::PHASE_PROPAGATION, keys::PHASE_OTHER] {
            assert_eq!(
                a.phase(phase).map(|p| p.cycles),
                b.phase(phase).map(|p| p.cycles),
                "phase {phase} diverged across resume"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn map_preserves_input_order() {
        let runner = SweepRunner::new().threads(4);
        let items: Vec<usize> = (0..64).collect();
        let out = runner.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn unknown_named_engine_is_a_per_cell_failure() {
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("warp-drive");
        let report = SweepRunner::new().run(&spec);
        assert_eq!(report.len(), 1);
        assert!(!report.all_ok());
        assert_eq!(report.outcome_counts().failed, 1);
        match &report.cells[0].outcome {
            CellOutcome::Failed(TdgraphError::Engine(e)) => {
                assert!(e.to_string().contains("warp-drive"));
            }
            other => panic!("expected a typed engine failure, got {other:?}"),
        }
        let digest = report.failure_digest();
        assert!(digest.contains("warp-drive") && digest.contains("not registered"), "{digest}");
    }

    #[test]
    #[should_panic(expected = "sweep had failures")]
    fn assert_all_ok_panics_with_the_digest() {
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("warp-drive");
        SweepRunner::new().run(&spec).assert_all_ok();
    }

    #[test]
    fn engine_panics_are_contained_per_cell() {
        let mut registry = EngineRegistry::with_software();
        registry.register("boom", || Box::new(FaultyEngine::new(FaultMode::PanicOnBatch(0))));
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("ligra-o")
            .engine_named("boom")
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new().threads(2).registry(registry).run(&spec);
        assert_eq!(report.len(), 2, "the panicking cell must not take the sweep down");
        assert!(report.cells[0].is_verified());
        match &report.cells[1].outcome {
            CellOutcome::Panicked { message, backtrace_hint } => {
                assert!(message.contains("injected fault"), "{message}");
                assert!(backtrace_hint.contains("RUST_BACKTRACE=1"));
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
        // Failure lines are canonical too (outcome-tagged).
        let lines = report.canonical_lines();
        assert!(lines.contains("\"outcome\":\"panicked\""), "{lines}");
    }

    #[test]
    fn watchdog_times_out_a_wedged_cell() {
        let mut registry = EngineRegistry::with_software();
        registry.register("sleeper", || {
            Box::new(FaultyEngine::new(FaultMode::SleepOnBatch(0, Duration::from_secs(20))))
        });
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("sleeper")
            .engine_named("ligra-o")
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new()
            .threads(1)
            .registry(registry)
            .cell_timeout(Duration::from_millis(200))
            .run(&spec);
        assert_eq!(report.len(), 2, "the wedged cell must not block the sweep");
        assert!(
            matches!(report.cells[0].outcome, CellOutcome::TimedOut { .. }),
            "got {:?}",
            report.cells[0].outcome
        );
        // The cell scheduled after the wedge still ran to completion on
        // the same worker.
        assert!(report.cells[1].is_verified());
        assert_eq!(report.outcome_counts().timed_out, 1);
    }

    #[test]
    fn retry_once_recovers_a_transient_fault_byte_identically() {
        // An engine that panics on its first construction only — the
        // deterministic stand-in for a transient environmental fault.
        let make_registry = |poison_first: bool| {
            let mut registry = EngineRegistry::with_software();
            let builds = Arc::new(AtomicUsize::new(0));
            registry.register("flaky", move || {
                if poison_first && builds.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected fault: first build fails");
                }
                Box::new(FaultyEngine::new(FaultMode::None))
            });
            registry
        };
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("flaky")
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let flaky =
            SweepRunner::new().threads(1).registry(make_registry(true)).retry_once(true).run(&spec);
        flaky.assert_all_verified();
        assert_eq!(flaky.cells[0].retries, 1);
        assert_eq!(flaky.total_retries(), 1);

        let clean = SweepRunner::new().threads(1).registry(make_registry(false)).run(&spec);
        assert_eq!(flaky.canonical_lines(), clean.canonical_lines());
    }

    #[test]
    fn checkpoint_then_resume_restores_byte_identically() {
        let path = temp_path("resume-unit.jsonl");
        let _ = std::fs::remove_file(&path);
        let spec = tiny_spec();

        let first = SweepRunner::new().threads(2).checkpoint_to(&path).run(&spec);
        first.assert_all_verified();
        assert_eq!(first.checkpoint_write_errors, 0);

        let resumed = SweepRunner::new().threads(2).run(&spec.clone().resume_from(&path));
        assert_eq!(resumed.outcome_counts().restored, 4);
        resumed.assert_all_verified();
        assert_eq!(first.canonical_lines(), resumed.canonical_lines());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_rejects_a_mismatched_checkpoint() {
        let path = temp_path("resume-mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let first = SweepRunner::new().checkpoint_to(&path).run(&tiny_spec());
        first.assert_all_ok();

        // A different grid at the same path must be refused, not mixed in.
        let other = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine(EngineKind::LigraO)
            .seeds([1, 2, 3, 4])
            .resume_from(&path);
        let err = SweepRunner::new().try_run(&other).unwrap_err();
        assert!(
            matches!(err, TdgraphError::Checkpoint(CheckpointError::SpecMismatch { .. })),
            "got {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_resume_file_is_a_fresh_start() {
        let path = temp_path("resume-missing.jsonl");
        let _ = std::fs::remove_file(&path);
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine(EngineKind::LigraO)
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            })
            .resume_from(&path);
        let report = SweepRunner::new().run(&spec);
        assert_eq!(report.outcome_counts().restored, 0);
        report.assert_all_verified();
    }

    #[test]
    fn custom_kind_cells_keep_their_configuration() {
        use tdgraph_accel::tdgraph::TdGraphConfig;
        let cfg = TdGraphConfig { vscu_enabled: false, ..TdGraphConfig::default() };
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine(EngineKind::TdGraphCustom(cfg))
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new().run(&spec);
        report.assert_all_verified();
        // The cell's config survives key-based resolution: disabling the
        // VSCU must not fall back to the default ("TDGraph-H") build.
        assert_eq!(report.cells[0].metrics().unwrap().engine, "TDGraph-H-without");
    }

    #[test]
    fn fault_and_oracle_axes_expand_innermost() {
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine(EngineKind::LigraO)
            .fault_plans([FaultPlan::none(), FaultPlan::seeded(1).with_nan_weights(0.5)])
            .oracle_modes([OracleMode::Final, OracleMode::EveryNBatches(1)]);
        assert_eq!(spec.cell_count(), 4);
        let cells = spec.expand();
        assert_eq!(cells.len(), 4);
        // Innermost axis is the oracle mode, then the fault plan.
        assert!(cells[0].options.fault_plan.is_noop());
        assert_eq!(cells[0].options.oracle, OracleMode::Final);
        assert_eq!(cells[1].options.oracle, OracleMode::EveryNBatches(1));
        assert!(!cells[2].options.fault_plan.is_noop());
        // Unset chaos axes inherit the base options.
        let plain = tiny_spec().expand();
        assert!(plain.iter().all(|c| c.options.fault_plan.is_noop()));
        assert!(plain.iter().all(|c| c.options.oracle == OracleMode::Final));
        assert!(plain.iter().all(|c| c.options.ingest == IngestMode::Strict));
    }

    #[test]
    fn lenient_chaos_cells_degrade_with_evidence() {
        let sink = Arc::new(tdgraph_obs::VecSink::new());
        let spec = tiny_spec()
            .ingest(IngestMode::Lenient)
            .fault_plans([FaultPlan::seeded(5).with_absent_deletions(1.0)]);
        let report = SweepRunner::new().threads(2).trace_sink(Arc::clone(&sink)).run(&spec);
        report.assert_all_ok();
        let counts = report.outcome_counts();
        assert_eq!(counts.degraded, 4, "every cell must degrade, not fail: {counts:?}");
        assert_eq!(counts.not_ok(), 0);
        for c in &report.cells {
            let r = c.run_result().expect("degraded cells carry their result");
            assert!(!r.quarantine.is_empty());
            assert!(c.is_verified(), "surviving updates still verify");
        }
        let digest = report.degradation_digest();
        assert!(digest.contains("4 of 4 cells degraded"), "{digest}");
        assert!(digest.contains("absent_deletion"), "{digest}");
        assert_eq!(
            sink.events().iter().filter(|e| e.name() == "cell_degraded").count(),
            4,
            "degraded cells emit their own progress event"
        );
        let lines = report.canonical_lines();
        assert!(lines.contains("\"outcome\":\"degraded\""), "{lines}");
        assert!(lines.contains("\"quarantined\":"), "{lines}");
    }

    #[test]
    fn strict_chaos_cells_fail_instead_of_degrading() {
        let spec = tiny_spec().fault_plans([FaultPlan::seeded(5).with_absent_deletions(1.0)]);
        let report = SweepRunner::new().threads(1).run(&spec);
        assert_eq!(report.outcome_counts().failed, 4);
        assert_eq!(report.outcome_counts().degraded, 0);
        assert!(report.degradation_digest().is_empty());
    }

    #[test]
    fn degraded_sweep_is_byte_identical_across_thread_counts() {
        let spec = tiny_spec()
            .ingest(IngestMode::Lenient)
            .fault_plans([FaultPlan::seeded(9).with_absent_deletions(1.0).with_nan_weights(0.4)]);
        let one = SweepRunner::new().threads(1).run(&spec);
        let two = SweepRunner::new().threads(2).run(&spec);
        assert_eq!(one.canonical_lines(), two.canonical_lines());
        assert_eq!(one.degradation_digest(), two.degradation_digest());
    }

    #[test]
    fn noop_fault_plan_matches_the_plain_sweep_byte_for_byte() {
        let plain = SweepRunner::new().threads(2).run(&tiny_spec());
        let chaos_control = SweepRunner::new()
            .threads(2)
            .run(&tiny_spec().ingest(IngestMode::Lenient).fault_plans([FaultPlan::none()]));
        assert_eq!(plain.canonical_lines(), chaos_control.canonical_lines());
        assert_eq!(chaos_control.outcome_counts().degraded, 0);
    }

    #[test]
    fn custom_registry_engines_run_by_name() {
        let mut registry = EngineRegistry::with_software();
        registry.register("my-ligra", || Box::new(tdgraph_engines::ligra_o::LigraO));
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("my-ligra")
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new().registry(registry).run(&spec);
        assert_eq!(report.len(), 1);
        report.assert_all_verified();
        assert_eq!(report.cells[0].metrics().unwrap().engine, "Ligra-o");
    }
}
