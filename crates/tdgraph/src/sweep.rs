//! Declarative experiment sweeps and the parallel multi-experiment runner.
//!
//! The paper's evaluation is a grid: engines × algorithms × datasets (×
//! batch size, α, add-fraction for the sensitivity studies). This module
//! makes the grid a first-class value:
//!
//! * [`SweepSpec`] — a builder describing the axes of a sweep. Expanding a
//!   spec yields independent [`ExperimentCell`]s, each carrying its own
//!   fully-resolved [`RunOptions`] (machine config, seed, overrides), so a
//!   cell's result depends only on the cell, never on the schedule.
//! * [`SweepRunner`] — executes cells across scoped worker threads,
//!   resolves engines through an [`EngineRegistry`], emits JSON-lines
//!   progress events, and collects a stable-ordered [`SweepReport`] with
//!   per-cell wall-clock timing and oracle verdicts.
//! * [`SweepReport`] — lookup helpers for figure renderers plus a
//!   canonical, timing-free serialization used to assert determinism.
//!
//! ```
//! use tdgraph::graph::datasets::{Dataset, Sizing};
//! use tdgraph::{EngineKind, RunOptions, SweepRunner, SweepSpec};
//!
//! let spec = SweepSpec::new()
//!     .datasets([Dataset::Amazon, Dataset::Dblp])
//!     .sizing(Sizing::Tiny)
//!     .engines([EngineKind::LigraO, EngineKind::TdGraphH])
//!     .tune(|o| {
//!         o.sim = tdgraph::sim::SimConfig::small_test();
//!         o.batches = 1;
//!     });
//! let report = SweepRunner::new().threads(2).run(&spec);
//! assert_eq!(report.len(), 4);
//! report.assert_all_verified();
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdgraph_algos::traits::Algo;
use tdgraph_engines::harness::{run_streaming_workload, RunOptions, RunResult};
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};

use crate::experiment::{default_registry, EngineKind};

/// How a cell names the engine it runs.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSel {
    /// A built-in engine.
    Kind(EngineKind),
    /// A registry key — built-in or registered by the caller.
    Named(String),
}

impl EngineSel {
    /// The registry key this selection resolves through.
    #[must_use]
    pub fn key(&self) -> &str {
        match self {
            EngineSel::Kind(k) => k.key(),
            EngineSel::Named(n) => n,
        }
    }
}

impl From<EngineKind> for EngineSel {
    fn from(kind: EngineKind) -> Self {
        EngineSel::Kind(kind)
    }
}

impl From<&str> for EngineSel {
    fn from(name: &str) -> Self {
        EngineSel::Named(name.to_string())
    }
}

/// The algorithm axis: a concrete algorithm or the workload's hub SSSP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoSel {
    /// A fixed algorithm.
    Fixed(Algo),
    /// SSSP rooted at the workload's highest-degree vertex (the
    /// methodology default; the root depends on the dataset).
    HubSssp,
}

impl AlgoSel {
    /// Display label (paper benchmark name; hub SSSP is labelled `SSSP`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AlgoSel::Fixed(a) => a.name(),
            AlgoSel::HubSssp => "SSSP",
        }
    }

    /// Resolves to a concrete algorithm for `workload`.
    #[must_use]
    pub fn resolve(&self, workload: &StreamingWorkload) -> Algo {
        match self {
            AlgoSel::Fixed(a) => *a,
            AlgoSel::HubSssp => Algo::sssp(workload.hub_vertex()),
        }
    }
}

impl From<Algo> for AlgoSel {
    fn from(a: Algo) -> Self {
        AlgoSel::Fixed(a)
    }
}

/// A declarative sweep: datasets × algorithms × engines, optionally
/// crossed with batch-size / α / add-fraction / seed override axes.
///
/// Unset override axes inherit the base [`RunOptions`] value, so the
/// minimal spec — datasets and engines — reproduces the serial
/// [`Experiment`](crate::Experiment) loops cell for cell.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    datasets: Vec<Dataset>,
    sizing: Sizing,
    algos: Vec<AlgoSel>,
    engines: Vec<EngineSel>,
    base: RunOptions,
    batch_sizes: Vec<Option<usize>>,
    alphas: Vec<f64>,
    add_fractions: Vec<f64>,
    seeds: Vec<u64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSpec {
    /// An empty spec: no datasets, no engines, hub SSSP, the
    /// scaled-reference machine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            datasets: Vec::new(),
            sizing: Sizing::Small,
            algos: Vec::new(),
            engines: Vec::new(),
            base: RunOptions {
                sim: tdgraph_sim::SimConfig::scaled_reference(),
                ..RunOptions::default()
            },
            batch_sizes: Vec::new(),
            alphas: Vec::new(),
            add_fractions: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Appends one dataset.
    #[must_use]
    pub fn dataset(mut self, ds: Dataset) -> Self {
        self.datasets.push(ds);
        self
    }

    /// Appends several datasets.
    #[must_use]
    pub fn datasets(mut self, ds: impl IntoIterator<Item = Dataset>) -> Self {
        self.datasets.extend(ds);
        self
    }

    /// Sets the workload sizing (default [`Sizing::Small`]).
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Appends one fixed algorithm.
    #[must_use]
    pub fn algo(mut self, algo: impl Into<AlgoSel>) -> Self {
        self.algos.push(algo.into());
        self
    }

    /// Appends several fixed algorithms.
    #[must_use]
    pub fn algos(mut self, algos: impl IntoIterator<Item = Algo>) -> Self {
        self.algos.extend(algos.into_iter().map(AlgoSel::Fixed));
        self
    }

    /// Appends the hub-SSSP algorithm selection (the default when no
    /// algorithm is given).
    #[must_use]
    pub fn hub_sssp(mut self) -> Self {
        self.algos.push(AlgoSel::HubSssp);
        self
    }

    /// Appends one engine.
    #[must_use]
    pub fn engine(mut self, engine: impl Into<EngineSel>) -> Self {
        self.engines.push(engine.into());
        self
    }

    /// Appends several built-in engines.
    #[must_use]
    pub fn engines(mut self, engines: impl IntoIterator<Item = EngineKind>) -> Self {
        self.engines.extend(engines.into_iter().map(EngineSel::Kind));
        self
    }

    /// Appends an engine by registry key (for engines registered by the
    /// caller on the runner's [`EngineRegistry`]).
    #[must_use]
    pub fn engine_named(mut self, key: impl Into<String>) -> Self {
        self.engines.push(EngineSel::Named(key.into()));
        self
    }

    /// Replaces the base run options.
    #[must_use]
    pub fn options(mut self, options: RunOptions) -> Self {
        self.base = options;
        self
    }

    /// Mutates the base run options in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunOptions)) -> Self {
        f(&mut self.base);
        self
    }

    /// Adds a batch-size override axis (Fig 24a).
    #[must_use]
    pub fn batch_sizes(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.batch_sizes.extend(sizes.into_iter().map(Some));
        self
    }

    /// Adds an α override axis (Fig 22).
    #[must_use]
    pub fn alphas(mut self, alphas: impl IntoIterator<Item = f64>) -> Self {
        self.alphas.extend(alphas);
        self
    }

    /// Adds an add-fraction override axis (Fig 24b).
    #[must_use]
    pub fn add_fractions(mut self, fractions: impl IntoIterator<Item = f64>) -> Self {
        self.add_fractions.extend(fractions);
        self
    }

    /// Adds a workload-seed override axis (replication studies).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Number of cells this spec expands to.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        let or1 = |n: usize| n.max(1);
        self.datasets.len()
            * or1(self.algos.len())
            * self.engines.len()
            * or1(self.batch_sizes.len())
            * or1(self.alphas.len())
            * or1(self.add_fractions.len())
            * or1(self.seeds.len())
    }

    /// Expands the grid into independent cells, in the documented stable
    /// order: algorithms → datasets → engines → batch sizes → α →
    /// add-fractions → seeds, each axis in insertion order.
    ///
    /// Every cell owns a fully-resolved copy of the run options (its own
    /// `SimConfig` and PRNG seed), so running a cell is deterministic no
    /// matter which worker executes it or when.
    #[must_use]
    pub fn expand(&self) -> Vec<ExperimentCell> {
        fn axis<T: Copy>(overrides: &[T], base: T) -> Vec<T> {
            if overrides.is_empty() {
                vec![base]
            } else {
                overrides.to_vec()
            }
        }
        let algos = if self.algos.is_empty() { vec![AlgoSel::HubSssp] } else { self.algos.clone() };
        let batch_sizes = axis(&self.batch_sizes, self.base.batch_size);
        let alphas = axis(&self.alphas, self.base.alpha);
        let add_fractions = axis(&self.add_fractions, self.base.add_fraction);
        let seeds = axis(&self.seeds, self.base.seed);

        let mut cells = Vec::with_capacity(self.cell_count());
        for algo in &algos {
            for &dataset in &self.datasets {
                for engine in &self.engines {
                    for &batch_size in &batch_sizes {
                        for &alpha in &alphas {
                            for &add_fraction in &add_fractions {
                                for &seed in &seeds {
                                    let mut options = self.base.clone();
                                    options.batch_size = batch_size;
                                    options.alpha = alpha;
                                    options.add_fraction = add_fraction;
                                    options.seed = seed;
                                    cells.push(ExperimentCell {
                                        index: cells.len(),
                                        dataset,
                                        sizing: self.sizing,
                                        algo: *algo,
                                        engine: engine.clone(),
                                        options,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// One independent point of a sweep: everything needed to run it, with no
/// shared mutable state.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Position in the expansion order (stable report index).
    pub index: usize,
    /// Dataset to stream.
    pub dataset: Dataset,
    /// Workload sizing.
    pub sizing: Sizing,
    /// Algorithm selection.
    pub algo: AlgoSel,
    /// Engine selection.
    pub engine: EngineSel,
    /// Fully-resolved run options (own machine config and seed).
    pub options: RunOptions,
}

impl ExperimentCell {
    /// Runs this cell, resolving the engine through `registry`.
    ///
    /// [`EngineKind::TdGraphCustom`] carries run-time configuration that a
    /// registry key cannot express, so it is the one selection built
    /// directly instead of by key lookup.
    ///
    /// # Panics
    ///
    /// Panics if the engine key is not registered.
    #[must_use]
    pub fn run(&self, registry: &EngineRegistry) -> RunResult {
        let workload = StreamingWorkload::prepare(self.dataset, self.sizing);
        let algo = self.algo.resolve(&workload);
        let mut engine = match &self.engine {
            EngineSel::Kind(kind @ EngineKind::TdGraphCustom(_)) => kind.build(),
            sel => registry.build(sel.key()).unwrap_or_else(|| {
                panic!(
                    "engine '{}' is not registered (known: {})",
                    sel.key(),
                    registry.names().collect::<Vec<_>>().join(", ")
                )
            }),
        };
        run_streaming_workload(engine.as_mut(), algo, workload, &self.options)
    }
}

/// A finished cell: its spec, run result, and wall-clock time.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: ExperimentCell,
    /// Metrics and oracle verdict.
    pub result: RunResult,
    /// Wall-clock execution time of the cell (schedule-dependent; excluded
    /// from [`SweepReport::canonical_lines`]).
    pub wall: Duration,
}

/// Stable-ordered results of a sweep (cell order == expansion order).
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-cell results, indexed by [`ExperimentCell::index`].
    pub cells: Vec<CellResult>,
}

impl SweepReport {
    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether every cell matched the oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.cells.iter().all(|c| c.result.verify.is_match())
    }

    /// Panics with a per-cell description if any cell diverged from the
    /// oracle.
    pub fn assert_all_verified(&self) {
        for c in &self.cells {
            assert!(
                c.result.verify.is_match(),
                "{} {} on {:?} diverged: {:?}",
                c.cell.engine.key(),
                c.cell.algo.label(),
                c.cell.dataset,
                c.result.verify
            );
        }
    }

    /// The first cell matching dataset, algorithm label, and engine key.
    #[must_use]
    pub fn cell(
        &self,
        dataset: Dataset,
        algo_label: &str,
        engine_key: &str,
    ) -> Option<&CellResult> {
        self.cells.iter().find(|c| {
            c.cell.dataset == dataset
                && c.cell.algo.label() == algo_label
                && c.cell.engine.key() == engine_key
        })
    }

    /// All cells satisfying `pred`, in report order.
    pub fn select(&self, pred: impl Fn(&CellResult) -> bool) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| pred(c)).collect()
    }

    /// Canonical timing-free serialization: one JSON line per cell with
    /// the cell coordinates, the headline metrics, and the oracle verdict.
    ///
    /// Two runs of the same spec produce byte-identical canonical lines
    /// regardless of thread count or schedule — the determinism contract
    /// the test suite asserts.
    #[must_use]
    pub fn canonical_lines(&self) -> String {
        let mut out = String::new();
        for c in &self.cells {
            let m = &c.result.metrics;
            out.push_str(&format!(
                "{{\"cell\":{},\"dataset\":\"{}\",\"sizing\":\"{:?}\",\
                 \"algo\":\"{}\",\"engine\":\"{}\",\"seed\":{},\
                 \"cycles\":{},\"propagation_cycles\":{},\"other_cycles\":{},\
                 \"state_updates\":{},\"useful_updates\":{},\
                 \"edges_processed\":{},\"dram_bytes\":{},\"batches\":{},\
                 \"verified\":{}}}\n",
                c.cell.index,
                c.cell.dataset.abbrev(),
                c.cell.sizing,
                c.cell.algo.label(),
                c.cell.engine.key(),
                c.cell.options.seed,
                m.cycles,
                m.propagation_cycles,
                m.other_cycles,
                m.state_updates,
                m.useful_updates,
                m.edges_processed,
                m.dram_bytes,
                m.batches,
                c.result.verify.is_match(),
            ));
        }
        out
    }

    /// Total wall-clock time across cells (sum, not critical path).
    #[must_use]
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }
}

/// A JSON-lines progress event emitted by [`SweepRunner`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// The sweep started.
    SweepStarted {
        /// Total cells to run.
        cells: usize,
        /// Worker threads used.
        threads: usize,
    },
    /// A worker picked up a cell.
    CellStarted {
        /// Cell index.
        cell: usize,
        /// Dataset abbreviation.
        dataset: &'static str,
        /// Algorithm label.
        algo: &'static str,
        /// Engine registry key.
        engine: String,
    },
    /// A cell finished.
    CellFinished {
        /// Cell index.
        cell: usize,
        /// Dataset abbreviation.
        dataset: &'static str,
        /// Algorithm label.
        algo: &'static str,
        /// Engine registry key.
        engine: String,
        /// Simulated cycles.
        cycles: u64,
        /// Oracle verdict.
        verified: bool,
        /// Wall-clock microseconds.
        wall_micros: u128,
    },
    /// The sweep finished.
    SweepFinished {
        /// Total cells run.
        cells: usize,
        /// Cells that matched the oracle.
        verified: usize,
        /// Wall-clock microseconds for the whole sweep.
        wall_micros: u128,
    },
}

impl ProgressEvent {
    /// Renders the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            ProgressEvent::SweepStarted { cells, threads } => {
                format!("{{\"event\":\"sweep_started\",\"cells\":{cells},\"threads\":{threads}}}")
            }
            ProgressEvent::CellStarted { cell, dataset, algo, engine } => format!(
                "{{\"event\":\"cell_started\",\"cell\":{cell},\
                 \"dataset\":\"{dataset}\",\"algo\":\"{algo}\",\
                 \"engine\":\"{engine}\"}}"
            ),
            ProgressEvent::CellFinished {
                cell,
                dataset,
                algo,
                engine,
                cycles,
                verified,
                wall_micros,
            } => format!(
                "{{\"event\":\"cell_finished\",\"cell\":{cell},\
                 \"dataset\":\"{dataset}\",\"algo\":\"{algo}\",\
                 \"engine\":\"{engine}\",\"cycles\":{cycles},\
                 \"verified\":{verified},\"wall_micros\":{wall_micros}}}"
            ),
            ProgressEvent::SweepFinished { cells, verified, wall_micros } => format!(
                "{{\"event\":\"sweep_finished\",\"cells\":{cells},\
                 \"verified\":{verified},\"wall_micros\":{wall_micros}}}"
            ),
        }
    }
}

type ProgressSink = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Executes sweeps (and generic index-stable parallel maps) across scoped
/// worker threads.
///
/// Workers pull cells from a shared cursor, so long cells do not starve
/// the rest of the grid; results land in expansion order regardless of
/// completion order.
#[derive(Clone)]
pub struct SweepRunner {
    threads: usize,
    registry: Option<Arc<EngineRegistry>>,
    progress: Option<ProgressSink>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("custom_registry", &self.registry.is_some())
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl SweepRunner {
    /// A runner using every available core and the default registry.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);
        Self { threads, registry: None, progress: None }
    }

    /// Sets the worker-thread count (clamped to ≥ 1).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Replaces the engine registry (default: [`default_registry`]), e.g.
    /// to add caller-defined engines for [`SweepSpec::engine_named`].
    #[must_use]
    pub fn registry(mut self, registry: EngineRegistry) -> Self {
        self.registry = Some(Arc::new(registry));
        self
    }

    /// Installs a progress-event callback.
    #[must_use]
    pub fn on_progress(mut self, f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Streams progress events as JSON lines into `writer` (e.g. stderr or
    /// a log file). Write errors are ignored — observability must not kill
    /// a sweep.
    #[must_use]
    pub fn progress_jsonl(self, writer: impl Write + Send + 'static) -> Self {
        let writer = Mutex::new(writer);
        self.on_progress(move |event| {
            if let Ok(mut w) = writer.lock() {
                let _ = writeln!(w, "{}", event.to_json_line());
            }
        })
    }

    fn emit(&self, event: &ProgressEvent) {
        if let Some(p) = &self.progress {
            p(event);
        }
    }

    /// Runs every cell of `spec` and collects the stable-ordered report.
    ///
    /// # Panics
    ///
    /// Panics if the spec names an unregistered engine (checked up front,
    /// before any cell runs) or if a cell's engine diverges hard enough to
    /// panic the harness; worker panics propagate to the caller.
    #[must_use]
    pub fn run(&self, spec: &SweepSpec) -> SweepReport {
        let cells = spec.expand();
        let registry: &EngineRegistry = match &self.registry {
            Some(r) => r,
            None => default_registry(),
        };
        for cell in &cells {
            assert!(
                registry.contains(cell.engine.key()),
                "engine '{}' is not registered (known: {})",
                cell.engine.key(),
                registry.names().collect::<Vec<_>>().join(", ")
            );
        }

        let started = Instant::now();
        self.emit(&ProgressEvent::SweepStarted {
            cells: cells.len(),
            threads: self.threads.min(cells.len().max(1)),
        });
        let results = self.map(&cells, |_, cell| {
            self.emit(&ProgressEvent::CellStarted {
                cell: cell.index,
                dataset: cell.dataset.abbrev(),
                algo: cell.algo.label(),
                engine: cell.engine.key().to_string(),
            });
            let t0 = Instant::now();
            let result = cell.run(registry);
            let wall = t0.elapsed();
            self.emit(&ProgressEvent::CellFinished {
                cell: cell.index,
                dataset: cell.dataset.abbrev(),
                algo: cell.algo.label(),
                engine: cell.engine.key().to_string(),
                cycles: result.metrics.cycles,
                verified: result.verify.is_match(),
                wall_micros: wall.as_micros(),
            });
            CellResult { cell: cell.clone(), result, wall }
        });
        let report = SweepReport { cells: results };
        self.emit(&ProgressEvent::SweepFinished {
            cells: report.len(),
            verified: report.cells.iter().filter(|c| c.result.verify.is_match()).count(),
            wall_micros: started.elapsed().as_micros(),
        });
        report
    }

    /// Index-stable parallel map over arbitrary items: applies `f` to each
    /// item on the worker pool and returns outputs in input order.
    ///
    /// This is the primitive `run` is built on; experiments whose unit of
    /// work is not a simulator cell (native host runs, dataset statistics)
    /// use it directly.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("result slot poisoned").expect("worker filled every slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_sim::SimConfig;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new()
            .datasets([Dataset::Amazon, Dataset::Dblp])
            .sizing(Sizing::Tiny)
            .engines([EngineKind::LigraO, EngineKind::TdGraphH])
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            })
    }

    #[test]
    fn expansion_covers_the_grid_in_stable_order() {
        let spec = tiny_spec()
            .algos([Algo::pagerank(), Algo::cc()])
            .alphas([0.005, 0.02])
            .batch_sizes([128]);
        assert_eq!(spec.cell_count(), (2 * 2 * 2) * 2);
        let cells = spec.expand();
        assert_eq!(cells.len(), spec.cell_count());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Outermost axis is the algorithm, innermost the α override.
        assert_eq!(cells[0].algo.label(), "PageRank");
        assert_eq!(cells[0].options.alpha, 0.005);
        assert_eq!(cells[1].options.alpha, 0.02);
        assert_eq!(cells[8].algo.label(), "CC");
        assert!(cells.iter().all(|c| c.options.batch_size == Some(128)));
    }

    #[test]
    fn unset_axes_inherit_base_options() {
        let cells = tiny_spec().expand();
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert_eq!(c.options.seed, RunOptions::default().seed);
            assert_eq!(c.options.alpha, RunOptions::default().alpha);
            assert_eq!(c.algo, AlgoSel::HubSssp);
        }
    }

    #[test]
    fn runner_runs_and_verifies_in_parallel() {
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&events);
        let report = SweepRunner::new()
            .threads(2)
            .on_progress(move |e| sink.lock().unwrap().push(e.to_json_line()))
            .run(&tiny_spec());
        assert_eq!(report.len(), 4);
        report.assert_all_verified();
        // Stable order: report order equals expansion order.
        for (i, c) in report.cells.iter().enumerate() {
            assert_eq!(c.cell.index, i);
        }
        let events = events.lock().unwrap();
        assert!(events[0].contains("sweep_started"));
        assert!(events.last().unwrap().contains("sweep_finished"));
        assert_eq!(events.iter().filter(|e| e.contains("cell_finished")).count(), 4);
        for e in events.iter() {
            assert!(e.starts_with('{') && e.ends_with('}'), "not a JSON line: {e}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let runner = SweepRunner::new().threads(4);
        let items: Vec<usize> = (0..64).collect();
        let out = runner.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_named_engine_panics_before_running() {
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("warp-drive");
        let _ = SweepRunner::new().run(&spec);
    }

    #[test]
    fn custom_kind_cells_keep_their_configuration() {
        use tdgraph_accel::tdgraph::TdGraphConfig;
        let cfg = TdGraphConfig { vscu_enabled: false, ..TdGraphConfig::default() };
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine(EngineKind::TdGraphCustom(cfg))
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new().run(&spec);
        report.assert_all_verified();
        // The cell's config survives key-based resolution: disabling the
        // VSCU must not fall back to the default ("TDGraph-H") build.
        assert_eq!(report.cells[0].result.metrics.engine, "TDGraph-H-without");
    }

    #[test]
    fn custom_registry_engines_run_by_name() {
        let mut registry = EngineRegistry::with_software();
        registry.register("my-ligra", || Box::new(tdgraph_engines::ligra_o::LigraO));
        let spec = SweepSpec::new()
            .dataset(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .engine_named("my-ligra")
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            });
        let report = SweepRunner::new().registry(registry).run(&spec);
        assert_eq!(report.len(), 1);
        report.assert_all_verified();
        assert_eq!(report.cells[0].result.metrics.engine, "Ligra-o");
    }
}
