//! `tdgraph-sweepd` — the fault-tolerant multi-process sweep executor.
//!
//! One binary, three modes sharing one spec grammar, so a worker always
//! expands the exact grid its coordinator did (the hello handshake
//! double-checks with a digest):
//!
//! ```text
//! tdgraph-sweepd [SPEC] [COORDINATOR FLAGS]     # default: fleet mode
//! tdgraph-sweepd [SPEC] --serial                # in-process SweepRunner
//! tdgraph-sweepd [SPEC] --worker --connect A …  # spawned internally
//!
//! Spec (identical across modes):
//!   --datasets AZ,DL         datasets by paper abbreviation (default AZ)
//!   --sizing tiny|small|reference
//!   --engines k1,k2          registry keys (default ligra-o,tdgraph-h)
//!   --algo sssp|pagerank|cc|adsorption   repeatable; default hub SSSP
//!   --seeds 1,2              seed override axis
//!   --batches N              streaming batches per cell
//!   --small-sim              CI-scale machine model (SimConfig::small_test)
//!
//! Coordinator:
//!   --workers N              worker-process count (default 2)
//!   --heartbeat-ms MS        worker heartbeat period
//!   --lease-ttl-ms MS        lease expiry (wedged-worker detection)
//!   --max-cell-attempts N    remote attempts before inline fallback
//!   --respawn-budget N       worker respawns after the initial fleet
//!   --checkpoint PATH        durable checkpoint + lease log + lock
//!   --observe                merge per-cell obs snapshots (printed last)
//!   --chaos-seed S --chaos-kills K --chaos-wedges W   seeded process chaos
//!
//! Worker (spawned by the coordinator, not for humans):
//!   --worker --connect ADDR --worker-id N --heartbeat-ms MS
//!   [--die-after-cells K --die-point before|after | --wedge-after-cells K]
//! ```
//!
//! stdout is the determinism surface: the report's canonical lines, then
//! (with `--observe`) the merged snapshot line. A fleet run — any worker
//! count, under chaos, across coordinator restarts — prints byte-for-byte
//! what `--serial` prints. Progress and fleet statistics go to stderr.

use std::process::ExitCode;
use std::time::Duration;

use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::prelude::Algo;
use tdgraph::sim::SimConfig;
use tdgraph::{
    run_fleet, run_worker, FleetConfig, KillPoint, ProcessFaultPlan, SelfExecSpawner, SweepReport,
    SweepRunner, SweepSpec, WorkerDirective,
};

enum Mode {
    Coordinator,
    Serial,
    Worker { connect: String, worker_id: u32, directive: WorkerDirective },
}

struct Flags {
    spec: SweepSpec,
    /// The spec portion of argv, re-sent verbatim to every worker.
    spec_args: Vec<String>,
    mode: Mode,
    fleet: FleetConfig,
    observe: bool,
    heartbeat: Duration,
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.abbrev().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown dataset {s:?} (use AZ, DL, GL, LJ, OR, FR)"))
}

fn parse_sizing(s: &str) -> Result<Sizing, String> {
    match s {
        "tiny" => Ok(Sizing::Tiny),
        "small" => Ok(Sizing::Small),
        "reference" => Ok(Sizing::Reference),
        other => Err(format!("unknown sizing {other:?} (use tiny, small, reference)")),
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut spec = SweepSpec::new().sizing(Sizing::Tiny);
    let mut spec_args: Vec<String> = Vec::new();
    let mut datasets: Vec<Dataset> = Vec::new();
    let mut engines: Vec<String> = Vec::new();
    let mut algos: Vec<Algo> = Vec::new();
    let mut batches: Option<usize> = None;
    let mut small_sim = false;

    let mut serial = false;
    let mut worker = false;
    let mut connect: Option<String> = None;
    let mut worker_id: u32 = 0;
    let mut heartbeat = Duration::from_millis(25);
    let mut die_after: Option<u32> = None;
    let mut die_point = KillPoint::After;
    let mut wedge_after: Option<u32> = None;

    let mut fleet = FleetConfig::default();
    let mut observe = false;
    let mut chaos_seed: u64 = 0;
    let mut chaos_kills: u32 = 0;
    let mut chaos_wedges: u32 = 0;

    // Spec flags are recorded verbatim into `spec_args` so workers
    // re-expand the same grid the coordinator leased from.
    const SPEC_FLAGS: [&str; 6] =
        ["--datasets", "--sizing", "--engines", "--algo", "--seeds", "--batches"];
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            let v = args.get(i).cloned().ok_or_else(|| format!("{flag} requires a value"))?;
            if SPEC_FLAGS.contains(&flag) {
                spec_args.push(flag.to_string());
                spec_args.push(v.clone());
            }
            Ok(v)
        };
        match arg.as_str() {
            "--datasets" => {
                for part in value("--datasets")?.split(',') {
                    datasets.push(parse_dataset(part.trim())?);
                }
            }
            "--sizing" => spec = spec.sizing(parse_sizing(&value("--sizing")?)?),
            "--engines" => {
                engines.extend(value("--engines")?.split(',').map(|s| s.trim().to_string()));
            }
            "--algo" => match value("--algo")?.as_str() {
                "pagerank" => algos.push(Algo::pagerank()),
                "cc" => algos.push(Algo::cc()),
                "adsorption" => algos.push(Algo::adsorption()),
                // Hub-rooted SSSP is the AlgoSel default; an explicit
                // --algo sssp keeps that behaviour.
                "sssp" => spec = spec.hub_sssp(),
                other => return Err(format!("unknown algo {other:?}")),
            },
            "--seeds" => {
                let mut seeds = Vec::new();
                for part in value("--seeds")?.split(',') {
                    seeds.push(parse_num::<u64>(part.trim())?);
                }
                spec = spec.seeds(seeds);
            }
            "--batches" => batches = Some(parse_num(&value("--batches")?)?),
            "--small-sim" => {
                small_sim = true;
                spec_args.push("--small-sim".to_string());
            }

            "--serial" => serial = true,
            "--worker" => worker = true,
            "--connect" => connect = Some(value("--connect")?),
            "--worker-id" => worker_id = parse_num(&value("--worker-id")?)?,
            "--heartbeat-ms" => {
                heartbeat = Duration::from_millis(parse_num(&value("--heartbeat-ms")?)?);
            }
            "--die-after-cells" => die_after = Some(parse_num(&value("--die-after-cells")?)?),
            "--die-point" => {
                die_point = match value("--die-point")?.as_str() {
                    "before" => KillPoint::Before,
                    "after" => KillPoint::After,
                    other => {
                        return Err(format!("--die-point must be before or after, got {other:?}"))
                    }
                };
            }
            "--wedge-after-cells" => wedge_after = Some(parse_num(&value("--wedge-after-cells")?)?),

            "--workers" => fleet.workers = parse_num(&value("--workers")?)?,
            "--lease-ttl-ms" => {
                fleet.lease_ttl = Duration::from_millis(parse_num(&value("--lease-ttl-ms")?)?);
            }
            "--max-cell-attempts" => {
                fleet = fleet.max_cell_attempts(parse_num(&value("--max-cell-attempts")?)?);
            }
            "--respawn-budget" => fleet.respawn_budget = parse_num(&value("--respawn-budget")?)?,
            "--checkpoint" => fleet = fleet.checkpoint_to(value("--checkpoint")?),
            "--observe" => observe = true,
            "--chaos-seed" => chaos_seed = parse_num(&value("--chaos-seed")?)?,
            "--chaos-kills" => chaos_kills = parse_num(&value("--chaos-kills")?)?,
            "--chaos-wedges" => chaos_wedges = parse_num(&value("--chaos-wedges")?)?,

            flag => return Err(format!("unknown flag {flag}")),
        }
        i += 1;
    }

    if datasets.is_empty() {
        datasets.push(Dataset::Amazon);
        spec_args.push("--datasets".to_string());
        spec_args.push("AZ".to_string());
    }
    spec = spec.datasets(datasets);
    if engines.is_empty() {
        engines.push("ligra-o".to_string());
        engines.push("tdgraph-h".to_string());
        spec_args.push("--engines".to_string());
        spec_args.push("ligra-o,tdgraph-h".to_string());
    }
    for key in engines {
        spec = spec.engine_named(key);
    }
    spec = spec.algos(algos);
    spec = spec.tune(|o| {
        if small_sim {
            o.sim = SimConfig::small_test();
        }
        if let Some(b) = batches {
            o.batches = b;
        }
    });

    fleet.heartbeat = heartbeat;
    fleet.observe = observe;
    if chaos_kills > 0 || chaos_wedges > 0 {
        fleet = fleet.chaos(ProcessFaultPlan::seeded(chaos_seed, chaos_kills, chaos_wedges));
    }

    let mode = if worker {
        let connect = connect.ok_or("--worker requires --connect")?;
        let directive = match (die_after, wedge_after) {
            (Some(after_cells), _) => WorkerDirective::Kill { after_cells, point: die_point },
            (None, Some(after_cells)) => WorkerDirective::Wedge { after_cells },
            (None, None) => WorkerDirective::Clean,
        };
        Mode::Worker { connect, worker_id, directive }
    } else if serial {
        Mode::Serial
    } else {
        Mode::Coordinator
    };
    Ok(Flags { spec, spec_args, mode, fleet, observe, heartbeat })
}

/// Prints the determinism surface: canonical lines, then the merged
/// snapshot when observing.
fn print_report(report: &SweepReport) {
    print!("{}", report.canonical_lines());
    if let Some(obs) = &report.obs {
        println!("{}", obs.canonical_json_line());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tdgraph-sweepd: {e}");
            return ExitCode::FAILURE;
        }
    };
    match flags.mode {
        Mode::Worker { connect, worker_id, directive } => {
            match run_worker(&flags.spec, &connect, worker_id, flags.heartbeat, directive) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("tdgraph-sweepd: worker {worker_id}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Serial => {
            let runner = SweepRunner::new().threads(1).observe(flags.observe);
            let runner = match &flags.fleet.checkpoint {
                Some(path) => runner.checkpoint_to(path.clone()),
                None => runner,
            };
            eprintln!("tdgraph-sweepd: serial sweep of {} cells", flags.spec.cell_count());
            let report = runner.run(&flags.spec);
            print_report(&report);
            if report.all_ok() {
                ExitCode::SUCCESS
            } else {
                eprintln!("tdgraph-sweepd: failures:\n{}", report.failure_digest());
                ExitCode::FAILURE
            }
        }
        Mode::Coordinator => {
            eprintln!(
                "tdgraph-sweepd: coordinating {} workers over {} cells",
                flags.fleet.workers,
                flags.spec.cell_count()
            );
            let mut spawner = SelfExecSpawner::new(flags.spec_args.clone());
            match run_fleet(&flags.spec, &flags.fleet, &mut spawner) {
                Ok(outcome) => {
                    print_report(&outcome.report);
                    let s = outcome.stats;
                    eprintln!(
                        "tdgraph-sweepd: done remote={} inline={} restored={} reclaims={}+{} \
                         deaths={} respawns={} stale={}",
                        s.cells_remote,
                        s.cells_inline,
                        s.cells_restored,
                        s.reclaims_dead,
                        s.reclaims_expired,
                        s.worker_deaths,
                        s.respawns,
                        s.stale_results,
                    );
                    if outcome.report.all_ok() {
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("tdgraph-sweepd: failures:\n{}", outcome.report.failure_digest());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("tdgraph-sweepd: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
