//! `tdgraph-served` — the continuous-ingest daemon.
//!
//! Binds the streaming service over the full engine registry (software
//! systems plus every accelerator model) and serves the JSON-lines wire
//! protocol until a client sends `{"req":"shutdown"}`.
//!
//! ```text
//! tdgraph-served [ADDR] [FLAGS]     # default 127.0.0.1:7436
//!
//!   --wal-dir DIR            durable ingest WAL; replayed on startup
//!   --batch-max-entries N    batch size close threshold
//!   --batch-deadline-ms MS   batch latency close threshold
//!   --queue-capacity N       per-tenant ingest queue bound
//!   --max-tenants N          concurrent tenant cap
//!   --entry-budget N         global overload budget (enables shedding)
//!   --retry-after-ms MS      shed reply retry hint
//!   --write-deadline-ms MS   slow-client write deadline
//!   --max-restarts N         supervision restart budget per tenant
//!   --watchdog-ms MS         per-batch wall-clock watchdog
//!   --exec-shards N          replay worker threads per session (0 = serial)
//!   --reduce-lanes K         partitioned reducer lanes (1..=8)
//!   --event-encoding ENC     boundary-event encoding: packed | rle
//!   --storage KIND           graph-storage backend: csr | hybrid
//! ```
//!
//! The three `--exec-*` flags set the default [`ExecConfig`] of every
//! tenant session. They trade host wall-clock only: replies and finish
//! reports are byte-identical across every execution configuration.
//!
//! `--storage` selects the graph-storage backend for every tenant
//! session: `csr` (default) is the deterministic byte-identity baseline;
//! `hybrid` applies update batches through the degree-adaptive store in
//! O(touched vertices) and charges its layout traffic to the simulated
//! memory system. Algorithm fixpoints — and therefore finish-report
//! verification verdicts — agree across both backends.
//!
//! With `--wal-dir`, accepted lines are logged before they are queued;
//! on restart every tenant found in the directory is replayed through the
//! recorded-schedule machinery and resumes at its durable `acked` offset
//! — the finish reply is byte-identical to an uncrashed run.
//!
//! Quick session (one tenant, defaults: lenient ingest, hub-rooted SSSP
//! on the tiny Amazon workload, ligra-o):
//!
//! ```text
//! {"req":"hello","tenant":"demo","engine":"tdgraph-h"}
//! {"op":"add","src":3,"dst":9,"weight":1}
//! {"req":"flush"}
//! {"req":"finish"}
//! {"req":"shutdown"}
//! ```

use std::process::ExitCode;
use std::time::Duration;

use tdgraph::prelude::{EventEncoding, ExecConfig, StorageKind};
use tdgraph::registry_with_defaults;
use tdgraph::serve::{OverloadPolicy, Service, ServiceConfig, SupervisionConfig, TdServer};

struct Flags {
    addr: String,
    cfg: ServiceConfig,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut addr = "127.0.0.1:7436".to_string();
    let mut cfg = ServiceConfig::default();
    let mut session = cfg.session_defaults.clone();
    let mut supervision = SupervisionConfig::default();
    let mut overload: Option<OverloadPolicy> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |flag: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--wal-dir" => cfg = cfg.with_wal_dir(value("--wal-dir")?),
            "--batch-max-entries" => {
                session =
                    session.with_batch_max_entries(parse_num(&value("--batch-max-entries")?)?);
            }
            "--batch-deadline-ms" => {
                session = session.with_batch_deadline(Duration::from_millis(parse_num(&value(
                    "--batch-deadline-ms",
                )?)?));
            }
            "--queue-capacity" => {
                cfg = cfg.with_queue_capacity(parse_num(&value("--queue-capacity")?)?);
            }
            "--max-tenants" => cfg = cfg.with_max_tenants(parse_num(&value("--max-tenants")?)?),
            "--entry-budget" => {
                let budget = parse_num(&value("--entry-budget")?)?;
                overload = Some(overload.unwrap_or_default().with_entry_budget(budget));
            }
            "--retry-after-ms" => {
                let ms = parse_num(&value("--retry-after-ms")?)?;
                overload =
                    Some(overload.unwrap_or_default().with_retry_after(Duration::from_millis(ms)));
            }
            "--write-deadline-ms" => {
                let ms = parse_num(&value("--write-deadline-ms")?)?;
                overload = Some(
                    overload
                        .unwrap_or_default()
                        .with_write_deadline(Some(Duration::from_millis(ms))),
                );
            }
            "--max-restarts" => {
                supervision = supervision.with_max_restarts(parse_num(&value("--max-restarts")?)?);
            }
            "--exec-shards" => {
                let n: usize = parse_num(&value("--exec-shards")?)?;
                session = session.tune(|run| run.exec = run.exec.shards(n));
            }
            "--reduce-lanes" => {
                let k: usize = parse_num(&value("--reduce-lanes")?)?;
                ExecConfig::serial().reduce_lanes(k).validate()?;
                session = session.tune(|run| run.exec = run.exec.reduce_lanes(k));
            }
            "--event-encoding" => {
                let enc = match value("--event-encoding")?.as_str() {
                    "packed" => EventEncoding::Packed,
                    "rle" => EventEncoding::RunLength,
                    other => {
                        return Err(format!(
                            "--event-encoding must be packed or rle, got {other:?}"
                        ))
                    }
                };
                session = session.tune(|run| run.exec = run.exec.event_encoding(enc));
            }
            "--storage" => {
                let raw = value("--storage")?;
                let kind = StorageKind::from_label(&raw)
                    .ok_or_else(|| format!("--storage must be csr or hybrid, got {raw:?}"))?;
                session = session.tune(|run| run.storage = kind);
            }
            "--watchdog-ms" => {
                let ms = parse_num(&value("--watchdog-ms")?)?;
                supervision = supervision.with_batch_watchdog(Duration::from_millis(ms));
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => addr = positional.to_string(),
        }
        i += 1;
    }
    cfg = cfg.with_session_defaults(session).with_supervision(supervision);
    if let Some(policy) = overload {
        cfg = cfg.with_overload(policy);
    }
    Ok(Flags { addr, cfg })
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid number {s:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tdgraph-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = match Service::new(flags.cfg, registry_with_defaults()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tdgraph-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    // WAL replay happens before the listener opens: recovered tenants are
    // caught up to their durable acked offsets, then clients reconnect
    // and resume exactly there.
    match service.recover_tenants() {
        Ok(recovered) => {
            for tenant in &recovered {
                eprintln!("tdgraph-served: recovered tenant {tenant} from WAL");
            }
        }
        Err(e) => {
            eprintln!("tdgraph-served: WAL recovery: {e}");
            return ExitCode::FAILURE;
        }
    }
    let server = match TdServer::bind(service, &flags.addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tdgraph-served: bind {}: {e}", flags.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("tdgraph-served: listening on {}", server.addr());
    let reports = server.run_until_shutdown();
    for report in &reports {
        eprintln!(
            "tdgraph-served: drained tenant {} ({}, {})",
            report.tenant, report.engine, report.algo
        );
    }
    ExitCode::SUCCESS
}
