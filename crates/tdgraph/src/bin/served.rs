//! `tdgraph-served` — the continuous-ingest daemon.
//!
//! Binds the streaming service over the full engine registry (software
//! systems plus every accelerator model) and serves the JSON-lines wire
//! protocol until a client sends `{"req":"shutdown"}`.
//!
//! ```text
//! tdgraph-served [ADDR]          # default 127.0.0.1:7436
//! ```
//!
//! Quick session (one tenant, defaults: lenient ingest, hub-rooted SSSP
//! on the tiny Amazon workload, ligra-o):
//!
//! ```text
//! {"req":"hello","tenant":"demo","engine":"tdgraph-h"}
//! {"op":"add","src":3,"dst":9,"weight":1}
//! {"req":"flush"}
//! {"req":"finish"}
//! {"req":"shutdown"}
//! ```

use std::process::ExitCode;

use tdgraph::registry_with_defaults;
use tdgraph::serve::{Service, ServiceConfig, TdServer};

fn main() -> ExitCode {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7436".to_string());
    let cfg = ServiceConfig::default();
    let service = match Service::new(cfg, registry_with_defaults()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tdgraph-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match TdServer::bind(service, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tdgraph-served: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("tdgraph-served: listening on {}", server.addr());
    let reports = server.run_until_shutdown();
    for report in &reports {
        eprintln!(
            "tdgraph-served: drained tenant {} ({}, {})",
            report.tenant, report.engine, report.algo
        );
    }
    ExitCode::SUCCESS
}
