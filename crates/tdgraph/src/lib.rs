//! # tdgraph — a reproduction of the TDGraph streaming-graph accelerator
//!
//! This crate is the public facade over a full Rust reproduction of
//! *TDGraph: A Topology-Driven Accelerator for High-Performance Streaming
//! Graph Processing* (Zhao et al., ISCA 2022): the streaming-graph
//! substrate, the four benchmark algorithms with incremental semantics, a
//! trace-driven 64-core timing simulator, the four software baselines, the
//! TDGraph engine (TDTU + VSCU) and every comparator accelerator the paper
//! evaluates.
//!
//! The quickest way in is [`Experiment`] for one run, or a
//! [`SweepSpec`] executed by the parallel [`SweepRunner`] for a grid
//! (see the [`sweep`] module). One run:
//!
//! ```
//! use tdgraph::{Experiment, EngineKind};
//! use tdgraph::graph::datasets::{Dataset, Sizing};
//!
//! let experiment = Experiment::new(Dataset::Amazon)
//!     .sizing(Sizing::Tiny)
//!     .tune(|o| o.batches = 1);
//! let baseline = experiment.run(EngineKind::LigraO);
//! let tdgraph = experiment.run(EngineKind::TdGraphH);
//! assert!(baseline.verify.is_match() && tdgraph.verify.is_match());
//! println!("speedup: {:.2}x", tdgraph.metrics.speedup_over(&baseline.metrics));
//! ```
//!
//! The lower layers are re-exported as modules: [`graph`] (CSR snapshots,
//! update batches, generators), [`algos`] (PageRank, Adsorption, SSSP, CC),
//! [`sim`] (the machine model), [`engines`] (software systems), and
//! [`accel`] (accelerator models).

// Robustness gate: non-test facade code must route failures through typed
// errors, never unwrap/expect (enforced by CI clippy).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod error;
pub mod experiment;
pub mod fleet;
pub mod report;
pub mod sweep;

pub use checkpoint::{CanonicalCell, CheckpointError, CheckpointLog};
pub use error::TdgraphError;
pub use experiment::{default_registry, registry_with_defaults, EngineKind, Experiment};
pub use fleet::{
    run_fleet, run_worker, CoordinatorLock, FleetConfig, FleetError, FleetOutcome, FleetStats,
    KillPoint, ProcessFaultPlan, SelfExecSpawner, WorkerDirective, WorkerLaunch, WorkerSpawner,
};
pub use sweep::{
    AlgoSel, CellOutcome, CellResult, EngineSel, ExperimentCell, OutcomeCounts, OutcomeKind,
    SweepReport, SweepRunner, SweepSpec,
};
pub use tdgraph_engines::config::{OracleMode, RunConfig, RunSource};
pub use tdgraph_engines::error::EngineError;
#[allow(deprecated)]
pub use tdgraph_engines::harness::RunOptions;
pub use tdgraph_engines::metrics::RunMetrics;
pub use tdgraph_engines::registry::EngineRegistry;
pub use tdgraph_engines::session::{OracleSummary, RunResult, StreamingSession};
pub use tdgraph_graph::fault::FaultPlan;
pub use tdgraph_graph::hybrid::HybridStore;
pub use tdgraph_graph::io::{LoadConfig, LoadOutcome};
pub use tdgraph_graph::quarantine::{IngestMode, QuarantineReason, QuarantineReport};
pub use tdgraph_graph::store::{AnyStore, GraphStore, StorageKind, StorageStats};
pub use tdgraph_obs::{JsonlSink, Snapshot, TraceEvent, TraceSink, VecSink};
pub use tdgraph_serve::{
    OverloadPolicy, Service, ServiceConfig, SessionConfig, SupervisionConfig, TdServer,
    TenantOutcome, TenantReport,
};

/// The supported surface of the reproduction — the stability boundary.
///
/// `use tdgraph::prelude::*;` brings in everything examples, integration
/// tests, and downstream experiments should need: experiment and sweep
/// construction, runners, reports, outcomes, typed errors, the
/// observability handles, and the fault/oracle and execution-mode types.
/// Items reached through sub-crate module paths (`tdgraph::sim::…`,
/// `tdgraph::engines::…`, …) are implementation surface and may change
/// between releases; the prelude is curated and kept stable.
pub mod prelude {
    pub use crate::checkpoint::{CanonicalCell, CheckpointError, CheckpointLog};
    pub use crate::error::TdgraphError;
    pub use crate::experiment::{default_registry, registry_with_defaults, EngineKind, Experiment};
    pub use crate::fleet::{
        run_fleet, run_worker, CoordinatorLock, FleetConfig, FleetError, FleetOutcome, FleetStats,
        KillPoint, ProcessFaultPlan, SelfExecSpawner, WorkerDirective, WorkerLaunch, WorkerSpawner,
    };
    pub use crate::report::{build_rows, render_csv, render_table, speedup_line, Row};
    pub use crate::sweep::{
        AlgoSel, CellOutcome, CellResult, EngineSel, ExperimentCell, OutcomeCounts, OutcomeKind,
        SweepReport, SweepRunner, SweepSpec,
    };
    pub use tdgraph_algos::incremental::{seed_after_batch, AlgoState};
    pub use tdgraph_algos::scratch::{out_mass, solve};
    pub use tdgraph_algos::tap::NullTap;
    pub use tdgraph_algos::traits::{Algo, AlgorithmKind};
    pub use tdgraph_algos::verify::{compare, VerifyOutcome};
    pub use tdgraph_engines::config::{OracleMode, RunConfig, RunSource};
    pub use tdgraph_engines::error::EngineError;
    #[allow(deprecated)]
    pub use tdgraph_engines::harness::{
        run_streaming, run_streaming_observed, run_streaming_workload,
        run_streaming_workload_observed, RunOptions,
    };
    pub use tdgraph_engines::metrics::RunMetrics;
    pub use tdgraph_engines::registry::EngineRegistry;
    pub use tdgraph_engines::session::{OracleCheck, OracleSummary, RunResult, StreamingSession};
    pub use tdgraph_engines::testutil::{FaultMode, FaultyEngine};
    pub use tdgraph_graph::csr::Csr;
    pub use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
    pub use tdgraph_graph::fault::FaultPlan;
    pub use tdgraph_graph::generate::{ClusteredRmat, RmatConfig};
    pub use tdgraph_graph::hybrid::HybridStore;
    #[allow(deprecated)]
    pub use tdgraph_graph::io::{
        load_edge_list, parse_edge_list, parse_edge_list_lenient, save_edge_list, LoadConfig,
        LoadOutcome,
    };
    pub use tdgraph_graph::partition::{partition_by_edges, Chunk, Schedule, ShardPlan};
    pub use tdgraph_graph::quarantine::{IngestMode, QuarantineReason, QuarantineReport};
    pub use tdgraph_graph::stats::degree_stats;
    pub use tdgraph_graph::store::{
        AnyStore, GraphStore, StorageKind, StorageRegion, StorageStats, StorageTouch,
    };
    pub use tdgraph_graph::streaming::{ApplyError, StreamingGraph};
    pub use tdgraph_graph::types::{Edge, VertexId, Weight};
    pub use tdgraph_graph::update::{BatchComposer, BatchError, EdgeUpdate, UpdateBatch};
    pub use tdgraph_obs::{
        keys, JsonlSink, MemoryRecorder, NullRecorder, Recorder, RecorderHandle, Snapshot,
        TraceEvent, TraceSink, VecSink,
    };
    pub use tdgraph_serve::{
        AlgoChoice, BatchClose, BatchFormer, ChaosOutcome, ClientError, Clock, OverloadPolicy,
        RetryPolicy, ServeClient, ServeError, Service, ServiceConfig, SessionConfig, ShedEvent,
        ShedReason, SnapshotView, SupervisionConfig, SystemClock, TdServer, TenantOutcome,
        TenantReport, TestClock, WireFault, WireFaultPlan,
    };
    #[allow(deprecated)]
    pub use tdgraph_sim::ExecMode;
    pub use tdgraph_sim::{
        EventEncoding, ExecConfig, ExecPipelineReport, SimConfig, MAX_REDUCE_LANES,
    };
}

/// Streaming-graph substrate (re-export of `tdgraph-graph`).
pub mod graph {
    pub use tdgraph_graph::*;
}

/// Incremental algorithms (re-export of `tdgraph-algos`).
pub mod algos {
    pub use tdgraph_algos::*;
}

/// Timing simulator (re-export of `tdgraph-sim`).
pub mod sim {
    pub use tdgraph_sim::*;
}

/// Software engines (re-export of `tdgraph-engines`).
pub mod engines {
    pub use tdgraph_engines::*;
}

/// Accelerator models (re-export of `tdgraph-accel`).
pub mod accel {
    pub use tdgraph_accel::*;
}

/// Observability layer: recorders, snapshots, trace sinks (re-export of
/// `tdgraph-obs`).
pub mod obs {
    pub use tdgraph_obs::*;
}

/// Continuous-ingest streaming service: per-tenant wire streams, adaptive
/// batch forming, bounded backpressure (re-export of `tdgraph-serve`).
pub mod serve {
    pub use tdgraph_serve::*;
}
