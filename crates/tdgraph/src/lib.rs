//! # tdgraph — a reproduction of the TDGraph streaming-graph accelerator
//!
//! This crate is the public facade over a full Rust reproduction of
//! *TDGraph: A Topology-Driven Accelerator for High-Performance Streaming
//! Graph Processing* (Zhao et al., ISCA 2022): the streaming-graph
//! substrate, the four benchmark algorithms with incremental semantics, a
//! trace-driven 64-core timing simulator, the four software baselines, the
//! TDGraph engine (TDTU + VSCU) and every comparator accelerator the paper
//! evaluates.
//!
//! The quickest way in is [`Experiment`] for one run, or a
//! [`SweepSpec`] executed by the parallel [`SweepRunner`] for a grid
//! (see the [`sweep`] module). One run:
//!
//! ```
//! use tdgraph::{Experiment, EngineKind};
//! use tdgraph::graph::datasets::{Dataset, Sizing};
//!
//! let experiment = Experiment::new(Dataset::Amazon)
//!     .sizing(Sizing::Tiny)
//!     .tune(|o| o.batches = 1);
//! let baseline = experiment.run(EngineKind::LigraO);
//! let tdgraph = experiment.run(EngineKind::TdGraphH);
//! assert!(baseline.verify.is_match() && tdgraph.verify.is_match());
//! println!("speedup: {:.2}x", tdgraph.metrics.speedup_over(&baseline.metrics));
//! ```
//!
//! The lower layers are re-exported as modules: [`graph`] (CSR snapshots,
//! update batches, generators), [`algos`] (PageRank, Adsorption, SSSP, CC),
//! [`sim`] (the machine model), [`engines`] (software systems), and
//! [`accel`] (accelerator models).

// Robustness gate: non-test facade code must route failures through typed
// errors, never unwrap/expect (enforced by CI clippy).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod error;
pub mod experiment;
pub mod report;
pub mod sweep;

pub use checkpoint::{CanonicalCell, CheckpointError, CheckpointLog};
pub use error::TdgraphError;
pub use experiment::{default_registry, registry_with_defaults, EngineKind, Experiment};
#[allow(deprecated)]
pub use sweep::ProgressEvent;
pub use sweep::{
    AlgoSel, CellOutcome, CellResult, EngineSel, ExperimentCell, OutcomeCounts, OutcomeKind,
    SweepReport, SweepRunner, SweepSpec,
};
pub use tdgraph_engines::error::EngineError;
pub use tdgraph_engines::harness::{OracleMode, OracleSummary, RunOptions, RunResult};
pub use tdgraph_engines::metrics::RunMetrics;
pub use tdgraph_engines::registry::EngineRegistry;
pub use tdgraph_graph::fault::FaultPlan;
pub use tdgraph_graph::quarantine::{IngestMode, QuarantineReason, QuarantineReport};
pub use tdgraph_obs::{JsonlSink, Snapshot, TraceEvent, TraceSink, VecSink};

/// Streaming-graph substrate (re-export of `tdgraph-graph`).
pub mod graph {
    pub use tdgraph_graph::*;
}

/// Incremental algorithms (re-export of `tdgraph-algos`).
pub mod algos {
    pub use tdgraph_algos::*;
}

/// Timing simulator (re-export of `tdgraph-sim`).
pub mod sim {
    pub use tdgraph_sim::*;
}

/// Software engines (re-export of `tdgraph-engines`).
pub mod engines {
    pub use tdgraph_engines::*;
}

/// Accelerator models (re-export of `tdgraph-accel`).
pub mod accel {
    pub use tdgraph_accel::*;
}

/// Observability layer: recorders, snapshots, trace sinks (re-export of
/// `tdgraph-obs`).
pub mod obs {
    pub use tdgraph_obs::*;
}
