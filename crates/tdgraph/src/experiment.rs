//! High-level experiment API.
//!
//! [`Experiment`] is the one-stop entry point downstream users need: pick a
//! dataset, an algorithm, and an engine, optionally tune the machine or the
//! update stream, and run — the result carries the paper's metrics and the
//! oracle verdict.

use tdgraph_accel::jetstream::{GraphPulse, JetStream};
use tdgraph_accel::tdgraph::{TdGraph, TdGraphConfig};
use tdgraph_accel::{DepGraph, Hats, Minnow, Phi};
use tdgraph_algos::traits::Algo;
use tdgraph_engines::dzig::Dzig;
use tdgraph_engines::engine::Engine;
use tdgraph_engines::graphbolt::GraphBolt;
use tdgraph_engines::harness::{run_streaming_workload, RunOptions, RunResult};
use tdgraph_engines::kickstarter::KickStarter;
use tdgraph_engines::ligra_do::LigraDO;
use tdgraph_engines::ligra_o::LigraO;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};

/// Every execution engine the reproduction provides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// Optimized software baseline (§4.1).
    LigraO,
    /// Direction-optimizing Ligra (push/pull switching).
    LigraDO,
    /// GraphBolt software system.
    GraphBolt,
    /// KickStarter software system.
    KickStarter,
    /// DZiG software system.
    Dzig,
    /// TDGraph hardware engine (the contribution).
    TdGraphH,
    /// TDGraph hardware engine without the VSCU (Fig 13).
    TdGraphHWithout,
    /// Software-only TDGraph (§4.2).
    TdGraphS,
    /// Software-only TDGraph without coalescing (Fig 14).
    TdGraphSWithout,
    /// TDGraph with a custom configuration.
    TdGraphCustom(TdGraphConfig),
    /// HATS comparator accelerator.
    Hats,
    /// Minnow comparator accelerator.
    Minnow,
    /// PHI comparator accelerator.
    Phi,
    /// DepGraph comparator accelerator.
    DepGraph,
    /// JetStream streaming accelerator.
    JetStream,
    /// JetStream with VSCU-style coalescing (Fig 17).
    JetStreamWith,
    /// GraphPulse event-driven accelerator.
    GraphPulse,
}

impl EngineKind {
    /// Instantiates the engine.
    #[must_use]
    pub fn build(self) -> Box<dyn Engine> {
        match self {
            EngineKind::LigraO => Box::new(LigraO),
            EngineKind::LigraDO => Box::new(LigraDO),
            EngineKind::GraphBolt => Box::new(GraphBolt),
            EngineKind::KickStarter => Box::new(KickStarter),
            EngineKind::Dzig => Box::new(Dzig),
            EngineKind::TdGraphH => Box::new(TdGraph::hardware()),
            EngineKind::TdGraphHWithout => Box::new(TdGraph::hardware_without_vscu()),
            EngineKind::TdGraphS => Box::new(TdGraph::software()),
            EngineKind::TdGraphSWithout => Box::new(TdGraph::software_without_vscu()),
            EngineKind::TdGraphCustom(cfg) => Box::new(TdGraph::with_config(cfg)),
            EngineKind::Hats => Box::new(Hats),
            EngineKind::Minnow => Box::new(Minnow),
            EngineKind::Phi => Box::new(Phi),
            EngineKind::DepGraph => Box::new(DepGraph),
            EngineKind::JetStream => Box::new(JetStream::new()),
            EngineKind::JetStreamWith => Box::new(JetStream::with_coalescing()),
            EngineKind::GraphPulse => Box::new(GraphPulse),
        }
    }

    /// The software systems of Fig 3.
    pub const SOFTWARE: [EngineKind; 4] = [
        EngineKind::GraphBolt,
        EngineKind::KickStarter,
        EngineKind::Dzig,
        EngineKind::LigraO,
    ];

    /// The comparator accelerators of Fig 15.
    pub const ACCELERATORS: [EngineKind; 4] = [
        EngineKind::Hats,
        EngineKind::Minnow,
        EngineKind::Phi,
        EngineKind::DepGraph,
    ];
}

/// Builder for one streaming-graph experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    dataset: Dataset,
    sizing: Sizing,
    algo: Option<Algo>,
    options: RunOptions,
}

impl Experiment {
    /// Starts an experiment on `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Self {
            dataset,
            sizing: Sizing::Small,
            algo: None,
            options: RunOptions {
                sim: tdgraph_sim::SimConfig::scaled_reference(),
                ..RunOptions::default()
            },
        }
    }

    /// Selects the workload sizing (default: [`Sizing::Small`]).
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Selects the algorithm. When not set, SSSP from the workload's hub
    /// vertex is used.
    #[must_use]
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Overrides the run options (machine config, batches, composition).
    #[must_use]
    pub fn options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Mutates the run options in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunOptions)) -> Self {
        f(&mut self.options);
        self
    }

    /// Runs the experiment with `engine`.
    #[must_use]
    pub fn run(&self, engine: EngineKind) -> RunResult {
        let workload = StreamingWorkload::prepare(self.dataset, self.sizing);
        let algo = self.algo.unwrap_or_else(|| Algo::sssp(workload.hub_vertex()));
        let mut e = engine.build();
        run_streaming_workload(e.as_mut(), algo, workload, &self.options)
    }

    /// Runs the experiment for several engines, returning `(engine, result)`
    /// pairs in order.
    #[must_use]
    pub fn run_all(&self, engines: &[EngineKind]) -> Vec<(EngineKind, RunResult)> {
        engines.iter().map(|&e| (e, self.run(e))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_graph::datasets::Dataset;

    #[test]
    fn experiment_runs_and_verifies() {
        let res = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(|o| {
                o.sim = tdgraph_sim::SimConfig::small_test();
                o.batches = 1;
            })
            .run(EngineKind::TdGraphH);
        assert!(res.verify.is_match());
        assert_eq!(res.metrics.engine, "TDGraph-H");
    }

    #[test]
    fn default_algorithm_is_hub_sssp() {
        let res = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(|o| {
                o.sim = tdgraph_sim::SimConfig::small_test();
                o.batches = 1;
            })
            .run(EngineKind::LigraO);
        assert_eq!(res.metrics.algo, "SSSP");
    }

    #[test]
    fn every_engine_kind_builds_with_its_name() {
        for kind in [
            EngineKind::LigraO,
            EngineKind::LigraDO,
            EngineKind::GraphBolt,
            EngineKind::KickStarter,
            EngineKind::Dzig,
            EngineKind::TdGraphH,
            EngineKind::TdGraphHWithout,
            EngineKind::TdGraphS,
            EngineKind::TdGraphSWithout,
            EngineKind::Hats,
            EngineKind::Minnow,
            EngineKind::Phi,
            EngineKind::DepGraph,
            EngineKind::JetStream,
            EngineKind::JetStreamWith,
            EngineKind::GraphPulse,
        ] {
            assert!(!kind.build().name().is_empty());
        }
    }
}
