//! High-level experiment API.
//!
//! [`Experiment`] is the one-cell entry point downstream users need: pick
//! a dataset, an algorithm, and an engine, optionally tune the machine or
//! the update stream, and run — the result carries the paper's metrics and
//! the oracle verdict. Internally it is a thin wrapper over a one-cell
//! [`SweepSpec`](crate::SweepSpec); grids of experiments should build a
//! sweep directly and execute it with a
//! [`SweepRunner`](crate::SweepRunner).
//!
//! Engine construction goes through the [`EngineRegistry`]: every built-in
//! engine is registered by a stable kebab-case key in
//! [`registry_with_defaults`], and [`EngineKind::try_build`] resolves
//! through the shared [`default_registry`].

use std::sync::OnceLock;

use tdgraph_accel::jetstream::{GraphPulse, JetStream};
use tdgraph_accel::tdgraph::{TdGraph, TdGraphConfig};
use tdgraph_accel::{DepGraph, Hats, Minnow, Phi};
use tdgraph_algos::traits::Algo;
use tdgraph_engines::config::RunConfig;
use tdgraph_engines::engine::Engine;
use tdgraph_engines::error::EngineError;
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_engines::session::RunResult;
use tdgraph_graph::datasets::{Dataset, Sizing};

use crate::error::TdgraphError;
use crate::sweep::{ExperimentCell, SweepSpec};

/// Every execution engine the reproduction provides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// Optimized software baseline (§4.1).
    LigraO,
    /// Direction-optimizing Ligra (push/pull switching).
    LigraDO,
    /// GraphBolt software system.
    GraphBolt,
    /// KickStarter software system.
    KickStarter,
    /// DZiG software system.
    Dzig,
    /// TDGraph hardware engine (the contribution).
    TdGraphH,
    /// TDGraph hardware engine without the VSCU (Fig 13).
    TdGraphHWithout,
    /// Software-only TDGraph (§4.2).
    TdGraphS,
    /// Software-only TDGraph without coalescing (Fig 14).
    TdGraphSWithout,
    /// TDGraph with a custom configuration.
    TdGraphCustom(TdGraphConfig),
    /// HATS comparator accelerator.
    Hats,
    /// Minnow comparator accelerator.
    Minnow,
    /// PHI comparator accelerator.
    Phi,
    /// DepGraph comparator accelerator.
    DepGraph,
    /// JetStream streaming accelerator.
    JetStream,
    /// JetStream with VSCU-style coalescing (Fig 17).
    JetStreamWith,
    /// GraphPulse event-driven accelerator.
    GraphPulse,
}

impl EngineKind {
    /// Every fixed-configuration engine (i.e. all kinds except
    /// [`EngineKind::TdGraphCustom`]), in registry order.
    pub const ALL: [EngineKind; 16] = [
        EngineKind::LigraO,
        EngineKind::LigraDO,
        EngineKind::GraphBolt,
        EngineKind::KickStarter,
        EngineKind::Dzig,
        EngineKind::TdGraphH,
        EngineKind::TdGraphHWithout,
        EngineKind::TdGraphS,
        EngineKind::TdGraphSWithout,
        EngineKind::Hats,
        EngineKind::Minnow,
        EngineKind::Phi,
        EngineKind::DepGraph,
        EngineKind::JetStream,
        EngineKind::JetStreamWith,
        EngineKind::GraphPulse,
    ];

    /// The engine's stable registry key (kebab-case; what sweeps, progress
    /// events, and [`EngineRegistry::build`] use).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            EngineKind::LigraO => "ligra-o",
            EngineKind::LigraDO => "ligra-do",
            EngineKind::GraphBolt => "graphbolt",
            EngineKind::KickStarter => "kickstarter",
            EngineKind::Dzig => "dzig",
            EngineKind::TdGraphH => "tdgraph-h",
            EngineKind::TdGraphHWithout => "tdgraph-h-without",
            EngineKind::TdGraphS => "tdgraph-s",
            EngineKind::TdGraphSWithout => "tdgraph-s-without",
            EngineKind::TdGraphCustom(_) => "tdgraph-custom",
            EngineKind::Hats => "hats",
            EngineKind::Minnow => "minnow",
            EngineKind::Phi => "phi",
            EngineKind::DepGraph => "depgraph",
            EngineKind::JetStream => "jetstream",
            EngineKind::JetStreamWith => "jetstream-with",
            EngineKind::GraphPulse => "graphpulse",
        }
    }

    /// Instantiates the engine through the [`default_registry`].
    ///
    /// [`EngineKind::TdGraphCustom`] is the one kind carrying run-time
    /// configuration, so it is built directly; its registry key resolves
    /// to the default configuration.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownEngine`] if the kind's key is missing from
    /// the default registry (possible only when a caller shadows a
    /// built-in key with a broken registration).
    pub fn try_build(self) -> Result<Box<dyn Engine>, EngineError> {
        if let EngineKind::TdGraphCustom(cfg) = self {
            return Ok(Box::new(TdGraph::with_config(cfg)));
        }
        default_registry().try_build(self.key())
    }

    /// The software systems of Fig 3.
    pub const SOFTWARE: [EngineKind; 4] =
        [EngineKind::GraphBolt, EngineKind::KickStarter, EngineKind::Dzig, EngineKind::LigraO];

    /// The comparator accelerators of Fig 15.
    pub const ACCELERATORS: [EngineKind; 4] =
        [EngineKind::Hats, EngineKind::Minnow, EngineKind::Phi, EngineKind::DepGraph];
}

/// Builds a fresh registry holding every engine the workspace provides —
/// the software systems plus the accelerator models. This is the single
/// registration point: a new engine shows up in sweeps, the experiments
/// binary, and `EngineKind::try_build` by being registered here (or, for
/// external engines, on a copy of this registry).
#[must_use]
pub fn registry_with_defaults() -> EngineRegistry {
    let mut r = EngineRegistry::with_software();
    r.register(EngineKind::TdGraphH.key(), || Box::new(TdGraph::hardware()));
    r.register(EngineKind::TdGraphHWithout.key(), || Box::new(TdGraph::hardware_without_vscu()));
    r.register(EngineKind::TdGraphS.key(), || Box::new(TdGraph::software()));
    r.register(EngineKind::TdGraphSWithout.key(), || Box::new(TdGraph::software_without_vscu()));
    r.register(EngineKind::TdGraphCustom(TdGraphConfig::default()).key(), || {
        Box::new(TdGraph::with_config(TdGraphConfig::default()))
    });
    r.register(EngineKind::Hats.key(), || Box::new(Hats));
    r.register(EngineKind::Minnow.key(), || Box::new(Minnow));
    r.register(EngineKind::Phi.key(), || Box::new(Phi));
    r.register(EngineKind::DepGraph.key(), || Box::new(DepGraph));
    r.register(EngineKind::JetStream.key(), || Box::new(JetStream::new()));
    r.register(EngineKind::JetStreamWith.key(), || Box::new(JetStream::with_coalescing()));
    r.register(EngineKind::GraphPulse.key(), || Box::new(GraphPulse));
    r
}

/// The shared process-wide registry of built-in engines.
pub fn default_registry() -> &'static EngineRegistry {
    static REGISTRY: OnceLock<EngineRegistry> = OnceLock::new();
    REGISTRY.get_or_init(registry_with_defaults)
}

/// Builder for one streaming-graph experiment.
///
/// Compatibility guarantee: this type stays a thin wrapper over a one-cell
/// sweep — same defaults, same run path, same results as the pre-sweep
/// API. Existing callers never need to touch [`SweepSpec`] directly.
#[derive(Debug, Clone)]
pub struct Experiment {
    dataset: Dataset,
    sizing: Sizing,
    algo: Option<Algo>,
    options: RunConfig,
}

impl Experiment {
    /// Starts an experiment on `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Self {
            dataset,
            sizing: Sizing::Small,
            algo: None,
            options: RunConfig {
                sim: tdgraph_sim::SimConfig::scaled_reference(),
                ..RunConfig::default()
            },
        }
    }

    /// Selects the workload sizing (default: [`Sizing::Small`]).
    #[must_use]
    pub fn sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Selects the algorithm. When not set, SSSP from the workload's hub
    /// vertex is used.
    #[must_use]
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Overrides the run options (machine config, batches, composition).
    #[must_use]
    pub fn options(mut self, options: RunConfig) -> Self {
        self.options = options;
        self
    }

    /// Mutates the run options in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunConfig)) -> Self {
        f(&mut self.options);
        self
    }

    /// The equivalent one-cell sweep spec (shares every default).
    #[must_use]
    pub fn to_spec(&self, engine: EngineKind) -> SweepSpec {
        let spec = SweepSpec::new()
            .dataset(self.dataset)
            .sizing(self.sizing)
            .engine(engine)
            .options(self.options.clone());
        match self.algo {
            Some(a) => spec.algo(a),
            None => spec,
        }
    }

    /// Runs the experiment with `engine`, reporting failures as typed
    /// errors.
    ///
    /// # Errors
    ///
    /// Whatever [`ExperimentCell::run_checked`] reports: an unresolvable
    /// engine, invalid run options, or a workload that cannot be
    /// prepared.
    pub fn try_run(&self, engine: EngineKind) -> Result<RunResult, TdgraphError> {
        let cells = self.to_spec(engine).expand();
        debug_assert_eq!(cells.len(), 1, "Experiment expands to exactly one cell");
        let cell: &ExperimentCell = &cells[0];
        cell.run_checked(default_registry())
    }

    /// Runs the experiment with `engine`.
    ///
    /// # Panics
    ///
    /// Panics if [`Experiment::try_run`] reports an error.
    #[must_use]
    pub fn run(&self, engine: EngineKind) -> RunResult {
        match self.try_run(engine) {
            Ok(result) => result,
            Err(e) => panic!("experiment failed: {e}"),
        }
    }

    /// Runs the experiment for several engines, returning `(engine, result)`
    /// pairs in order.
    #[must_use]
    pub fn run_all(&self, engines: &[EngineKind]) -> Vec<(EngineKind, RunResult)> {
        engines.iter().map(|&e| (e, self.run(e))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_graph::datasets::Dataset;

    #[test]
    fn experiment_runs_and_verifies() {
        let res = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(|o| {
                o.sim = tdgraph_sim::SimConfig::small_test();
                o.batches = 1;
            })
            .run(EngineKind::TdGraphH);
        assert!(res.verify.is_match());
        assert_eq!(res.metrics.engine, "TDGraph-H");
    }

    #[test]
    fn default_algorithm_is_hub_sssp() {
        let res = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(|o| {
                o.sim = tdgraph_sim::SimConfig::small_test();
                o.batches = 1;
            })
            .run(EngineKind::LigraO);
        assert_eq!(res.metrics.algo, "SSSP");
    }

    #[test]
    fn every_engine_kind_resolves_through_the_registry() {
        let registry = default_registry();
        for kind in EngineKind::ALL {
            assert!(
                registry.contains(kind.key()),
                "{kind:?} ('{}') missing from the default registry",
                kind.key()
            );
            let engine = registry.build(kind.key()).expect("key registered");
            assert!(!engine.name().is_empty());
            assert_eq!(engine.name(), kind.try_build().unwrap().name());
        }
        // The custom kind resolves to the default configuration.
        let custom = EngineKind::TdGraphCustom(TdGraphConfig::default());
        assert!(registry.contains(custom.key()));
        assert_eq!(custom.try_build().unwrap().name(), "TDGraph-H");
    }

    #[test]
    fn try_run_reports_typed_errors_instead_of_panicking() {
        let err = Experiment::new(Dataset::Amazon)
            .sizing(Sizing::Tiny)
            .tune(|o| o.add_fraction = 2.0)
            .try_run(EngineKind::LigraO)
            .unwrap_err();
        assert!(matches!(err, TdgraphError::Engine(_)), "got {err}");
        assert!(err.to_string().contains("add_fraction"));
    }

    #[test]
    fn registry_keys_are_unique() {
        let mut keys: Vec<&str> = EngineKind::ALL.iter().map(EngineKind::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), EngineKind::ALL.len());
    }
}
