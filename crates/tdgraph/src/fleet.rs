//! Fault-tolerant multi-process sweep execution.
//!
//! The [`SweepRunner`](crate::SweepRunner) parallelizes a sweep across
//! threads in one process; this module scales the same sweep across a
//! *fleet of worker processes* and keeps the determinism contract intact
//! while workers are killed, wedged, or never spawn at all:
//!
//! * [`run_fleet`] is the coordinator: it expands the spec, binds a
//!   loopback TCP listener, spawns workers through a [`WorkerSpawner`],
//!   and assigns cells under *leases* — wall-clock TTLs refreshed by
//!   per-cell heartbeats. A lease that expires (wedged worker) or whose
//!   worker dies (killed worker) is reclaimed and the cell deterministically
//!   re-run elsewhere, with bounded backoff; after
//!   [`FleetConfig::max_cell_attempts`] the coordinator executes the cell
//!   inline itself, so every cell always finishes exactly once.
//! * Every lease carries a monotone *fencing token*. A result reported
//!   under a stale fence — a worker that was presumed dead and wasn't —
//!   is counted ([`FleetStats::stale_results`]) and discarded, so cells
//!   are never double-counted.
//! * [`run_worker`] is the worker side: it re-expands the same spec
//!   (guarded by an expansion digest in the hello), executes assigned
//!   cells behind the sweep fault boundary, heartbeats while a cell is in
//!   flight, and ships back the cell's pre-rendered canonical line plus
//!   its observability snapshot. Report lines are re-emitted by the
//!   coordinator verbatim, which is what makes a fleet run byte-identical
//!   to a serial [`SweepRunner`] run.
//! * Durability: with [`FleetConfig::checkpoint_to`], accepted results
//!   are flushed to a *lease log* (`<checkpoint>.leases`) immediately and
//!   to the checkpoint file strictly in cell-index order (so the
//!   checkpoint stays a byte-prefix of the serial run's). A restarted
//!   coordinator reloads both — tolerating torn tails the way the serve
//!   WAL does — and re-runs only the unfinished cells. An advisory
//!   [`CoordinatorLock`] (pid file with dead-holder takeover) keeps two
//!   coordinators off the same checkpoint.
//! * [`ProcessFaultPlan`] is the seeded chaos harness: it deterministically
//!   directs which spawned workers abort mid-cell (before or after
//!   reporting) and which wedge (stop heartbeating and hang), so recovery
//!   tests exercise real process kills reproducibly.
//!
//! Everything is hand-rolled JSON lines over the same wire conventions as
//! the serve crate — the workspace carries no serde.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use tdgraph_graph::prng::Xoshiro256StarStar;
use tdgraph_graph::wire::{lookup, lookup_str, parse_flat_object};
use tdgraph_obs::{keys, MemoryRecorder, Recorder, ShardedRecorder, Snapshot};
use tdgraph_serve::{Backoff, RetryPolicy, SystemClock};

use crate::checkpoint::{self, CheckpointLog, LoadedCheckpoint};
use crate::error::TdgraphError;
use crate::sweep::{
    cell_snapshot, execute_cell, plan_restored, CellOutcome, CellResult, ExperimentCell,
    OutcomeKind, RegistryHandle, SweepReport, SweepSpec,
};

/// An error in the fleet layer: spawning, wire protocol, or coordination
/// state.
#[derive(Debug)]
pub enum FleetError {
    /// An I/O operation (socket, lease log, lock file) failed.
    Io {
        /// What the coordinator or worker was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A wire message or lease-log record was malformed.
    Protocol {
        /// What was wrong with it.
        detail: String,
    },
    /// The coordinator lock is held by a live process.
    Locked {
        /// The lock file.
        path: PathBuf,
        /// Who holds it.
        detail: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io { context, source } => write!(f, "fleet i/o error {context}: {source}"),
            FleetError::Protocol { detail } => write!(f, "fleet protocol error: {detail}"),
            FleetError::Locked { path, detail } => {
                write!(f, "coordinator lock {} is {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io { source, .. } => Some(source),
            FleetError::Protocol { .. } | FleetError::Locked { .. } => None,
        }
    }
}

fn io_err(context: impl Into<String>, source: std::io::Error) -> FleetError {
    FleetError::Io { context: context.into(), source }
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Chaos directives
// ---------------------------------------------------------------------------

/// When a chaos-killed worker aborts relative to reporting its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Abort after executing the cell but *before* reporting it — the
    /// work is lost and the cell must be reclaimed and re-run.
    Before,
    /// Abort right *after* reporting the cell — the result survives, the
    /// worker does not.
    After,
}

/// What one spawned worker is directed to do (fleet chaos).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerDirective {
    /// Run cells until drained.
    Clean,
    /// Execute `after_cells` cells normally, then abort on the next one.
    Kill {
        /// Cells completed before the abort triggers.
        after_cells: u32,
        /// Abort before or after reporting the fatal cell.
        point: KillPoint,
    },
    /// Execute `after_cells` cells normally, then hang without
    /// heartbeating on the next assignment (a wedged process: alive but
    /// unresponsive, detected only by lease expiry).
    Wedge {
        /// Cells completed before the hang.
        after_cells: u32,
    },
}

/// A seeded, budgeted process-fault plan: of the workers spawned over the
/// fleet's lifetime, spawn indices `[0, kills)` are killed, indices
/// `[kills, kills + wedges)` wedge, and the rest run clean. Which cell the
/// fault lands on and the kill point are drawn from a PRNG derived from
/// `(seed, spawn_index)`, so the same plan replays identically while the
/// budget guarantees the sweep still terminates (respawned workers past
/// the budget run clean).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessFaultPlan {
    seed: u64,
    kills: u32,
    wedges: u32,
}

impl ProcessFaultPlan {
    /// A plan killing the first `kills` spawns and wedging the next
    /// `wedges`, with per-spawn details drawn from `seed`.
    #[must_use]
    pub fn seeded(seed: u64, kills: u32, wedges: u32) -> Self {
        Self { seed, kills, wedges }
    }

    /// The deterministic directive for the `spawn_index`-th worker spawn.
    #[must_use]
    pub fn directive_for(&self, spawn_index: u32) -> WorkerDirective {
        let stream = self
            .seed
            .wrapping_add(u64::from(spawn_index).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(1);
        let mut rng = Xoshiro256StarStar::new(stream);
        if spawn_index < self.kills {
            let after_cells = rng.next_below(2) as u32;
            let point = if rng.next_bool(0.5) { KillPoint::Before } else { KillPoint::After };
            WorkerDirective::Kill { after_cells, point }
        } else if spawn_index < self.kills.saturating_add(self.wedges) {
            WorkerDirective::Wedge { after_cells: rng.next_below(2) as u32 }
        } else {
            WorkerDirective::Clean
        }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Fleet execution knobs (builder-style, mirroring `SweepRunner`).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Target worker-process count.
    pub workers: u32,
    /// Worker heartbeat period while a cell is in flight.
    pub heartbeat: Duration,
    /// Lease TTL: a lease not refreshed for this long is reclaimed and
    /// its holder presumed wedged (and killed).
    pub lease_ttl: Duration,
    /// Backoff schedule for re-running reclaimed cells.
    pub retry: RetryPolicy,
    /// Remote attempts per cell before the coordinator runs it inline.
    pub max_cell_attempts: u32,
    /// Worker respawns the coordinator may spend after the initial fleet.
    pub respawn_budget: u32,
    /// Checkpoint path; also derives the lease log (`<path>.leases`) and
    /// the coordinator lock (`<path>.lock`).
    pub checkpoint: Option<PathBuf>,
    /// Merge per-cell observability snapshots into the report.
    pub observe: bool,
    /// Seeded process-chaos plan (tests only in spirit, harmless in prod).
    pub chaos: Option<ProcessFaultPlan>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            heartbeat: Duration::from_millis(25),
            lease_ttl: Duration::from_millis(800),
            retry: RetryPolicy {
                max_attempts: 5,
                base_backoff: Duration::from_millis(25),
                max_backoff: Duration::from_millis(250),
            },
            max_cell_attempts: 3,
            respawn_budget: 8,
            checkpoint: None,
            observe: false,
            chaos: None,
        }
    }
}

impl FleetConfig {
    /// Sets the worker-process count (min 1 once cells exist).
    #[must_use]
    pub fn workers(mut self, n: u32) -> Self {
        self.workers = n;
        self
    }

    /// Sets the heartbeat period.
    #[must_use]
    pub fn heartbeat(mut self, period: Duration) -> Self {
        self.heartbeat = period;
        self
    }

    /// Sets the lease TTL.
    #[must_use]
    pub fn lease_ttl(mut self, ttl: Duration) -> Self {
        self.lease_ttl = ttl;
        self
    }

    /// Sets the reclaimed-cell retry backoff policy.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the remote attempts per cell before inline fallback.
    #[must_use]
    pub fn max_cell_attempts(mut self, n: u32) -> Self {
        self.max_cell_attempts = n.max(1);
        self
    }

    /// Sets the respawn budget.
    #[must_use]
    pub fn respawn_budget(mut self, n: u32) -> Self {
        self.respawn_budget = n;
        self
    }

    /// Checkpoints accepted cells to `path` (and the lease log next to
    /// it), enabling coordinator-restart resume.
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Enables merged observability snapshots.
    #[must_use]
    pub fn observe(mut self, enabled: bool) -> Self {
        self.observe = enabled;
        self
    }

    /// Installs a seeded process-fault plan.
    #[must_use]
    pub fn chaos(mut self, plan: ProcessFaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// What the fleet survived: coordination counters, deliberately kept
/// *outside* the byte-compared sweep snapshot (they vary with timing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Leases granted (a cell re-run counts once per lease).
    pub cells_assigned: u64,
    /// Cells whose accepted result came from a worker process.
    pub cells_remote: u64,
    /// Cells the coordinator executed inline (degradation path).
    pub cells_inline: u64,
    /// Cells restored from the checkpoint / lease log on startup.
    pub cells_restored: u64,
    /// Leases reclaimed because the holding worker died.
    pub reclaims_dead: u64,
    /// Leases reclaimed because they expired (wedged worker).
    pub reclaims_expired: u64,
    /// Worker processes lost mid-sweep.
    pub worker_deaths: u64,
    /// Workers respawned after the initial fleet.
    pub respawns: u64,
    /// Worker spawn attempts that failed outright.
    pub spawn_failures: u64,
    /// Results discarded for carrying a stale fencing token.
    pub stale_results: u64,
    /// Heartbeats accepted.
    pub heartbeats: u64,
    /// Torn tails dropped across the checkpoint and lease log.
    pub torn_tails_dropped: u64,
}

impl FleetStats {
    /// Renders the counters as an observability snapshot under the
    /// `fleet.*` keys.
    #[must_use]
    pub fn to_snapshot(&self) -> Snapshot {
        let mut mem = MemoryRecorder::new();
        mem.counter(keys::FLEET_CELLS_ASSIGNED, self.cells_assigned);
        mem.counter(keys::FLEET_CELLS_REMOTE, self.cells_remote);
        mem.counter(keys::FLEET_CELLS_INLINE, self.cells_inline);
        mem.counter(keys::FLEET_CELLS_RESTORED, self.cells_restored);
        mem.counter(keys::FLEET_RECLAIMS_DEAD, self.reclaims_dead);
        mem.counter(keys::FLEET_RECLAIMS_EXPIRED, self.reclaims_expired);
        mem.counter(keys::FLEET_WORKER_DEATHS, self.worker_deaths);
        mem.counter(keys::FLEET_RESPAWNS, self.respawns);
        mem.counter(keys::FLEET_SPAWN_FAILURES, self.spawn_failures);
        mem.counter(keys::FLEET_STALE_RESULTS, self.stale_results);
        mem.counter(keys::FLEET_HEARTBEATS, self.heartbeats);
        mem.counter(keys::FLEET_TORN_TAILS, self.torn_tails_dropped);
        mem.into_snapshot()
    }
}

/// A fleet run's results: the merged report (byte-identical to a serial
/// run of the same spec) plus the coordination stats.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The merged sweep report, cells in expansion order.
    pub report: SweepReport,
    /// What the fleet survived along the way.
    pub stats: FleetStats,
}

// ---------------------------------------------------------------------------
// Coordinator lock
// ---------------------------------------------------------------------------

/// An advisory pid-file lock keeping two coordinators off one checkpoint.
///
/// Acquisition is `create_new`; on conflict the holder pid is read and, if
/// that process is gone (`/proc/<pid>` absent), the stale lock is taken
/// over. Released on drop.
#[derive(Debug)]
pub struct CoordinatorLock {
    path: PathBuf,
}

impl CoordinatorLock {
    /// Acquires (or takes over a stale) lock at `path`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Locked`] when a live process holds it,
    /// [`FleetError::Io`] on filesystem failures.
    pub fn acquire(path: impl Into<PathBuf>) -> Result<Self, FleetError> {
        let path = path.into();
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    writeln!(file, "{}", std::process::id())
                        .and_then(|()| file.flush())
                        .map_err(|e| io_err(format!("writing lock {}", path.display()), e))?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path).unwrap_or_default();
                    if holder_is_live(holder.trim()) {
                        return Err(FleetError::Locked {
                            path,
                            detail: format!("held by live pid {}", holder.trim()),
                        });
                    }
                    // Dead (or unreadable) holder: take the lock over.
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(io_err(format!("acquiring lock {}", path.display()), e)),
            }
        }
        Err(FleetError::Locked { path, detail: "contended during takeover".to_string() })
    }

    /// The lock file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for CoordinatorLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether the pid recorded in a lock file belongs to a live process.
/// Without procfs we cannot tell, so we err on the side of "live".
fn holder_is_live(pid: &str) -> bool {
    let Ok(pid) = pid.parse::<u32>() else {
        return false; // garbage lock content: treat as stale
    };
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// The advisory lock path derived from a checkpoint path.
#[must_use]
pub fn lock_path(checkpoint: &Path) -> PathBuf {
    sibling(checkpoint, ".lock")
}

/// The lease-log path derived from a checkpoint path.
#[must_use]
pub fn lease_log_path(checkpoint: &Path) -> PathBuf {
    sibling(checkpoint, ".leases")
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a fleet wire / lease-log line.
/// Exact inverse of [`tdgraph_graph::wire::json_unescape_wire`] for
/// strings free of control characters other than `\n`/`\t` — which every
/// canonical line and detail string is.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn u64_field(fields: &[(String, String)], key: &str) -> Result<u64, String> {
    lookup(fields, key)?.parse::<u64>().map_err(|e| format!("field '{key}' is not an integer: {e}"))
}

fn usize_field(fields: &[(String, String)], key: &str) -> Result<usize, String> {
    lookup(fields, key)?.parse::<usize>().map_err(|e| format!("field '{key}' is not an index: {e}"))
}

fn bool_field(fields: &[(String, String)], key: &str) -> Result<bool, String> {
    match lookup(fields, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("field '{key}' is not a bool: {other}")),
    }
}

/// A finished cell as reported across the process boundary: the worker's
/// classification plus its pre-rendered canonical line and snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CellReport {
    cell: usize,
    kind: OutcomeKind,
    verified: bool,
    detail: String,
    line: String,
    snapshot: String,
}

impl CellReport {
    fn of(result: &CellResult) -> Self {
        Self {
            cell: result.cell.index,
            kind: result.outcome.kind(),
            verified: result.is_verified(),
            detail: result.outcome.detail(),
            line: result.canonical_line(),
            snapshot: cell_snapshot(result).map(|s| s.canonical_json_line()).unwrap_or_default(),
        }
    }

    fn render_fields(&self) -> String {
        format!(
            "\"cell\":{},\"kind\":\"{}\",\"verified\":{},\"detail\":\"{}\",\"line\":\"{}\",\"snapshot\":\"{}\"",
            self.cell,
            self.kind.label(),
            self.verified,
            escape(&self.detail),
            escape(&self.line),
            escape(&self.snapshot),
        )
    }

    fn parse_fields(fields: &[(String, String)]) -> Result<Self, String> {
        let kind_label = lookup_str(fields, "kind")?;
        let kind = OutcomeKind::from_label(&kind_label)
            .ok_or_else(|| format!("unknown outcome kind '{kind_label}'"))?;
        Ok(Self {
            cell: usize_field(fields, "cell")?,
            kind,
            verified: bool_field(fields, "verified")?,
            detail: lookup_str(fields, "detail")?,
            line: lookup_str(fields, "line")?,
            snapshot: lookup_str(fields, "snapshot")?,
        })
    }
}

/// Worker → coordinator events.
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkerEvent {
    Hello { worker: u32, pid: u32, cells: usize, digest: u64 },
    Beat { worker: u32, cell: usize, fence: u64 },
    Done { worker: u32, fence: u64, report: CellReport },
}

impl WorkerEvent {
    fn render(&self) -> String {
        match self {
            WorkerEvent::Hello { worker, pid, cells, digest } => format!(
                "{{\"ev\":\"hello\",\"worker\":{worker},\"pid\":{pid},\"cells\":{cells},\"digest\":{digest}}}"
            ),
            WorkerEvent::Beat { worker, cell, fence } => {
                format!("{{\"ev\":\"beat\",\"worker\":{worker},\"cell\":{cell},\"fence\":{fence}}}")
            }
            WorkerEvent::Done { worker, fence, report } => format!(
                "{{\"ev\":\"done\",\"worker\":{worker},\"fence\":{fence},{}}}",
                report.render_fields()
            ),
        }
    }

    fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let ev = lookup_str(&fields, "ev")?;
        let worker = u64_field(&fields, "worker")? as u32;
        match ev.as_str() {
            "hello" => Ok(WorkerEvent::Hello {
                worker,
                pid: u64_field(&fields, "pid")? as u32,
                cells: usize_field(&fields, "cells")?,
                digest: u64_field(&fields, "digest")?,
            }),
            "beat" => Ok(WorkerEvent::Beat {
                worker,
                cell: usize_field(&fields, "cell")?,
                fence: u64_field(&fields, "fence")?,
            }),
            "done" => Ok(WorkerEvent::Done {
                worker,
                fence: u64_field(&fields, "fence")?,
                report: CellReport::parse_fields(&fields)?,
            }),
            other => Err(format!("unknown worker event '{other}'")),
        }
    }
}

/// Coordinator → worker requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerRequest {
    Run { cell: usize, fence: u64 },
    Drain,
}

impl WorkerRequest {
    fn render(&self) -> String {
        match self {
            WorkerRequest::Run { cell, fence } => {
                format!("{{\"req\":\"run\",\"cell\":{cell},\"fence\":{fence}}}")
            }
            WorkerRequest::Drain => "{\"req\":\"drain\"}".to_string(),
        }
    }

    fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        match lookup_str(&fields, "req")?.as_str() {
            "run" => Ok(WorkerRequest::Run {
                cell: usize_field(&fields, "cell")?,
                fence: u64_field(&fields, "fence")?,
            }),
            "drain" => Ok(WorkerRequest::Drain),
            other => Err(format!("unknown request '{other}'")),
        }
    }
}

/// Lease-log records (one flat JSON line each, `"fleet"` tagged).
#[derive(Debug, Clone, PartialEq, Eq)]
enum LeaseRecord {
    Lease { cell: usize, fence: u64, worker: u32, attempt: u32 },
    Done { fence: u64, report: CellReport },
    Reclaim { cell: usize, fence: u64, reason: &'static str },
}

impl LeaseRecord {
    fn render(&self) -> String {
        match self {
            LeaseRecord::Lease { cell, fence, worker, attempt } => format!(
                "{{\"fleet\":\"lease\",\"cell\":{cell},\"fence\":{fence},\"worker\":{worker},\"attempt\":{attempt}}}"
            ),
            LeaseRecord::Done { fence, report } => {
                format!("{{\"fleet\":\"done\",\"fence\":{fence},{}}}", report.render_fields())
            }
            LeaseRecord::Reclaim { cell, fence, reason } => format!(
                "{{\"fleet\":\"reclaim\",\"cell\":{cell},\"fence\":{fence},\"reason\":\"{reason}\"}}"
            ),
        }
    }

    fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        match lookup_str(&fields, "fleet")?.as_str() {
            "lease" => Ok(LeaseRecord::Lease {
                cell: usize_field(&fields, "cell")?,
                fence: u64_field(&fields, "fence")?,
                worker: u64_field(&fields, "worker")? as u32,
                attempt: u64_field(&fields, "attempt")? as u32,
            }),
            "done" => Ok(LeaseRecord::Done {
                fence: u64_field(&fields, "fence")?,
                report: CellReport::parse_fields(&fields)?,
            }),
            "reclaim" => {
                // The reason is informational; normalize to a static str.
                let reason = match lookup_str(&fields, "reason")?.as_str() {
                    "dead" => "dead",
                    _ => "expired",
                };
                Ok(LeaseRecord::Reclaim {
                    cell: usize_field(&fields, "cell")?,
                    fence: u64_field(&fields, "fence")?,
                    reason,
                })
            }
            other => Err(format!("unknown lease record '{other}'")),
        }
    }
}

/// The lease log loaded on coordinator restart: last done record per
/// cell, plus how many torn tail lines were dropped.
#[derive(Debug, Default)]
struct LoadedLeases {
    done: HashMap<usize, CellReport>,
    clean_bytes: u64,
    torn_tails_dropped: usize,
}

/// Loads a lease log, tolerating a torn tail exactly like
/// [`checkpoint::load_tolerant`]: an unterminated or undecodable *final*
/// line is dropped and counted; malformed interior lines are hard errors.
fn load_lease_log(path: &Path) -> Result<LoadedLeases, FleetError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(LoadedLeases::default()),
        Err(e) => return Err(io_err(format!("reading lease log {}", path.display()), e)),
    };
    let mut loaded = LoadedLeases::default();
    let mut line_no = 0usize;
    let mut start = 0usize;
    while start < text.len() {
        let (line, end, terminated) = match text[start..].find('\n') {
            Some(i) => (&text[start..start + i], start + i + 1, true),
            None => (&text[start..], text.len(), false),
        };
        line_no += 1;
        if !terminated {
            if !line.trim().is_empty() {
                loaded.torn_tails_dropped = 1;
            }
            break;
        }
        if line.trim().is_empty() {
            loaded.clean_bytes = end as u64;
            start = end;
            continue;
        }
        match LeaseRecord::parse(line) {
            Ok(record) => {
                if let LeaseRecord::Done { report, .. } = record {
                    loaded.done.insert(report.cell, report);
                }
                loaded.clean_bytes = end as u64;
            }
            Err(reason) => {
                if text[end..].trim().is_empty() {
                    loaded.torn_tails_dropped = 1;
                    break;
                }
                return Err(FleetError::Protocol {
                    detail: format!("lease log line {line_no}: {reason}"),
                });
            }
        }
        start = end;
    }
    Ok(loaded)
}

/// Append-only lease-log writer (absent when the fleet runs without a
/// checkpoint — then there is nothing durable to coordinate).
#[derive(Debug)]
struct LeaseLog {
    path: PathBuf,
    file: Mutex<File>,
}

impl LeaseLog {
    /// Opens the log for appending, truncating a torn tail first.
    fn resume(path: PathBuf, loaded: &LoadedLeases) -> Result<Self, FleetError> {
        if loaded.torn_tails_dropped > 0 {
            OpenOptions::new()
                .write(true)
                .open(&path)
                .and_then(|f| f.set_len(loaded.clean_bytes))
                .map_err(|e| io_err(format!("truncating lease log {}", path.display()), e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(format!("opening lease log {}", path.display()), e))?;
        Ok(Self { path, file: Mutex::new(file) })
    }

    fn append(&self, record: &LeaseRecord) -> Result<(), FleetError> {
        let mut file = lock_ok(&self.file);
        writeln!(file, "{}", record.render())
            .and_then(|()| file.flush())
            .map_err(|e| io_err(format!("appending lease log {}", self.path.display()), e))
    }
}

/// FNV-1a digest over the expanded cell coordinates; the hello handshake
/// compares it so a coordinator never leases cells to a worker whose spec
/// expanded differently.
#[must_use]
pub fn expansion_digest(cells: &[ExperimentCell]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for cell in cells {
        for b in checkpoint::cell_coordinates(cell).bytes().chain(std::iter::once(b'\n')) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

/// Everything a spawner needs to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    /// The worker's fleet id (== its spawn index).
    pub worker_id: u32,
    /// The coordinator's listen address.
    pub connect: SocketAddr,
    /// Heartbeat period the worker must beat at.
    pub heartbeat: Duration,
    /// The chaos directive for this spawn.
    pub directive: WorkerDirective,
}

impl WorkerLaunch {
    /// The canonical worker-mode CLI flags for this launch, appended to
    /// whatever spec flags the binary already parses.
    #[must_use]
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--worker".to_string(),
            "--connect".to_string(),
            self.connect.to_string(),
            "--worker-id".to_string(),
            self.worker_id.to_string(),
            "--heartbeat-ms".to_string(),
            self.heartbeat.as_millis().to_string(),
        ];
        match self.directive {
            WorkerDirective::Clean => {}
            WorkerDirective::Kill { after_cells, point } => {
                args.push("--die-after-cells".to_string());
                args.push(after_cells.to_string());
                args.push("--die-point".to_string());
                args.push(match point {
                    KillPoint::Before => "before".to_string(),
                    KillPoint::After => "after".to_string(),
                });
            }
            WorkerDirective::Wedge { after_cells } => {
                args.push("--wedge-after-cells".to_string());
                args.push(after_cells.to_string());
            }
        }
        args
    }
}

/// How the coordinator turns a [`WorkerLaunch`] into a live process.
/// Tests inject failing spawners to exercise graceful degradation.
pub trait WorkerSpawner {
    /// Spawns one worker process.
    ///
    /// # Errors
    ///
    /// The spawn failure; the coordinator degrades to fewer workers (and
    /// ultimately to inline execution) rather than aborting the sweep.
    fn spawn(&mut self, launch: &WorkerLaunch) -> std::io::Result<Child>;
}

/// The standard spawner: re-executes the current binary with the given
/// spec flags plus the worker-mode flags from [`WorkerLaunch::to_args`].
#[derive(Debug, Clone)]
pub struct SelfExecSpawner {
    spec_args: Vec<String>,
}

impl SelfExecSpawner {
    /// A spawner passing `spec_args` (the flags that reproduce the sweep
    /// spec) to every worker.
    #[must_use]
    pub fn new(spec_args: Vec<String>) -> Self {
        Self { spec_args }
    }
}

impl WorkerSpawner for SelfExecSpawner {
    fn spawn(&mut self, launch: &WorkerLaunch) -> std::io::Result<Child> {
        let exe = std::env::current_exe()?;
        std::process::Command::new(exe)
            .args(&self.spec_args)
            .args(launch.to_args())
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Scheduler-internal events from the accept/reader threads.
enum Event {
    Hello { worker: u32, cells: usize, digest: u64, conn: u64, stream: TcpStream },
    Beat { cell: usize, fence: u64 },
    Done { worker: u32, fence: u64, report: CellReport },
    Gone { worker: u32, conn: u64 },
}

enum CellState {
    Pending { attempts: u32, eligible_at: Instant },
    Leased { attempts: u32, fence: u64, worker: u32, expires_at: Instant },
    Finished(Box<FinishedCell>),
}

struct FinishedCell {
    outcome: CellOutcome,
    line: String,
    snapshot: Option<Snapshot>,
    retries: u32,
}

struct LiveWorker {
    stream: TcpStream,
    conn: u64,
    lease: Option<usize>,
}

struct SpawnedChild {
    child: Child,
    spawned_at: Instant,
    hello: bool,
}

fn send_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

struct Coordinator<'a> {
    cfg: &'a FleetConfig,
    cells: &'a [ExperimentCell],
    addr: SocketAddr,
    states: Vec<CellState>,
    workers: HashMap<u32, LiveWorker>,
    children: HashMap<u32, SpawnedChild>,
    stats: FleetStats,
    fence: u64,
    next_spawn: u32,
    respawns_left: u32,
    write_errors: usize,
    frontier: usize,
    ckpt: Option<CheckpointLog>,
    leases: Option<LeaseLog>,
    digest: u64,
}

impl Coordinator<'_> {
    fn remaining(&self) -> usize {
        self.states.iter().filter(|s| !matches!(s, CellState::Finished(_))).count()
    }

    fn lease_append(&mut self, record: &LeaseRecord) {
        if let Some(log) = &self.leases {
            if log.append(record).is_err() {
                self.write_errors += 1;
            }
        }
    }

    /// Appends finished cells to the checkpoint strictly in index order
    /// (only completed cells — mirroring the serial runner — and only
    /// past what an earlier incarnation already wrote).
    fn advance_checkpoint(&mut self) {
        while self.frontier < self.states.len() {
            let CellState::Finished(f) = &self.states[self.frontier] else { break };
            if f.outcome.kind() == OutcomeKind::Completed {
                if let Some(log) = &self.ckpt {
                    if log.append_line(&f.line).is_err() {
                        self.write_errors += 1;
                    }
                }
            }
            self.frontier += 1;
        }
    }

    fn finish(&mut self, idx: usize, cell: FinishedCell) {
        self.states[idx] = CellState::Finished(Box::new(cell));
        self.advance_checkpoint();
    }

    /// Executes a cell in the coordinator process (degradation path:
    /// spawns failed, fleet died, or a cell spent its remote attempts).
    fn run_inline(&mut self, idx: usize, attempts: u32) {
        let cell = &self.cells[idx];
        let t0 = Instant::now();
        let outcome = execute_cell(cell, &RegistryHandle::Default, None);
        let result =
            CellResult { cell: cell.clone(), outcome, wall: t0.elapsed(), retries: attempts };
        let report = CellReport::of(&result);
        self.fence += 1;
        self.lease_append(&LeaseRecord::Done { fence: self.fence, report: report.clone() });
        let snapshot = self.parse_snapshot(&report.snapshot);
        self.stats.cells_inline += 1;
        self.finish(
            idx,
            FinishedCell {
                outcome: result.outcome,
                line: report.line,
                snapshot,
                retries: attempts,
            },
        );
    }

    fn parse_snapshot(&self, rendered: &str) -> Option<Snapshot> {
        if !self.cfg.observe || rendered.is_empty() {
            return None;
        }
        Snapshot::parse_canonical(rendered).ok()
    }

    fn next_pending(&self, now: Instant) -> Option<usize> {
        self.states.iter().position(
            |s| matches!(s, CellState::Pending { eligible_at, .. } if *eligible_at <= now),
        )
    }

    fn spawn_one(&mut self, spawner: &mut dyn WorkerSpawner) {
        let id = self.next_spawn;
        self.next_spawn += 1;
        let directive =
            self.cfg.chaos.map_or(WorkerDirective::Clean, |plan| plan.directive_for(id));
        let launch = WorkerLaunch {
            worker_id: id,
            connect: self.addr,
            heartbeat: self.cfg.heartbeat,
            directive,
        };
        match spawner.spawn(&launch) {
            Ok(child) => {
                self.children
                    .insert(id, SpawnedChild { child, spawned_at: Instant::now(), hello: false });
            }
            Err(_) => self.stats.spawn_failures += 1,
        }
    }

    fn lease(&mut self, worker: u32, idx: usize, now: Instant) {
        let CellState::Pending { attempts, .. } = self.states[idx] else { return };
        self.fence += 1;
        let fence = self.fence;
        self.lease_append(&LeaseRecord::Lease { cell: idx, fence, worker, attempt: attempts });
        let msg = WorkerRequest::Run { cell: idx, fence }.render();
        let sent = match self.workers.get_mut(&worker) {
            Some(w) => send_line(&mut w.stream, &msg).is_ok(),
            None => false,
        };
        if sent {
            self.states[idx] =
                CellState::Leased { attempts, fence, worker, expires_at: now + self.cfg.lease_ttl };
            if let Some(w) = self.workers.get_mut(&worker) {
                w.lease = Some(idx);
            }
            self.stats.cells_assigned += 1;
        } else {
            // Dead on arrival: the cell stays pending (no attempt spent),
            // the worker is dropped.
            self.drop_worker(worker, now);
        }
    }

    fn assign_idle(&mut self, now: Instant) {
        let idle: Vec<u32> =
            self.workers.iter().filter(|(_, w)| w.lease.is_none()).map(|(id, _)| *id).collect();
        for id in idle {
            let Some(idx) = self.next_pending(now) else { break };
            self.lease(id, idx, now);
        }
    }

    /// Reclaims a leased cell: durable reclaim record, then either
    /// another (backed-off) remote attempt or inline execution once the
    /// attempt budget is spent.
    fn reclaim(&mut self, idx: usize, reason: &'static str, now: Instant) {
        let CellState::Leased { attempts, fence, .. } = self.states[idx] else { return };
        self.lease_append(&LeaseRecord::Reclaim { cell: idx, fence, reason });
        if reason == "dead" {
            self.stats.reclaims_dead += 1;
        } else {
            self.stats.reclaims_expired += 1;
        }
        let next_attempts = attempts + 1;
        if next_attempts >= self.cfg.max_cell_attempts {
            self.run_inline(idx, next_attempts);
        } else {
            self.states[idx] = CellState::Pending {
                attempts: next_attempts,
                eligible_at: now + self.cfg.retry.backoff(attempts),
            };
        }
    }

    /// Removes a worker (dead or presumed wedged), reclaims its lease,
    /// and reaps its child process.
    fn drop_worker(&mut self, id: u32, now: Instant) {
        if let Some(w) = self.workers.remove(&id) {
            if let Some(idx) = w.lease {
                // Only reclaim if the lease still points at this worker.
                if matches!(self.states[idx], CellState::Leased { worker, .. } if worker == id) {
                    self.reclaim(idx, "dead", now);
                }
            }
        }
        if let Some(mut spawned) = self.children.remove(&id) {
            let _ = spawned.child.kill();
            let _ = spawned.child.wait();
        }
        self.stats.worker_deaths += 1;
    }

    fn handle(&mut self, event: Event, now: Instant) {
        match event {
            Event::Hello { worker, cells, digest, conn, stream } => {
                if cells != self.cells.len() || digest != self.digest {
                    // Divergent expansion: never lease to this worker.
                    let mut s = stream;
                    let _ = send_line(&mut s, &WorkerRequest::Drain.render());
                    self.drop_worker(worker, now);
                    return;
                }
                if let Some(spawned) = self.children.get_mut(&worker) {
                    spawned.hello = true;
                }
                // Reconnects keep any lease the cell table still holds.
                let lease = self
                    .states
                    .iter()
                    .position(|s| matches!(s, CellState::Leased { worker: w, .. } if *w == worker));
                self.workers.insert(worker, LiveWorker { stream, conn, lease });
                self.assign_idle(now);
            }
            Event::Beat { cell, fence } => {
                if let Some(CellState::Leased { fence: f, expires_at, .. }) =
                    self.states.get_mut(cell)
                {
                    if *f == fence {
                        *expires_at = now + self.cfg.lease_ttl;
                        self.stats.heartbeats += 1;
                    }
                }
            }
            Event::Done { worker, fence, report } => {
                let accept = matches!(
                    self.states.get(report.cell),
                    Some(CellState::Leased { fence: f, .. }) if *f == fence
                );
                if !accept {
                    self.stats.stale_results += 1;
                    return;
                }
                let CellState::Leased { attempts, .. } = self.states[report.cell] else { return };
                self.lease_append(&LeaseRecord::Done { fence, report: report.clone() });
                let snapshot = self.parse_snapshot(&report.snapshot);
                let outcome = CellOutcome::Remote {
                    kind: report.kind,
                    verified: report.verified,
                    line: report.line.clone(),
                    detail: report.detail,
                };
                self.stats.cells_remote += 1;
                self.finish(
                    report.cell,
                    FinishedCell { outcome, line: report.line, snapshot, retries: attempts },
                );
                if let Some(w) = self.workers.get_mut(&worker) {
                    if w.lease == Some(report.cell) {
                        w.lease = None;
                    }
                }
                self.assign_idle(now);
            }
            Event::Gone { worker, conn } => {
                if self.workers.get(&worker).is_some_and(|w| w.conn == conn) {
                    self.drop_worker(worker, now);
                } else if let Some(mut spawned) = self.children.remove(&worker) {
                    // A worker that died before (or instead of) helloing.
                    let _ = spawned.child.kill();
                    let _ = spawned.child.wait();
                    self.stats.worker_deaths += 1;
                }
            }
        }
    }

    fn tick(&mut self, now: Instant, spawner: &mut dyn WorkerSpawner) {
        // Expired leases: the holder is presumed wedged — reclaim the
        // cell and kill the process (fencing keeps any late result inert).
        let expired: Vec<(usize, u32)> = self
            .states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                CellState::Leased { worker, expires_at, .. } if *expires_at <= now => {
                    Some((i, *worker))
                }
                _ => None,
            })
            .collect();
        for (idx, worker) in expired {
            self.reclaim(idx, "expired", now);
            if let Some(w) = self.workers.remove(&worker) {
                drop(w);
            }
            if let Some(mut spawned) = self.children.remove(&worker) {
                let _ = spawned.child.kill();
                let _ = spawned.child.wait();
            }
            self.stats.worker_deaths += 1;
        }

        // Children that exited (or never helloed in time) without a
        // connection the reader threads would notice.
        let hello_deadline = self.cfg.lease_ttl * 2;
        let silent: Vec<u32> = self
            .children
            .iter_mut()
            .filter_map(|(id, spawned)| {
                if spawned.hello {
                    return None;
                }
                let exited = matches!(spawned.child.try_wait(), Ok(Some(_)));
                let overdue = now.duration_since(spawned.spawned_at) >= hello_deadline;
                (exited || overdue).then_some(*id)
            })
            .collect();
        for id in silent {
            self.drop_worker(id, now);
        }

        // Keep the fleet at strength while pending work and budget remain.
        let desired = (self.cfg.workers as usize).min(self.remaining());
        while self.children.len() < desired && self.respawns_left > 0 {
            self.respawns_left -= 1;
            self.stats.respawns += 1;
            self.spawn_one(spawner);
        }

        self.assign_idle(now);
    }
}

/// Runs `spec` across a fleet of worker processes under `cfg`.
///
/// The returned report's canonical lines, checkpoint file, and merged
/// observability snapshot are byte-identical to a serial
/// [`SweepRunner`](crate::SweepRunner) run of the same spec, across
/// worker counts, chaos kills/wedges, and coordinator restarts.
///
/// # Errors
///
/// [`TdgraphError::Fleet`] when the listener cannot bind or the
/// coordinator lock is held by a live process;
/// [`TdgraphError::Checkpoint`] when the checkpoint cannot be resumed.
/// Worker failures are never errors — they are survived.
pub fn run_fleet(
    spec: &SweepSpec,
    cfg: &FleetConfig,
    spawner: &mut dyn WorkerSpawner,
) -> Result<FleetOutcome, TdgraphError> {
    let cells = spec.expand();
    let mut stats = FleetStats::default();
    let mut write_errors = 0usize;
    let mut report_torn = 0usize;

    // --- Durable state: lock, checkpoint, lease log -----------------------
    let _lock = match &cfg.checkpoint {
        Some(path) => Some(CoordinatorLock::acquire(lock_path(path))?),
        None => None,
    };
    let (ckpt, ckpt_loaded) = match &cfg.checkpoint {
        Some(path) => {
            let (log, loaded) = CheckpointLog::resume(path)?;
            (Some(log), loaded)
        }
        None => {
            (None, LoadedCheckpoint { records: Vec::new(), clean_bytes: 0, torn_tails_dropped: 0 })
        }
    };
    let (leases, lease_loaded) = match &cfg.checkpoint {
        Some(path) => {
            let loaded = load_lease_log(&lease_log_path(path))?;
            let log = LeaseLog::resume(lease_log_path(path), &loaded)?;
            (Some(log), loaded)
        }
        None => (None, LoadedLeases::default()),
    };
    report_torn += ckpt_loaded.torn_tails_dropped;
    stats.torn_tails_dropped +=
        (ckpt_loaded.torn_tails_dropped + lease_loaded.torn_tails_dropped) as u64;

    // --- Restore: spec resume file, own checkpoint, then lease log --------
    let mut states: Vec<CellState> = Vec::with_capacity(cells.len());
    let start = Instant::now();
    for _ in 0..cells.len() {
        states.push(CellState::Pending { attempts: 0, eligible_at: start });
    }
    let frontier = ckpt_loaded.records.last().map_or(0, |r| r.cell + 1);
    let mut restored: Vec<Option<checkpoint::CanonicalCell>> =
        (0..cells.len()).map(|_| None).collect();
    if let Some(path) = spec.resume_ref() {
        let loaded = checkpoint::load_tolerant(path)?;
        report_torn += loaded.torn_tails_dropped;
        stats.torn_tails_dropped += loaded.torn_tails_dropped as u64;
        for (slot, record) in restored.iter_mut().zip(plan_restored(loaded.records, &cells)?) {
            if record.is_some() {
                *slot = record;
            }
        }
    }
    for (slot, record) in restored.iter_mut().zip(plan_restored(ckpt_loaded.records, &cells)?) {
        if record.is_some() {
            *slot = record;
        }
    }
    let observe = cfg.observe;
    for (idx, record) in restored.into_iter().enumerate() {
        let Some(record) = record else { continue };
        let line = record.to_json_line();
        let snapshot = observe.then(|| crate::sweep::restored_snapshot(&record));
        states[idx] = CellState::Finished(Box::new(FinishedCell {
            outcome: CellOutcome::Restored(record),
            line,
            snapshot,
            retries: 0,
        }));
        stats.cells_restored += 1;
    }
    // Lease-log done records carry the full payload (line + snapshot), so
    // they take priority over headline-only checkpoint restores.
    for (idx, report) in lease_loaded.done {
        if idx >= cells.len() {
            continue;
        }
        let already_restored = matches!(&states[idx], CellState::Finished(_));
        let snapshot = (observe && !report.snapshot.is_empty())
            .then(|| Snapshot::parse_canonical(&report.snapshot).ok())
            .flatten();
        states[idx] = CellState::Finished(Box::new(FinishedCell {
            outcome: CellOutcome::Remote {
                kind: report.kind,
                verified: report.verified,
                line: report.line.clone(),
                detail: report.detail,
            },
            line: report.line,
            snapshot,
            retries: 0,
        }));
        if !already_restored {
            stats.cells_restored += 1;
        }
    }

    // --- Wire up the coordinator ------------------------------------------
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| TdgraphError::from(io_err("binding coordinator listener", e)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| TdgraphError::from(io_err("resolving coordinator address", e)))?;

    let mut coord = Coordinator {
        cfg,
        cells: &cells,
        addr,
        states,
        workers: HashMap::new(),
        children: HashMap::new(),
        stats,
        fence: 0,
        next_spawn: 0,
        respawns_left: cfg.respawn_budget,
        write_errors,
        frontier,
        ckpt,
        leases,
        digest: expansion_digest(&cells),
    };
    // Flush any newly-restorable prefix (e.g. lease-restored cells the
    // previous incarnation accepted but never got into the checkpoint).
    coord.advance_checkpoint();

    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Event>();
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_handle = std::thread::spawn(move || accept_loop(&listener, &tx, &accept_shutdown));

    // Initial fleet (spawns don't draw on the respawn budget).
    let initial = (cfg.workers as usize).min(coord.remaining());
    for _ in 0..initial {
        coord.spawn_one(spawner);
    }

    let tick = (cfg.heartbeat / 2).clamp(Duration::from_millis(5), Duration::from_millis(100));
    while coord.remaining() > 0 {
        if coord.workers.is_empty() && coord.children.is_empty() {
            // The whole fleet is gone and the budget is spent: finish the
            // sweep inline so no cell is ever lost.
            for idx in 0..coord.states.len() {
                if !matches!(coord.states[idx], CellState::Finished(_)) {
                    let attempts = match coord.states[idx] {
                        CellState::Pending { attempts, .. }
                        | CellState::Leased { attempts, .. } => attempts,
                        CellState::Finished(_) => 0,
                    };
                    coord.run_inline(idx, attempts);
                }
            }
            break;
        }
        match rx.recv_timeout(tick) {
            Ok(event) => coord.handle(event, Instant::now()),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        coord.tick(Instant::now(), spawner);
    }

    // --- Drain and reap ----------------------------------------------------
    shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr); // wake the accept thread
    for w in coord.workers.values_mut() {
        let _ = send_line(&mut w.stream, &WorkerRequest::Drain.render());
    }
    let deadline = Instant::now() + Duration::from_secs(2);
    while !coord.children.is_empty() && Instant::now() < deadline {
        coord.children.retain(|_, c| !matches!(c.child.try_wait(), Ok(Some(_))));
        if !coord.children.is_empty() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    for (_, mut spawned) in coord.children.drain() {
        let _ = spawned.child.kill();
        let _ = spawned.child.wait();
    }
    drop(rx);
    let _ = accept_handle.join();

    // --- Assemble the report ----------------------------------------------
    write_errors += coord.write_errors;
    let stats = coord.stats;
    let mut results: Vec<CellResult> = Vec::with_capacity(cells.len());
    let mut snapshots: Vec<(usize, Snapshot)> = Vec::new();
    for (idx, state) in coord.states.into_iter().enumerate() {
        let CellState::Finished(f) = state else {
            // Unreachable by construction; keep the report total anyway.
            results.push(CellResult {
                cell: cells[idx].clone(),
                outcome: CellOutcome::Remote {
                    kind: OutcomeKind::Failed,
                    verified: false,
                    line: String::new(),
                    detail: "cell never finished".to_string(),
                },
                wall: Duration::ZERO,
                retries: 0,
            });
            continue;
        };
        if let Some(snapshot) = f.snapshot {
            snapshots.push((idx, snapshot));
        }
        results.push(CellResult {
            cell: cells[idx].clone(),
            outcome: f.outcome,
            wall: Duration::ZERO,
            retries: f.retries,
        });
    }
    let obs = observe.then(|| {
        let sharded = ShardedRecorder::new();
        for (idx, snapshot) in snapshots {
            sharded.absorb(idx as u64, snapshot);
        }
        sharded.merged()
    });
    let report = SweepReport {
        cells: results,
        checkpoint_write_errors: write_errors,
        torn_tails_dropped: report_torn,
        obs,
    };
    Ok(FleetOutcome { report, stats })
}

fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<Event>, shutdown: &AtomicBool) {
    static CONN_IDS: AtomicU64 = AtomicU64::new(1);
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn = CONN_IDS.fetch_add(1, Ordering::SeqCst);
        let tx = tx.clone();
        std::thread::spawn(move || reader_loop(stream, &tx, conn));
    }
}

fn reader_loop(stream: TcpStream, tx: &mpsc::Sender<Event>, conn: u64) {
    let mut worker_id: Option<u32> = None;
    let reader = BufReader::new(&stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let Ok(event) = WorkerEvent::parse(&line) else { continue };
        let forwarded = match event {
            WorkerEvent::Hello { worker, cells, digest, .. } => {
                worker_id = Some(worker);
                let Ok(clone) = stream.try_clone() else { break };
                tx.send(Event::Hello { worker, cells, digest, conn, stream: clone })
            }
            WorkerEvent::Beat { cell, fence, .. } => tx.send(Event::Beat { cell, fence }),
            WorkerEvent::Done { worker, fence, report } => {
                tx.send(Event::Done { worker, fence, report })
            }
        };
        if forwarded.is_err() {
            return; // scheduler gone — nothing left to notify
        }
    }
    if let Some(worker) = worker_id {
        let _ = tx.send(Event::Gone { worker, conn });
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

enum ConnEnd {
    Drained,
    Lost,
}

/// Runs the worker side of a fleet: connects to the coordinator (with
/// shared deterministic backoff), validates the spec expansion via the
/// hello digest, executes assigned cells behind the sweep fault boundary
/// while heartbeating, and ships results back. Obeys `directive` for
/// chaos runs. Returns cleanly when drained or when the coordinator stays
/// unreachable past the reconnect budget.
///
/// # Errors
///
/// Only local setup failures ([`FleetError::Io`]); a lost coordinator is
/// a clean exit, not an error.
pub fn run_worker(
    spec: &SweepSpec,
    connect: &str,
    worker_id: u32,
    heartbeat: Duration,
    directive: WorkerDirective,
) -> Result<(), TdgraphError> {
    let cells = spec.expand();
    let digest = expansion_digest(&cells);
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_millis(50),
        max_backoff: Duration::from_millis(400),
    };
    let mut backoff = Backoff::new(policy).with_jitter_seed(u64::from(worker_id) + 1);
    let mut cells_done: u32 = 0;
    loop {
        let stream = match TcpStream::connect(connect) {
            Ok(s) => s,
            Err(_) => {
                if backoff.wait(&SystemClock) {
                    continue;
                }
                return Ok(()); // coordinator gone for good: clean exit
            }
        };
        let reader = match stream.try_clone() {
            Ok(s) => BufReader::new(s),
            Err(e) => return Err(TdgraphError::from(io_err("cloning worker stream", e))),
        };
        let writer = Arc::new(Mutex::new(stream));
        let hello = WorkerEvent::Hello {
            worker: worker_id,
            pid: std::process::id(),
            cells: cells.len(),
            digest,
        };
        if send_line(&mut lock_ok(&writer), &hello.render()).is_err() {
            if backoff.wait(&SystemClock) {
                continue;
            }
            return Ok(());
        }

        // Heartbeat thread for this connection.
        let beat_state: Arc<Mutex<Option<(usize, u64)>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let hb_writer = Arc::clone(&writer);
        let hb_state = Arc::clone(&beat_state);
        let hb_stop = Arc::clone(&stop);
        let hb = std::thread::spawn(move || {
            while !hb_stop.load(Ordering::SeqCst) {
                std::thread::sleep(heartbeat);
                let lease = *lock_ok(&hb_state);
                if let Some((cell, fence)) = lease {
                    let msg = WorkerEvent::Beat { worker: worker_id, cell, fence }.render();
                    if send_line(&mut lock_ok(&hb_writer), &msg).is_err() {
                        return;
                    }
                }
            }
        });

        let end = serve_assignments(
            reader,
            &writer,
            &beat_state,
            &cells,
            worker_id,
            &mut cells_done,
            directive,
        );
        stop.store(true, Ordering::SeqCst);
        let _ = hb.join();
        match end {
            ConnEnd::Drained => return Ok(()),
            ConnEnd::Lost => {
                if backoff.wait(&SystemClock) {
                    continue;
                }
                return Ok(());
            }
        }
    }
}

fn serve_assignments(
    reader: BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    beat_state: &Arc<Mutex<Option<(usize, u64)>>>,
    cells: &[ExperimentCell],
    worker_id: u32,
    cells_done: &mut u32,
    directive: WorkerDirective,
) -> ConnEnd {
    for line in reader.lines() {
        let Ok(line) = line else { return ConnEnd::Lost };
        match WorkerRequest::parse(&line) {
            Ok(WorkerRequest::Run { cell, fence }) => {
                let Some(cell_spec) = cells.get(cell) else { return ConnEnd::Lost };
                if let WorkerDirective::Wedge { after_cells } = directive {
                    if *cells_done == after_cells {
                        // Wedge: hold the lease, never beat, never finish.
                        // Bounded so a worker orphaned by a killed
                        // coordinator cannot linger past the test run.
                        *lock_ok(beat_state) = None;
                        std::thread::sleep(Duration::from_secs(120));
                        std::process::abort();
                    }
                }
                *lock_ok(beat_state) = Some((cell, fence));
                let t0 = Instant::now();
                let outcome = execute_cell(cell_spec, &RegistryHandle::Default, None);
                let result =
                    CellResult { cell: cell_spec.clone(), outcome, wall: t0.elapsed(), retries: 0 };
                *lock_ok(beat_state) = None;
                if let WorkerDirective::Kill { after_cells, point: KillPoint::Before } = directive {
                    if *cells_done == after_cells {
                        std::process::abort(); // the work is lost on purpose
                    }
                }
                let report = CellReport::of(&result);
                let msg = WorkerEvent::Done { worker: worker_id, fence, report }.render();
                if send_line(&mut lock_ok(writer), &msg).is_err() {
                    return ConnEnd::Lost;
                }
                if let WorkerDirective::Kill { after_cells, point: KillPoint::After } = directive {
                    if *cells_done == after_cells {
                        std::process::abort(); // result shipped, worker dies
                    }
                }
                *cells_done += 1;
            }
            Ok(WorkerRequest::Drain) => return ConnEnd::Drained,
            Err(_) => {} // tolerate garbage on the control stream
        }
    }
    ConnEnd::Lost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepRunner, SweepSpec};
    use crate::EngineKind;
    use tdgraph_graph::datasets::{Dataset, Sizing};
    use tdgraph_sim::SimConfig;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::new()
            .datasets([Dataset::Amazon])
            .sizing(Sizing::Tiny)
            .engines([EngineKind::LigraO, EngineKind::TdGraphH])
            .tune(|o| {
                o.sim = SimConfig::small_test();
                o.batches = 1;
            })
    }

    #[test]
    fn fault_plan_directives_are_deterministic_and_budgeted() {
        let plan = ProcessFaultPlan::seeded(7, 2, 1);
        for idx in 0..6 {
            assert_eq!(plan.directive_for(idx), plan.directive_for(idx), "same seed, same call");
        }
        assert!(matches!(plan.directive_for(0), WorkerDirective::Kill { .. }));
        assert!(matches!(plan.directive_for(1), WorkerDirective::Kill { .. }));
        assert!(matches!(plan.directive_for(2), WorkerDirective::Wedge { .. }));
        assert_eq!(plan.directive_for(3), WorkerDirective::Clean);
        assert_eq!(plan.directive_for(99), WorkerDirective::Clean, "budget bounds the chaos");
        let other = ProcessFaultPlan::seeded(8, 2, 1);
        assert!((0..3).any(|i| other.directive_for(i) != plan.directive_for(i)
            || ProcessFaultPlan::seeded(9, 2, 1).directive_for(i) != plan.directive_for(i)));
    }

    #[test]
    fn wire_messages_round_trip_with_hostile_strings() {
        let report = CellReport {
            cell: 7,
            kind: OutcomeKind::Panicked,
            verified: false,
            detail: "quote\" slash\\ nl\n tab\t done".to_string(),
            line: "{\"cell\":7,\"dataset\":\"AM\",\"outcome\":\"panicked\"}".to_string(),
            snapshot:
                "{\"counters\":{},\"gauges\":{},\"labels\":{},\"phases\":{},\"histograms\":{}}"
                    .to_string(),
        };
        let done = WorkerEvent::Done { worker: 3, fence: 42, report: report.clone() };
        assert_eq!(WorkerEvent::parse(&done.render()).unwrap(), done);

        let hello = WorkerEvent::Hello { worker: 3, pid: 999, cells: 8, digest: 0xDEAD_BEEF };
        assert_eq!(WorkerEvent::parse(&hello.render()).unwrap(), hello);
        let beat = WorkerEvent::Beat { worker: 3, cell: 7, fence: 42 };
        assert_eq!(WorkerEvent::parse(&beat.render()).unwrap(), beat);

        let run = WorkerRequest::Run { cell: 7, fence: 42 };
        assert_eq!(WorkerRequest::parse(&run.render()).unwrap(), run);
        assert_eq!(
            WorkerRequest::parse(&WorkerRequest::Drain.render()).unwrap(),
            WorkerRequest::Drain
        );

        let lease = LeaseRecord::Lease { cell: 7, fence: 42, worker: 3, attempt: 1 };
        assert_eq!(LeaseRecord::parse(&lease.render()).unwrap(), lease);
        let done_rec = LeaseRecord::Done { fence: 42, report };
        assert_eq!(LeaseRecord::parse(&done_rec.render()).unwrap(), done_rec);
        let reclaim = LeaseRecord::Reclaim { cell: 7, fence: 42, reason: "expired" };
        assert_eq!(LeaseRecord::parse(&reclaim.render()).unwrap(), reclaim);
    }

    #[test]
    fn lease_log_tolerates_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!(
            "tdgraph-fleet-leases-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl.leases");
        let report = CellReport {
            cell: 2,
            kind: OutcomeKind::Completed,
            verified: true,
            detail: String::new(),
            line: "{\"cell\":2}".to_string(),
            snapshot: String::new(),
        };
        let done = LeaseRecord::Done { fence: 5, report: report.clone() }.render();
        let lease = LeaseRecord::Lease { cell: 3, fence: 6, worker: 0, attempt: 0 }.render();
        std::fs::write(&path, format!("{done}\n{lease}\n{}", &done[..20])).unwrap();

        let loaded = load_lease_log(&path).unwrap();
        assert_eq!(loaded.torn_tails_dropped, 1);
        assert_eq!(loaded.done.len(), 1);
        assert_eq!(loaded.done.get(&2), Some(&report));
        assert_eq!(loaded.clean_bytes, (done.len() + lease.len() + 2) as u64);

        // Resume truncates the torn bytes so new appends stay parseable.
        let log = LeaseLog::resume(path.clone(), &loaded).unwrap();
        log.append(&LeaseRecord::Reclaim { cell: 3, fence: 6, reason: "dead" }).unwrap();
        let reloaded = load_lease_log(&path).unwrap();
        assert_eq!(reloaded.torn_tails_dropped, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn coordinator_lock_takes_over_only_dead_holders() {
        let dir = std::env::temp_dir().join(format!(
            "tdgraph-fleet-lock-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl.lock");
        let _ = std::fs::remove_file(&path);

        // Live holder (this process): second acquire must fail.
        let lock = CoordinatorLock::acquire(&path).unwrap();
        assert!(matches!(CoordinatorLock::acquire(&path), Err(FleetError::Locked { .. })));
        drop(lock);
        assert!(!path.exists(), "drop releases the lock");

        // Dead holder: a child that already exited.
        let mut child = std::process::Command::new("true")
            .spawn()
            .or_else(|_| std::process::Command::new("/bin/true").spawn())
            .unwrap();
        let dead_pid = child.id();
        child.wait().unwrap();
        std::fs::write(&path, format!("{dead_pid}\n")).unwrap();
        let taken = CoordinatorLock::acquire(&path).unwrap();
        drop(taken);

        // Garbage content is stale too.
        std::fs::write(&path, "not-a-pid\n").unwrap();
        let taken = CoordinatorLock::acquire(&path).unwrap();
        drop(taken);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn worker_launch_args_cover_every_directive() {
        let base = WorkerLaunch {
            worker_id: 4,
            connect: "127.0.0.1:9999".parse().unwrap(),
            heartbeat: Duration::from_millis(25),
            directive: WorkerDirective::Clean,
        };
        let args = base.to_args();
        assert_eq!(
            args,
            vec![
                "--worker",
                "--connect",
                "127.0.0.1:9999",
                "--worker-id",
                "4",
                "--heartbeat-ms",
                "25"
            ]
        );
        let kill = WorkerLaunch {
            directive: WorkerDirective::Kill { after_cells: 1, point: KillPoint::Before },
            ..base.clone()
        };
        let args = kill.to_args();
        assert!(args.windows(2).any(|w| w == ["--die-after-cells", "1"]));
        assert!(args.windows(2).any(|w| w == ["--die-point", "before"]));
        let wedge = WorkerLaunch { directive: WorkerDirective::Wedge { after_cells: 0 }, ..base };
        assert!(wedge.to_args().windows(2).any(|w| w == ["--wedge-after-cells", "0"]));
    }

    #[test]
    fn expansion_digest_tracks_the_grid() {
        let a = expansion_digest(&tiny_spec().expand());
        let b = expansion_digest(&tiny_spec().expand());
        assert_eq!(a, b, "same spec, same digest");
        let c = expansion_digest(&tiny_spec().seeds([1, 2]).expand());
        assert_ne!(a, c, "different grid, different digest");
    }

    /// A spawner that always fails: the fleet must degrade to inline
    /// execution and still produce the serial runner's exact bytes.
    struct NoSpawner;
    impl WorkerSpawner for NoSpawner {
        fn spawn(&mut self, _launch: &WorkerLaunch) -> std::io::Result<Child> {
            Err(std::io::Error::other("spawning disabled"))
        }
    }

    #[test]
    fn fleet_degrades_to_inline_when_no_worker_ever_spawns() {
        let spec = tiny_spec();
        let serial = SweepRunner::new().threads(1).observe(true).run(&spec);

        let cfg = FleetConfig::default().workers(2).observe(true);
        let outcome = run_fleet(&spec, &cfg, &mut NoSpawner).unwrap();

        assert_eq!(
            outcome.report.canonical_lines(),
            serial.canonical_lines(),
            "inline degradation must preserve byte identity"
        );
        assert_eq!(
            outcome.report.obs.as_ref().map(Snapshot::canonical_json_line),
            serial.obs.as_ref().map(Snapshot::canonical_json_line),
            "merged snapshots must match"
        );
        assert_eq!(outcome.stats.cells_inline, spec.expand().len() as u64);
        assert!(outcome.stats.spawn_failures >= 1);
        assert_eq!(outcome.stats.cells_remote, 0);
        assert!(outcome.report.cells.iter().all(CellResult::is_verified));
    }
}
