//! The unified error type of the facade crate.
//!
//! Every fallible layer below — the graph substrate, the engine harness,
//! the machine model, and the sweep checkpoint store — converts into
//! [`TdgraphError`] via `From`, so `?` composes across the whole stack.
//! The sweep runner records these as per-cell
//! [`CellOutcome::Failed`](crate::sweep::CellOutcome::Failed) values
//! instead of letting any one cell abort a worker thread.

use std::error::Error;
use std::fmt;

use tdgraph_engines::error::EngineError;
use tdgraph_graph::error::GraphError;
use tdgraph_sim::SimError;

use crate::checkpoint::CheckpointError;
use crate::fleet::FleetError;

/// Any error produced by the tdgraph experiment stack.
#[derive(Debug)]
pub enum TdgraphError {
    /// Workload preparation or update application failed.
    Graph(GraphError),
    /// Engine resolution or the streaming harness failed.
    Engine(EngineError),
    /// The machine configuration is inconsistent.
    Sim(SimError),
    /// Reading or writing a sweep checkpoint failed.
    Checkpoint(CheckpointError),
    /// Multi-process fleet coordination failed.
    Fleet(FleetError),
}

impl fmt::Display for TdgraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdgraphError::Graph(e) => write!(f, "{e}"),
            TdgraphError::Engine(e) => write!(f, "{e}"),
            TdgraphError::Sim(e) => write!(f, "{e}"),
            TdgraphError::Checkpoint(e) => write!(f, "{e}"),
            TdgraphError::Fleet(e) => write!(f, "{e}"),
        }
    }
}

impl Error for TdgraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TdgraphError::Graph(e) => Some(e),
            TdgraphError::Engine(e) => Some(e),
            TdgraphError::Sim(e) => Some(e),
            TdgraphError::Checkpoint(e) => Some(e),
            TdgraphError::Fleet(e) => Some(e),
        }
    }
}

impl From<GraphError> for TdgraphError {
    fn from(e: GraphError) -> Self {
        TdgraphError::Graph(e)
    }
}

impl From<EngineError> for TdgraphError {
    fn from(e: EngineError) -> Self {
        TdgraphError::Engine(e)
    }
}

impl From<SimError> for TdgraphError {
    fn from(e: SimError) -> Self {
        TdgraphError::Sim(e)
    }
}

impl From<CheckpointError> for TdgraphError {
    fn from(e: CheckpointError) -> Self {
        TdgraphError::Checkpoint(e)
    }
}

impl From<FleetError> for TdgraphError {
    fn from(e: FleetError) -> Self {
        TdgraphError::Fleet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_graph::io::LoadError;

    #[test]
    fn every_layer_converts_with_source() {
        let g: TdgraphError = GraphError::Load(LoadError::TooManyVertices {
            line: 1,
            id: 1 << 33,
            content: "8589934592 2".into(),
        })
        .into();
        assert!(matches!(g, TdgraphError::Graph(_)));
        assert!(g.source().is_some());

        let e: TdgraphError = EngineError::UnknownEngine { key: "x".into(), known: vec![] }.into();
        assert!(matches!(e, TdgraphError::Engine(_)));

        let s: TdgraphError =
            SimError::InvalidConfig { field: "cores", reason: "zero".into() }.into();
        assert!(matches!(s, TdgraphError::Sim(_)));

        let c: TdgraphError = CheckpointError::Parse { line: 3, reason: "bad json".into() }.into();
        assert!(matches!(c, TdgraphError::Checkpoint(_)));
        assert!(c.to_string().contains("line 3"));

        let f: TdgraphError = FleetError::Protocol { detail: "bad hello".into() }.into();
        assert!(matches!(f, TdgraphError::Fleet(_)));
        assert!(f.to_string().contains("bad hello"));
    }
}
