//! Plain-text reporting helpers for experiment results.
//!
//! The experiments binary and the examples print the same row format the
//! paper's figures plot: per-engine cycles (normalized to a baseline),
//! time breakdown, update counts, and memory-system metrics.

use tdgraph_engines::metrics::RunMetrics;

/// One row of a comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Engine label.
    pub engine: String,
    /// Total cycles.
    pub cycles: u64,
    /// Execution time normalized to the table's baseline.
    pub normalized_time: f64,
    /// Propagation share of the time.
    pub propagation_share: f64,
    /// State updates normalized to the baseline.
    pub normalized_updates: f64,
    /// Useless-update ratio.
    pub useless_ratio: f64,
    /// Useful fraction of fetched state words.
    pub useful_state_ratio: f64,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
}

/// Builds comparison rows, normalizing time and updates to the first
/// metrics entry (the baseline).
///
/// # Panics
///
/// Panics if `all` is empty.
#[must_use]
pub fn build_rows(all: &[&RunMetrics]) -> Vec<Row> {
    let Some(base) = all.first() else {
        panic!("build_rows needs at least one run to normalize against");
    };
    all.iter()
        .map(|m| Row {
            engine: m.engine.clone(),
            cycles: m.cycles,
            normalized_time: m.cycles as f64 / base.cycles.max(1) as f64,
            propagation_share: if m.cycles == 0 {
                0.0
            } else {
                m.propagation_cycles as f64 / m.cycles as f64
            },
            normalized_updates: m.state_updates as f64 / base.state_updates.max(1) as f64,
            useless_ratio: m.useless_update_ratio(),
            useful_state_ratio: m.useful_state_ratio,
            llc_miss_rate: m.llc_miss_rate,
            dram_bytes: m.dram_bytes,
        })
        .collect()
}

/// Renders rows as an aligned text table.
#[must_use]
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<18} {:>12} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>12}\n",
        "engine",
        "cycles",
        "norm.time",
        "prop%",
        "norm.upd",
        "useless%",
        "useful%",
        "llcmiss%",
        "dram_bytes"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>12} {:>9.3} {:>6.1}% {:>9.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>12}\n",
            r.engine,
            r.cycles,
            r.normalized_time,
            100.0 * r.propagation_share,
            r.normalized_updates,
            100.0 * r.useless_ratio,
            100.0 * r.useful_state_ratio,
            100.0 * r.llc_miss_rate,
            r.dram_bytes
        ));
    }
    out
}

/// Renders rows as CSV (header + one line per row) for spreadsheet or
/// plotting pipelines.
#[must_use]
pub fn render_csv(rows: &[Row]) -> String {
    let mut out = String::from(
        "engine,cycles,normalized_time,propagation_share,normalized_updates,\
         useless_ratio,useful_state_ratio,llc_miss_rate,dram_bytes\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            r.engine,
            r.cycles,
            r.normalized_time,
            r.propagation_share,
            r.normalized_updates,
            r.useless_ratio,
            r.useful_state_ratio,
            r.llc_miss_rate,
            r.dram_bytes
        ));
    }
    out
}

/// Formats a speedup ("×") comparison of `m` against `baseline`.
#[must_use]
pub fn speedup_line(m: &RunMetrics, baseline: &RunMetrics) -> String {
    format!(
        "{} is {:.2}x vs {} ({} vs {} cycles)",
        m.engine,
        m.speedup_over(baseline),
        baseline.engine,
        m.cycles,
        baseline.cycles
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(engine: &str, cycles: u64, updates: u64) -> RunMetrics {
        RunMetrics {
            engine: engine.to_string(),
            cycles,
            propagation_cycles: cycles / 2,
            other_cycles: cycles - cycles / 2,
            state_updates: updates,
            useful_updates: updates / 2,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn rows_normalize_to_first_entry() {
        let a = metrics("base", 1000, 100);
        let b = metrics("fast", 250, 25);
        let rows = build_rows(&[&a, &b]);
        assert_eq!(rows[0].normalized_time, 1.0);
        assert_eq!(rows[1].normalized_time, 0.25);
        assert_eq!(rows[1].normalized_updates, 0.25);
    }

    #[test]
    fn table_renders_every_row() {
        let a = metrics("base", 1000, 100);
        let b = metrics("fast", 250, 25);
        let rows = build_rows(&[&a, &b]);
        let table = render_table("demo", &rows);
        assert!(table.contains("demo"));
        assert!(table.contains("base"));
        assert!(table.contains("fast"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn speedup_line_reports_ratio() {
        let a = metrics("base", 1000, 100);
        let b = metrics("fast", 250, 25);
        assert!(speedup_line(&b, &a).contains("4.00x"));
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let a = metrics("base", 1000, 100);
        let b = metrics("fast", 250, 25);
        let csv = render_csv(&build_rows(&[&a, &b]));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("engine,cycles"));
        assert!(lines[1].starts_with("base,1000,"));
        assert!(lines[2].starts_with("fast,250,0.25"));
    }
}
