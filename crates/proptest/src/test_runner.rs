//! Test configuration, RNG, and failure reporting for the shim.

/// Per-`proptest!` block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    /// 64 cases, overridable globally through the `PROPTEST_CASES`
    /// environment variable (mirroring the real crate, so CI can scale
    /// property coverage without touching sources). An explicit
    /// `with_cases` in a `proptest_config` attribute is not affected.
    fn default() -> Self {
        Self { cases: cases_from(std::env::var("PROPTEST_CASES").ok().as_deref()) }
    }
}

const DEFAULT_CASES: u32 = 64;

/// Parses a `PROPTEST_CASES` value; unset, unparsable, or zero falls back
/// to [`DEFAULT_CASES`].
fn cases_from(var: Option<&str>) -> u32 {
    var.and_then(|s| s.trim().parse::<u32>().ok()).filter(|&c| c > 0).unwrap_or(DEFAULT_CASES)
}

/// Derives the deterministic seed for a test from its fully-qualified
/// name (FNV-1a), unless `PROPTEST_SHIM_SEED` overrides it globally.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return seed;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic RNG driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Failure annotator: prints the failing case's inputs when the test body
/// panics (the shim's substitute for shrinking).
pub struct CaseGuard {
    info: Option<String>,
}

impl CaseGuard {
    /// Arms the guard with a description of the current case.
    #[must_use]
    pub fn new(info: String) -> Self {
        Self { info: Some(info) }
    }

    /// Disarms the guard: the case passed.
    pub fn disarm(mut self) {
        self.info = None;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if let Some(info) = self.info.take() {
            if std::thread::panicking() {
                eprintln!("{info}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_differ_by_test_name() {
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn proptest_cases_env_values_parse_with_a_safe_fallback() {
        assert_eq!(cases_from(None), DEFAULT_CASES);
        assert_eq!(cases_from(Some("512")), 512);
        assert_eq!(cases_from(Some(" 16 ")), 16);
        assert_eq!(cases_from(Some("0")), DEFAULT_CASES, "zero cases would skip every test");
        assert_eq!(cases_from(Some("lots")), DEFAULT_CASES);
        assert_eq!(cases_from(Some("-3")), DEFAULT_CASES);
    }

    #[test]
    fn next_below_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for bound in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }
}
