//! Collection strategies (`proptest::collection` subset).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length falls in `len` and whose elements come
/// from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range {len:?}");
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.next_below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
