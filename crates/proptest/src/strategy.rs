//! Value-generation strategies (the shim's analog of `proptest::strategy`).

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A deterministic value generator.
///
/// Unlike real proptest there is no shrinking: `sample` draws one value
/// from the test's RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps values for which `f` returns `Some`, retrying otherwise.
    ///
    /// Gives up (panics, citing `reason`) after 10 000 consecutive
    /// rejections — a sign the filter is far too strict.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Keeps values for which `f` returns `true`, retrying otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

const MAX_REJECTS: usize = 10_000;

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected {MAX_REJECTS} candidates: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected {MAX_REJECTS} candidates: {}", self.reason);
    }
}

/// Weighted union of strategies yielding the same value type (built by
/// the [`prop_oneof!`](crate::prop_oneof) macro, mirroring proptest's
/// `TupleUnion`). Arms are boxed so heterogeneous strategy types can
/// share one union; an arm is picked with probability weight/total.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// When the weights sum to zero (no arm could ever be picked).
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prop_oneof({} arms)", self.arms.len())
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_below(self.total);
        for (weight, strategy) in &self.arms {
            if pick < u64::from(*weight) {
                return strategy.sample(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("pick below total weight always lands in an arm")
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integers samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + std::fmt::Debug {
    /// Converts to the common `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn to_u64(self) -> u64 { self as u64 }
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_sign_loss,
                clippy::cast_possible_wrap
            )]
            fn from_u64(v: u64) -> $t { v as $t }
        }
    )*};
}
sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy {lo}..{hi}");
        T::from_u64(lo + rng.next_below(hi - lo))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
