//! A minimal, fully offline property-testing shim exposing the subset of
//! the `proptest` crate's API this repository uses.
//!
//! The build environment has no network access and its registry mirror
//! does not carry the real `proptest`, so the workspace resolves the
//! dependency to this path crate instead (see the root `Cargo.toml`).
//! Semantics:
//!
//! * generation is **deterministic**: every test function derives its RNG
//!   seed from its fully-qualified name, so runs are reproducible across
//!   processes and thread schedules (override with `PROPTEST_SHIM_SEED`);
//! * failing cases are reported with their case number and seed but are
//!   **not shrunk** — the input values are printed instead;
//! * `prop_assert!`/`prop_assert_eq!` panic like their `std` counterparts.
//!
//! Swapping the real `proptest` back in requires only restoring the
//! registry dependency; the test sources compile against either.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `proptest!` test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the two forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0u64..4, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __rng = $crate::test_runner::TestRng::new(__seed);
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let __info = ::std::format!(
                        concat!(
                            "[proptest-shim {} case {}/{} seed {:#x}]",
                            $(" ", stringify!($arg), " = {:?}",)*
                        ),
                        stringify!($name), __case, __cfg.cases, __seed,
                        $(&$arg,)*
                    );
                    let __guard = $crate::test_runner::CaseGuard::new(__info);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Picks one of several same-valued strategies, optionally weighted
/// (`weight => strategy`), mirroring `proptest::prop_oneof!`. Unweighted
/// arms are uniform.
#[macro_export]
macro_rules! prop_oneof {
    ( $($weight:expr => $strategy:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight, ::std::boxed::Box::new($strategy) as _)),+
        ])
    };
    ( $($strategy:expr),+ $(,)? ) => {
        $crate::prop_oneof![$(1u32 => $strategy),+]
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_filter_map_compose(
            pair in (0u32..8, 0u32..8).prop_filter_map("distinct", |(a, b)| {
                (a != b).then_some((a, b))
            }),
            flag in any::<bool>(),
        ) {
            prop_assert_ne!(pair.0, pair.1);
            let _ = flag;
        }

        #[test]
        fn oneof_arms_all_fire_and_respect_bounds(
            v in crate::collection::vec(
                prop_oneof![3 => 0u32..8, 1 => 100u32..108],
                32..64,
            )
        ) {
            prop_assert!(v.iter().all(|&x| x < 8u32 || (100u32..108).contains(&x)));
            prop_assert!(v.iter().any(|&x| x < 8u32), "heavy arm must fire");
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(0u64..100, 2..9)
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        let s = crate::collection::vec(0u64..1000, 0..50);
        for _ in 0..32 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = crate::test_runner::TestRng::new(1);
        assert_eq!(Strategy::sample(&Just(7u8), &mut rng), 7);
    }
}
