//! The execution-engine abstraction.

use tdgraph_graph::types::VertexId;

use crate::ctx::BatchCtx;

/// An execution engine: given the seeded affected set of a batch, drives
/// the propagation to the new fixpoint with its own schedule, charging all
/// work to the machine through the context.
///
/// Engines must leave `ctx.state` at the same fixpoint the from-scratch
/// oracle computes (monotonic: exactly; accumulative: within ε tolerance) —
/// the harness verifies this after every run.
pub trait Engine {
    /// Display name (matches the paper's labels).
    fn name(&self) -> &'static str;

    /// Processes one batch, starting from the seeded `affected` set.
    /// Implementations are responsible for calling
    /// `ctx.machine.end_phase(PhaseKind::Propagation)` at their sync points;
    /// the harness closes any remaining open phase afterwards.
    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Engine for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn process_batch(&mut self, _ctx: &mut BatchCtx<'_>, _affected: &[VertexId]) {}
    }

    #[test]
    fn trait_is_object_safe() {
        let e: Box<dyn Engine> = Box::new(Nop);
        assert_eq!(e.name(), "nop");
    }
}
