//! Batch execution context: typed, charged access to graph data.
//!
//! [`BatchCtx`] bundles the new snapshot, the mutable algorithm state, the
//! simulated machine, and the chunk→core ownership map. Engines perform all
//! graph work through its helpers so every data-structure touch is charged
//! to the right core/actor and every state write is counted for the
//! redundancy metrics.

use tdgraph_algos::incremental::AlgoState;
use tdgraph_algos::tap::{AccessEvent, AccessTap};
use tdgraph_algos::traits::Algo;
use tdgraph_graph::csr::Csr;
use tdgraph_graph::partition::{owner_of, Chunk};
use tdgraph_graph::types::{VertexId, Weight};
use tdgraph_obs::{keys, RecorderHandle};
use tdgraph_sim::address::Region;
use tdgraph_sim::exec::ExecConfig;
use tdgraph_sim::machine::Machine;
use tdgraph_sim::stats::{Actor, Op};

use crate::metrics::UpdateCounters;

/// Execution context for one batch.
#[derive(Debug)]
pub struct BatchCtx<'a> {
    /// The simulated machine.
    pub machine: &'a mut Machine,
    /// New snapshot (post-batch).
    pub graph: &'a Csr,
    /// Transpose of the new snapshot.
    pub transpose: &'a Csr,
    /// The algorithm being run.
    pub algo: Algo,
    /// Mutable per-vertex algorithm state.
    pub state: &'a mut AlgoState,
    /// Vertex-range chunks (index = chunk id; chunk id % cores = core).
    pub chunks: &'a [Chunk],
    /// Update counters for the redundancy metrics.
    pub counters: &'a mut UpdateCounters,
    /// Outgoing mass per vertex (accumulative algorithms).
    pub out_mass: &'a [f32],
    /// Live observability handle. [`RecorderHandle::disabled`] when the run
    /// is untraced, in which case every emission is one predictable branch.
    pub obs: RecorderHandle<'a>,
    /// How the machine executes this batch. Engines need no special
    /// handling — under a sharded [`ExecConfig`] the machine records
    /// their accesses for replay transparently — but the configuration is
    /// surfaced here so engines (and tests) can assert or report on it.
    pub exec: ExecConfig,
}

impl<'a> BatchCtx<'a> {
    /// Core owning vertex `v` (its chunk dealt round-robin over cores).
    ///
    /// Every vertex of the snapshot must fall inside a chunk; an unowned
    /// vertex means the partition is stale or `v` is out of range, which
    /// would silently skew per-core attribution — debug builds panic
    /// instead, release builds charge core 0.
    #[must_use]
    pub fn owner(&self, v: VertexId) -> usize {
        let cores = self.machine.cores();
        match owner_of(self.chunks, v) {
            Some(chunk) => chunk % cores,
            None => {
                debug_assert!(
                    false,
                    "vertex {v} is outside every chunk ({} chunks); \
                     partition does not cover the snapshot",
                    self.chunks.len()
                );
                0
            }
        }
    }

    /// Reads `v`'s state.
    pub fn read_state(&mut self, core: usize, actor: Actor, v: VertexId) -> f32 {
        self.machine.access(core, actor, Region::VertexStates, u64::from(v), false);
        self.state.states[v as usize]
    }

    /// Counts a vertex-state write for the redundancy metrics and forwards
    /// it to the live observability stream. Engines that write states
    /// outside [`BatchCtx::write_state`] call this directly.
    pub fn note_state_write(&mut self, v: VertexId) {
        self.counters.record_write(v);
        self.obs.counter(keys::STATE_WRITES, 1);
    }

    /// Counts `n` processed edges and forwards them to the live
    /// observability stream.
    pub fn note_edges(&mut self, n: u64) {
        self.counters.record_edges(n);
        self.obs.counter(keys::EDGES_PROCESSED, n);
    }

    /// Writes `v`'s state and counts the update.
    pub fn write_state(&mut self, core: usize, actor: Actor, v: VertexId, value: f32) {
        self.machine.access(core, actor, Region::VertexStates, u64::from(v), true);
        self.machine.compute(core, actor, Op::StateUpdate, 1);
        self.state.states[v as usize] = value;
        self.note_state_write(v);
    }

    /// Reads `v`'s residual (accumulative) — stored in the aux region.
    pub fn read_residual(&mut self, core: usize, actor: Actor, v: VertexId) -> f32 {
        self.machine.access(core, actor, Region::AuxMeta, u64::from(v), false);
        self.state.residuals[v as usize]
    }

    /// Writes `v`'s residual.
    pub fn write_residual(&mut self, core: usize, actor: Actor, v: VertexId, value: f32) {
        self.machine.access(core, actor, Region::AuxMeta, u64::from(v), true);
        self.state.residuals[v as usize] = value;
    }

    /// Reads `v`'s dependency parent.
    pub fn read_parent(&mut self, core: usize, actor: Actor, v: VertexId) -> VertexId {
        self.machine.access(core, actor, Region::AuxMeta, u64::from(v), false);
        self.state.parents[v as usize]
    }

    /// Writes `v`'s dependency parent.
    pub fn write_parent(&mut self, core: usize, actor: Actor, v: VertexId, p: VertexId) {
        self.machine.access(core, actor, Region::AuxMeta, u64::from(v), true);
        self.state.parents[v as usize] = p;
    }

    /// Reads the offset pair of `v` (one 8 B `Offset_Array` entry).
    pub fn read_offsets(&mut self, core: usize, actor: Actor, v: VertexId) -> (usize, usize) {
        self.machine.access(core, actor, Region::OffsetArray, u64::from(v), false);
        self.graph.neighbor_range(v)
    }

    /// Reads the offset pair of `v` in the transpose.
    pub fn read_offsets_in(&mut self, core: usize, actor: Actor, v: VertexId) -> (usize, usize) {
        self.machine.access(core, actor, Region::OffsetArray, u64::from(v), false);
        self.transpose.neighbor_range(v)
    }

    /// Reads the neighbor and weight at flat edge index `i` of the forward
    /// graph, charging the neighbor-array and weight-array accesses.
    pub fn read_edge(&mut self, core: usize, actor: Actor, i: usize) -> (VertexId, Weight) {
        self.machine.access(core, actor, Region::NeighborArray, i as u64, false);
        self.machine.access(core, actor, Region::WeightArray, i as u64, false);
        self.note_edges(1);
        self.machine.compute(core, actor, Op::EdgeProcess, 1);
        self.graph.edge_at(i)
    }

    /// Like [`BatchCtx::read_edge`] but over the transpose (pull engines).
    pub fn read_edge_in(&mut self, core: usize, actor: Actor, i: usize) -> (VertexId, Weight) {
        self.machine.access(core, actor, Region::NeighborArray, i as u64, false);
        self.machine.access(core, actor, Region::WeightArray, i as u64, false);
        self.note_edges(1);
        self.machine.compute(core, actor, Op::EdgeProcess, 1);
        self.transpose.edge_at(i)
    }

    /// Charges a frontier push/pop.
    pub fn frontier_op(&mut self, core: usize, actor: Actor, v: VertexId) {
        self.machine.access(core, actor, Region::Frontier, u64::from(v), true);
        self.machine.compute(core, actor, Op::FrontierOp, 1);
    }

    /// Reads the active bit of `v`.
    pub fn read_active(&mut self, core: usize, actor: Actor, v: VertexId) {
        self.machine.access(core, actor, Region::ActiveVertices, u64::from(v), false);
    }

    /// Writes the active bit of `v`.
    pub fn write_active(&mut self, core: usize, actor: Actor, v: VertexId) {
        self.machine.access(core, actor, Region::ActiveVertices, u64::from(v), true);
    }

    /// Charges per-vertex scheduling overhead.
    pub fn schedule_op(&mut self, core: usize, actor: Actor, n: u64) {
        self.machine.compute(core, actor, Op::ScheduleOp, n);
    }

    /// Charges a data-dependent branch misprediction.
    pub fn branch_miss(&mut self, core: usize, actor: Actor, n: u64) {
        self.machine.compute(core, actor, Op::BranchMiss, n);
    }

    /// Charges a hash probe.
    pub fn hash_probe(&mut self, core: usize, actor: Actor, n: u64) {
        self.machine.compute(core, actor, Op::HashProbe, n);
    }
}

/// Forwards the shared seeding kernels' [`AccessEvent`]s into the machine,
/// attributing vertex events to the owning core and edge events to the most
/// recent vertex's core. Seeding runs on the core timeline.
#[derive(Debug)]
pub struct MachineTap<'a> {
    machine: &'a mut Machine,
    chunks: &'a [Chunk],
    last_core: usize,
}

impl<'a> MachineTap<'a> {
    /// Creates a tap over `machine` with the given ownership map.
    #[must_use]
    pub fn new(machine: &'a mut Machine, chunks: &'a [Chunk]) -> Self {
        Self { machine, chunks, last_core: 0 }
    }

    fn core_of(&mut self, v: VertexId) -> usize {
        let cores = self.machine.cores();
        let core = match owner_of(self.chunks, v) {
            Some(chunk) => chunk % cores,
            None => 0,
        };
        self.last_core = core;
        core
    }
}

impl AccessTap for MachineTap<'_> {
    fn touch(&mut self, event: AccessEvent) {
        match event {
            AccessEvent::ReadOffsets(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::OffsetArray, u64::from(v), false);
            }
            AccessEvent::ReadNeighbor(i) => {
                self.machine.access(self.last_core, Actor::Core, Region::NeighborArray, i, false);
            }
            AccessEvent::ReadWeight(i) => {
                self.machine.access(self.last_core, Actor::Core, Region::WeightArray, i, false);
            }
            AccessEvent::ReadState(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::VertexStates, u64::from(v), false);
            }
            AccessEvent::WriteState(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::VertexStates, u64::from(v), true);
                self.machine.compute(c, Actor::Core, Op::StateUpdate, 1);
            }
            AccessEvent::ReadAux(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::AuxMeta, u64::from(v), false);
            }
            AccessEvent::WriteAux(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::AuxMeta, u64::from(v), true);
            }
            AccessEvent::ReadActive(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::ActiveVertices, u64::from(v), false);
            }
            AccessEvent::WriteActive(v) => {
                let c = self.core_of(v);
                self.machine.access(c, Actor::Core, Region::ActiveVertices, u64::from(v), true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_algos::scratch::solve;
    use tdgraph_graph::partition::partition_by_edges;
    use tdgraph_graph::types::Edge;
    use tdgraph_sim::address::AddressSpace;
    use tdgraph_sim::config::SimConfig;

    fn fixture() -> (Csr, Csr, AlgoState, Machine, Vec<Chunk>) {
        let g = Csr::from_edges(
            8,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 1.0),
                Edge::new(2, 3, 1.0),
                Edge::new(4, 5, 1.0),
            ],
        );
        let t = g.transpose();
        let state = AlgoState::from_solution(solve(&Algo::sssp(0), &g), 8);
        let layout = AddressSpace::layout(8, 4, 4);
        let machine = Machine::new(SimConfig::small_test(), layout);
        let chunks = partition_by_edges(&g, 4);
        (g, t, state, machine, chunks)
    }

    #[test]
    fn read_write_state_roundtrip_and_count() {
        let (g, t, mut state, mut machine, chunks) = fixture();
        let mut counters = UpdateCounters::new(8);
        let mass = vec![0.0; 8];
        let mut ctx = BatchCtx {
            machine: &mut machine,
            graph: &g,
            transpose: &t,
            algo: Algo::sssp(0),
            state: &mut state,
            chunks: &chunks,
            counters: &mut counters,
            out_mass: &mass,
            exec: ExecConfig::serial(),
            obs: RecorderHandle::disabled(),
        };
        assert_eq!(ctx.read_state(0, Actor::Core, 1), 1.0);
        ctx.write_state(0, Actor::Core, 1, 9.0);
        assert_eq!(ctx.read_state(0, Actor::Core, 1), 9.0);
        assert_eq!(ctx.counters.total_writes(), 1);
        assert!(ctx.machine.stats().accesses >= 3);
    }

    #[test]
    fn read_edge_returns_neighbor_and_counts() {
        let (g, t, mut state, mut machine, chunks) = fixture();
        let mut counters = UpdateCounters::new(8);
        let mass = vec![0.0; 8];
        let mut ctx = BatchCtx {
            machine: &mut machine,
            graph: &g,
            transpose: &t,
            algo: Algo::sssp(0),
            state: &mut state,
            chunks: &chunks,
            counters: &mut counters,
            out_mass: &mass,
            exec: ExecConfig::serial(),
            obs: RecorderHandle::disabled(),
        };
        let (lo, _) = ctx.read_offsets(0, Actor::Core, 0);
        let (nbr, w) = ctx.read_edge(0, Actor::Core, lo);
        assert_eq!((nbr, w), (1, 1.0));
        assert_eq!(ctx.counters.edges_processed(), 1);
    }

    #[test]
    fn owner_maps_every_vertex_to_a_core() {
        let (g, t, mut state, mut machine, chunks) = fixture();
        let mut counters = UpdateCounters::new(8);
        let mass = vec![0.0; 8];
        let ctx = BatchCtx {
            machine: &mut machine,
            graph: &g,
            transpose: &t,
            algo: Algo::sssp(0),
            state: &mut state,
            chunks: &chunks,
            counters: &mut counters,
            out_mass: &mass,
            exec: ExecConfig::serial(),
            obs: RecorderHandle::disabled(),
        };
        for v in 0..8 {
            assert!(ctx.owner(v) < 4);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside every chunk")]
    fn owner_rejects_unowned_vertices_in_debug() {
        let (g, t, mut state, mut machine, chunks) = fixture();
        let mut counters = UpdateCounters::new(8);
        let mass = vec![0.0; 8];
        let ctx = BatchCtx {
            machine: &mut machine,
            graph: &g,
            transpose: &t,
            algo: Algo::sssp(0),
            state: &mut state,
            chunks: &chunks,
            counters: &mut counters,
            out_mass: &mass,
            exec: ExecConfig::serial(),
            obs: RecorderHandle::disabled(),
        };
        let _ = ctx.owner(1_000_000);
    }

    #[test]
    fn machine_tap_forwards_events() {
        let (g, _t, _state, mut machine, chunks) = fixture();
        let _ = g;
        let mut tap = MachineTap::new(&mut machine, &chunks);
        tap.touch(AccessEvent::ReadState(3));
        tap.touch(AccessEvent::WriteState(3));
        tap.touch(AccessEvent::ReadNeighbor(0));
        assert_eq!(machine.stats().accesses, 3);
        assert!(machine.stats().per_op(Op::StateUpdate) == 1);
    }
}
