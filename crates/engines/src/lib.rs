//! Software streaming-graph execution engines.
//!
//! Re-implementations of the four software systems the paper measures
//! (§2.2, §4.1), each driving the same incremental semantics with its own
//! propagation schedule over the simulated machine:
//!
//! * [`ligra_o::LigraO`] — the optimized baseline: synchronous push rounds,
//! * [`ligra_do::LigraDO`] — Ligra with Beamer-style push/pull direction
//!   switching (an even stronger software baseline),
//! * [`kickstarter::KickStarter`] — asynchronous push with dependency-tree
//!   maintenance,
//! * [`graphbolt::GraphBolt`] — dependency-driven synchronous refinement
//!   with dense pull re-aggregation,
//! * [`dzig::Dzig`] — sparsity-aware synchronous refinement.
//!
//! [`config::RunConfig`] reproduces the §4.1 methodology end to end
//! and verifies every run against the from-scratch oracle; the per-batch
//! core behind it is [`session::StreamingSession`], which the continuous
//! ingest service drives directly. Fallible setup (bad options, invalid
//! machine, unapplicable batches) surfaces as a typed
//! [`error::EngineError`] instead of a panic.
//!
//! # Example
//!
//! ```
//! use tdgraph_engines::config::RunConfig;
//! use tdgraph_engines::ligra_o::LigraO;
//! use tdgraph_algos::traits::Algo;
//! use tdgraph_graph::datasets::{Dataset, Sizing};
//!
//! # fn main() -> Result<(), tdgraph_engines::error::EngineError> {
//! let res = RunConfig::small().run(
//!     &mut LigraO,
//!     Algo::sssp(0),
//!     (Dataset::Amazon, Sizing::Tiny),
//! )?;
//! assert!(res.verify.is_match());
//! # Ok(())
//! # }
//! ```

// Robustness gate: non-test engine code must route failures through typed
// errors, never unwrap/expect (CHANGES PR 2; enforced by CI clippy).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod common;
pub mod config;
pub mod ctx;
pub mod dzig;
pub mod engine;
pub mod error;
pub mod graphbolt;
pub mod harness;
pub mod kickstarter;
pub mod ligra_do;
pub mod ligra_o;
pub mod metrics;
pub mod registry;
pub mod session;
pub mod testutil;

pub use config::{OracleMode, RunConfig, RunSource};
pub use ctx::BatchCtx;
pub use engine::Engine;
pub use error::EngineError;
pub use metrics::{RunMetrics, UpdateCounters};
pub use registry::{EngineFactory, EngineRegistry};
pub use session::{OracleCheck, OracleSummary, RunResult, StreamingSession};
