//! DZiG (Mariappan, Che & Vora, EuroSys'21) execution model.
//!
//! DZiG keeps GraphBolt's dependency-driven synchronous structure but adds
//! *sparsity awareness*: a dirty vertex consults a per-vertex changed flag
//! and only re-reads the states of in-neighbors that actually changed this
//! round, skipping the zero-delta work GraphBolt performs. It still scans
//! the in-neighbor id list of each dirty vertex (the sparsity check needs
//! the ids), so it lands between GraphBolt and the push engines in cost —
//! matching its position in Fig 3a.

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::stats::{Actor, PhaseKind};

use crate::common::Frontier;
use crate::ctx::BatchCtx;
use crate::engine::Engine;

/// The DZiG engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dzig;

impl Engine for Dzig {
    fn name(&self) -> &'static str {
        "DZiG"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        match ctx.algo.kind() {
            AlgorithmKind::Monotonic => self.monotonic(ctx, affected),
            AlgorithmKind::Accumulative => self.accumulative(ctx, affected),
        }
    }
}

impl Dzig {
    fn monotonic(&self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let mut changed_list = Frontier::seeded(n, affected);
        let mut changed_flag = vec![false; n];
        for &v in affected {
            changed_flag[v as usize] = true;
        }
        while !changed_list.is_empty() {
            let round = changed_list.drain_all();
            // Build the dirty set from the changed vertices' out-edges.
            let mut dirty = Frontier::new(n);
            for v in &round {
                let core = ctx.owner(*v);
                ctx.schedule_op(core, Actor::Core, 1);
                let (lo, hi) = ctx.read_offsets(core, Actor::Core, *v);
                for i in lo..hi {
                    let (dst, _w) = ctx.read_edge(core, Actor::Core, i);
                    if dirty.push(dst) {
                        ctx.frontier_op(core, Actor::Core, dst);
                    }
                }
            }
            // Sparse pull: only changed in-neighbors are consulted.
            let mut next = Frontier::new(n);
            let mut next_flags = vec![false; n];
            for d in dirty.drain_all() {
                let core = ctx.owner(d);
                ctx.schedule_op(core, Actor::Core, 1);
                let cur = ctx.read_state(core, Actor::Core, d);
                let (lo, hi) = ctx.read_offsets_in(core, Actor::Core, d);
                let mut best = cur;
                let mut best_parent = None;
                for i in lo..hi {
                    // The sparsity check: read the changed bit of the source
                    // id (the id itself comes from the neighbor array).
                    let (src, w) = ctx.read_edge_in(core, Actor::Core, i);
                    ctx.read_active(core, Actor::Core, src);
                    if !changed_flag[src as usize] {
                        continue;
                    }
                    let s = ctx.read_state(core, Actor::Core, src);
                    if !s.is_finite() {
                        continue;
                    }
                    let cand = algo.mono_propagate(s, w);
                    if algo.mono_better(cand, best) {
                        best = cand;
                        best_parent = Some(src);
                    }
                }
                if let Some(p) = best_parent {
                    ctx.write_state(core, Actor::Core, d, best);
                    ctx.write_parent(core, Actor::Core, d, p);
                    ctx.write_active(core, Actor::Core, d);
                    next.push(d);
                    next_flags[d as usize] = true;
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            changed_list = next;
            changed_flag = next_flags;
        }
    }

    /// DelZero-aware residual refinement: like GraphBolt's BSP rounds but
    /// without the per-edge dependency snapshots (DZiG's key saving).
    fn accumulative(&self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        let mut frontier = Frontier::seeded(n, affected);
        while !frontier.is_empty() {
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            for v in round {
                let core = ctx.owner(v);
                ctx.schedule_op(core, Actor::Core, 1);
                // DelZero check on the residual.
                let r = ctx.read_residual(core, Actor::Core, v);
                if r.abs() < eps {
                    continue;
                }
                ctx.write_residual(core, Actor::Core, v, 0.0);
                let s = ctx.read_state(core, Actor::Core, v);
                ctx.write_state(core, Actor::Core, v, s + r);
                let mass = ctx.out_mass[v as usize];
                if mass <= 0.0 {
                    continue;
                }
                let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                for i in lo..hi {
                    let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                    let push = algo.acc_scale(r, w, mass);
                    if push == 0.0 {
                        continue;
                    }
                    let cur = ctx.read_residual(core, Actor::Core, dst);
                    ctx.write_residual(core, Actor::Core, dst, cur + push);
                    if (cur + push).abs() >= eps && next.push(dst) {
                        ctx.frontier_op(core, Actor::Core, dst);
                    }
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{converges_to_oracle, converges_with_deletions};
    use tdgraph_algos::traits::Algo;

    #[test]
    fn sssp_converges() {
        converges_to_oracle(&mut Dzig, Algo::sssp(0));
    }

    #[test]
    fn cc_converges() {
        converges_to_oracle(&mut Dzig, Algo::cc());
    }

    #[test]
    fn pagerank_converges() {
        converges_to_oracle(&mut Dzig, Algo::pagerank());
    }

    #[test]
    fn adsorption_converges() {
        converges_to_oracle(&mut Dzig, Algo::adsorption());
    }

    #[test]
    fn sssp_with_deletions_converges() {
        converges_with_deletions(&mut Dzig, Algo::sssp(0));
    }
}
