//! GraphBolt (Mariappan & Vora, EuroSys'19) execution model.
//!
//! GraphBolt performs dependency-driven *synchronous* refinement: every
//! round it identifies the vertices whose inputs changed and recomputes
//! their aggregation over **all** incoming edges, maintaining per-round
//! dependency metadata. This is robust (its design goal is BSP-semantics
//! preservation) but expensive for selection-style algorithms: each dirty
//! vertex's full in-neighborhood is re-read even though one in-edge changed
//! — the paper measures it as the slowest software system on SSSP (Fig 3a,
//! up to 28.4× behind Ligra-o).

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::address::Region;
use tdgraph_sim::stats::{Actor, PhaseKind};

use crate::common::Frontier;
use crate::ctx::BatchCtx;
use crate::engine::Engine;

/// The GraphBolt engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphBolt;

impl Engine for GraphBolt {
    fn name(&self) -> &'static str {
        "GraphBolt"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        match ctx.algo.kind() {
            AlgorithmKind::Monotonic => self.monotonic(ctx, affected),
            AlgorithmKind::Accumulative => self.accumulative(ctx, affected),
        }
    }
}

impl GraphBolt {
    /// Dense BSP refinement: a vertex whose inputs were ever touched stays
    /// in the dirty set and is re-aggregated over **all** its in-edges
    /// every round until the whole batch converges (GraphBolt preserves
    /// BSP semantics by refining the complete dependency structure; it has
    /// no KickStarter-style trimming for selection algorithms, which is
    /// why the paper measures it up to 28.4× behind Ligra-o on SSSP).
    fn monotonic(&self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let mut changed = Frontier::seeded(n, affected);
        let mut dirty_flag = vec![false; n];
        let mut dirty_list: Vec<VertexId> = Vec::new();
        while !changed.is_empty() {
            let round = changed.drain_all();
            // Mark phase: the changed vertices' out-neighbors join the
            // cumulative dirty set, with dependency metadata written per
            // destination.
            for v in round {
                let core = ctx.owner(v);
                ctx.schedule_op(core, Actor::Core, 1);
                let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                for i in lo..hi {
                    let (dst, _w) = ctx.read_edge(core, Actor::Core, i);
                    ctx.machine.access(core, Actor::Core, Region::AuxMeta, u64::from(dst), true);
                    if !dirty_flag[dst as usize] {
                        dirty_flag[dst as usize] = true;
                        dirty_list.push(dst);
                        ctx.frontier_op(core, Actor::Core, dst);
                    }
                }
            }
            // Pull phase: every dirty vertex re-aggregates its whole
            // in-neighborhood, every round.
            let mut next = Frontier::new(n);
            for &d in &dirty_list {
                let core = ctx.owner(d);
                ctx.schedule_op(core, Actor::Core, 1);
                let cur = ctx.read_state(core, Actor::Core, d);
                let (lo, hi) = ctx.read_offsets_in(core, Actor::Core, d);
                let mut best = cur;
                let mut best_parent = None;
                for i in lo..hi {
                    let (src, w) = ctx.read_edge_in(core, Actor::Core, i);
                    ctx.machine.access(core, Actor::Core, Region::AuxMeta, u64::from(src), false);
                    let s = ctx.read_state(core, Actor::Core, src);
                    if !s.is_finite() {
                        continue;
                    }
                    let cand = algo.mono_propagate(s, w);
                    if algo.mono_better(cand, best) {
                        best = cand;
                        best_parent = Some(src);
                    }
                }
                if let Some(p) = best_parent {
                    ctx.write_state(core, Actor::Core, d, best);
                    ctx.write_parent(core, Actor::Core, d, p);
                    next.push(d);
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            changed = next;
        }
    }

    /// BSP residual refinement with per-round dependency snapshots.
    fn accumulative(&self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let eps = algo.epsilon();
        let mut frontier = Frontier::seeded(n, affected);
        while !frontier.is_empty() {
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            for v in round {
                let core = ctx.owner(v);
                ctx.schedule_op(core, Actor::Core, 1);
                let r = ctx.read_residual(core, Actor::Core, v);
                if r.abs() < eps {
                    continue;
                }
                ctx.write_residual(core, Actor::Core, v, 0.0);
                let s = ctx.read_state(core, Actor::Core, v);
                ctx.write_state(core, Actor::Core, v, s + r);
                // Dependency snapshot of the processed vertex.
                ctx.machine.access(core, Actor::Core, Region::AuxMeta, u64::from(v), true);
                let mass = ctx.out_mass[v as usize];
                if mass <= 0.0 {
                    continue;
                }
                let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                for i in lo..hi {
                    let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                    let push = algo.acc_scale(r, w, mass);
                    let cur = ctx.read_residual(core, Actor::Core, dst);
                    ctx.write_residual(core, Actor::Core, dst, cur + push);
                    // Per-edge dependency bookkeeping.
                    ctx.machine.access(core, Actor::Core, Region::AuxMeta, u64::from(dst), true);
                    if (cur + push).abs() >= eps && next.push(dst) {
                        ctx.frontier_op(core, Actor::Core, dst);
                    }
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{converges_to_oracle, converges_with_deletions};
    use tdgraph_algos::traits::Algo;

    #[test]
    fn sssp_converges() {
        converges_to_oracle(&mut GraphBolt, Algo::sssp(0));
    }

    #[test]
    fn cc_converges() {
        converges_to_oracle(&mut GraphBolt, Algo::cc());
    }

    #[test]
    fn pagerank_converges() {
        converges_to_oracle(&mut GraphBolt, Algo::pagerank());
    }

    #[test]
    fn adsorption_converges() {
        converges_to_oracle(&mut GraphBolt, Algo::adsorption());
    }

    #[test]
    fn cc_with_deletions_converges() {
        converges_with_deletions(&mut GraphBolt, Algo::cc());
    }
}
