//! Typed errors for the engine layer.
//!
//! [`EngineError`] covers every way a streaming run can fail before or
//! during execution: an engine key that resolves to nothing, run options
//! that are out of range, an invalid machine configuration, or a graph-
//! layer failure while applying updates. The sweep runner converts these
//! into per-cell outcomes instead of letting them abort a worker thread.

use std::error::Error;
use std::fmt;

use tdgraph_graph::error::GraphError;
use tdgraph_graph::streaming::ApplyError;
use tdgraph_graph::update::BatchError;
use tdgraph_sim::SimError;

/// Any error produced by the engine layer.
#[derive(Debug)]
pub enum EngineError {
    /// A registry lookup found no engine under the requested key.
    UnknownEngine {
        /// The key that failed to resolve.
        key: String,
        /// Every key the registry does know, in registration order.
        known: Vec<String>,
    },
    /// Run options failed validation (e.g. `add_fraction` outside `[0, 1]`).
    InvalidOptions {
        /// Human-readable description of the invalid option.
        reason: String,
    },
    /// The graph substrate failed (batch validation, update application).
    Graph(GraphError),
    /// The machine configuration is inconsistent.
    Sim(SimError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownEngine { key, known } => {
                write!(f, "engine '{key}' is not registered (known: {})", known.join(", "))
            }
            EngineError::InvalidOptions { reason } => {
                write!(f, "invalid run options: {reason}")
            }
            EngineError::Graph(e) => write!(f, "graph error during run: {e}"),
            EngineError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            EngineError::Sim(e) => Some(e),
            EngineError::UnknownEngine { .. } | EngineError::InvalidOptions { .. } => None,
        }
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<ApplyError> for EngineError {
    fn from(e: ApplyError) -> Self {
        EngineError::Graph(e.into())
    }
}

impl From<BatchError> for EngineError {
    fn from(e: BatchError) -> Self {
        EngineError::Graph(e.into())
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_engine_lists_known_keys() {
        let e = EngineError::UnknownEngine {
            key: "warp-drive".into(),
            known: vec!["ligra-o".into(), "dzig".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("warp-drive"));
        assert!(msg.contains("ligra-o, dzig"));
    }

    #[test]
    fn graph_errors_convert_with_source() {
        let e: EngineError = ApplyError::MissingEdge { src: 0, dst: 1 }.into();
        assert!(matches!(e, EngineError::Graph(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn sim_errors_convert() {
        let e: EngineError =
            SimError::InvalidConfig { field: "cores", reason: "zero".into() }.into();
        assert!(e.to_string().contains("cores"));
    }
}
