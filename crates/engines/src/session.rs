//! An open streaming run: the per-batch core the harness loop and the
//! ingest service both drive.
//!
//! [`StreamingSession`] owns everything a run accumulates between batches
//! — the mutable graph, the simulated machine, the incremental algorithm
//! state, counters, quarantine and oracle evidence. Callers push batches
//! at it one at a time ([`StreamingSession::ingest_batch`] /
//! [`StreamingSession::ingest_entries`]) and close it with
//! [`StreamingSession::finish`], which performs the final verification
//! and metric export exactly as the one-shot harness entry points always
//! did. The offline composer loop (`RunConfig::run`) and the live
//! continuous-ingest service (`tdgraph-serve`) are both thin drivers over
//! this type, which is what makes record/replay byte-identical: the same
//! entry sequence hits the same code in the same order either way.

use tdgraph_algos::incremental::{seed_after_batch, AlgoState};
use tdgraph_algos::scratch::{out_mass, solve};
use tdgraph_algos::traits::Algo;
use tdgraph_algos::verify::{compare, VerifyOutcome};
use tdgraph_graph::csr::Csr;
use tdgraph_graph::datasets::StreamingWorkload;
use tdgraph_graph::partition::{owner_of, partition_by_edges, Chunk, ShardPlan};
use tdgraph_graph::quarantine::{IngestMode, QuarantineReason, QuarantineReport};
use tdgraph_graph::store::{
    AnyStore, GraphStore, StorageKind, StorageRegion, StorageStats, TOUCH_ROW_STRIDE,
};
use tdgraph_graph::types::Edge;
use tdgraph_graph::update::{EdgeUpdate, UpdateBatch};
use tdgraph_graph::wire::RecordedEntry;
use tdgraph_obs::{keys, MemoryRecorder, Recorder, RecorderHandle, TraceEvent};
use tdgraph_sim::address::{AddressSpace, Region};
use tdgraph_sim::energy::{EnergyBreakdown, EnergyConstants};
use tdgraph_sim::exec::ExecPipelineReport;
use tdgraph_sim::machine::Machine;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

use crate::config::{OracleMode, RunConfig};
use crate::ctx::{BatchCtx, MachineTap};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::metrics::{RunMetrics, UpdateCounters};

/// One mid-run oracle comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleCheck {
    /// 1-based batch count at which the comparison ran.
    pub batch: u64,
    /// What the comparison found.
    pub outcome: VerifyOutcome,
}

/// Bounded cap on retained mid-run mismatch records.
const ORACLE_RECORD_CAP: usize = 8;

/// Accounting of every mid-run oracle comparison
/// ([`OracleMode::EveryNBatches`]); empty under `Off` / `Final`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleSummary {
    /// Comparisons performed mid-run.
    pub checks: u64,
    /// Comparisons that found a mismatch.
    pub mismatches: u64,
    /// First few mismatching comparisons (bounded).
    pub records: Vec<OracleCheck>,
}

impl OracleSummary {
    fn record(&mut self, batch: u64, outcome: &VerifyOutcome) {
        self.checks += 1;
        if !outcome.is_match() {
            self.mismatches += 1;
            if self.records.len() < ORACLE_RECORD_CAP {
                self.records.push(OracleCheck { batch, outcome: outcome.clone() });
            }
        }
    }
}

/// The observability counter key for one quarantine reason.
#[must_use]
pub fn quarantine_key(reason: QuarantineReason) -> &'static str {
    match reason {
        QuarantineReason::MalformedLine => keys::QUARANTINE_MALFORMED_LINE,
        QuarantineReason::IdOverflow => keys::QUARANTINE_ID_OVERFLOW,
        QuarantineReason::IoInterrupted => keys::QUARANTINE_IO_INTERRUPTED,
        QuarantineReason::SelfLoop => keys::QUARANTINE_SELF_LOOP,
        QuarantineReason::ConflictingUpdate => keys::QUARANTINE_CONFLICTING_UPDATE,
        QuarantineReason::NonFiniteWeight => keys::QUARANTINE_NON_FINITE_WEIGHT,
        QuarantineReason::VertexOutOfBounds => keys::QUARANTINE_VERTEX_OUT_OF_BOUNDS,
        QuarantineReason::AbsentDeletion => keys::QUARANTINE_ABSENT_DELETION,
        QuarantineReason::TruncatedLine => keys::QUARANTINE_TRUNCATED_LINE,
        // `QuarantineReason` is non_exhaustive; reasons added later roll
        // up under one key instead of breaking this consumer.
        _ => keys::QUARANTINE_OTHER,
    }
}

/// Result of a streaming run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Collected metrics.
    pub metrics: RunMetrics,
    /// Oracle comparison of the final states ([`VerifyOutcome::Skipped`]
    /// under [`OracleMode::Off`]).
    pub verify: VerifyOutcome,
    /// Everything lenient ingest quarantined (empty under strict ingest).
    pub quarantine: QuarantineReport,
    /// Mid-run differential-oracle accounting.
    pub oracle: OracleSummary,
    /// Host-side pipeline timing and boundary-event volumes of a sharded
    /// run (`None` for serial runs). Wall-clock, so deliberately outside
    /// every deterministic surface — [`RunMetrics`] never reads it.
    pub exec: Option<ExecPipelineReport>,
    /// End-of-run tier occupancy / transition counters of the graph store
    /// (all-zero under the tierless CSR baseline).
    pub storage: StorageStats,
}

/// An open streaming run over one workload.
///
/// Create with [`StreamingSession::new`], feed batches with
/// [`StreamingSession::ingest_batch`] (raw updates) or
/// [`StreamingSession::ingest_entries`] (a recorded wire batch, malformed
/// lines included), then [`StreamingSession::finish`]. The per-batch work
/// is byte-for-byte the loop body the one-shot harness entry points have
/// always run — extracting it into a type is what lets the continuous
/// service and offline replay share it.
pub struct StreamingSession {
    cfg: RunConfig,
    algo: Algo,
    store: AnyStore,
    /// Element capacities the layout-touch fold works within:
    /// `(neighbor/weight array elements, hash-table slots)`.
    touch_dims: (u64, u64),
    machine: Machine,
    state: AlgoState,
    counters: UpdateCounters,
    useful_total: u64,
    batches_done: u64,
    states_before: Vec<f32>,
    final_snapshot: Csr,
    quarantine: QuarantineReport,
    oracle_summary: OracleSummary,
    batch_size: usize,
    pending: Vec<Edge>,
}

impl StreamingSession {
    /// Opens a session: validates `cfg`, lays out the address space,
    /// builds the machine, and computes the initial fixed point (not
    /// charged — the paper measures per-batch incremental processing, not
    /// the cold start).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] or [`EngineError::Sim`] if `cfg`
    /// fails validation.
    pub fn new(
        algo: Algo,
        workload: StreamingWorkload,
        cfg: RunConfig,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        let StreamingWorkload { graph, pending, .. } = workload;
        let n = graph.vertex_count();
        let edge_capacity = graph.edge_count() + pending.len();
        let coalesced = ((n as f64 * cfg.alpha).ceil() as usize).max(16);
        let layout = AddressSpace::layout(n, edge_capacity, coalesced);

        let snapshot = graph.snapshot();
        let machine = if cfg.exec.is_sharded() {
            // One static, edge-balanced shard plan from the initial
            // snapshot: replay shards keep their private caches for the
            // whole run, so the grouping must not change per batch.
            let chunks = partition_by_edges(&snapshot, cfg.sim.cores * cfg.chunks_per_core);
            let plan = ShardPlan::balanced(&chunks, cfg.sim.cores, cfg.exec.replay_shards());
            Machine::with_exec_config(cfg.sim.clone(), layout, cfg.exec, &plan)
        } else {
            Machine::new(cfg.sim.clone(), layout)
        };
        let state = AlgoState::from_solution(solve(&algo, &snapshot), n);

        let default_batch = (graph.edge_count() / 16).max(64);
        let batch_size = cfg.batch_size.unwrap_or(default_batch);

        // The mutable substrate: the CSR arm wraps the workload graph
        // untouched (bit-for-bit the pre-trait code path); the hybrid arm
        // replays its edges in iteration order, so both start from the
        // same buffer order. Only the hybrid store traces its layout
        // touches — the CSR baseline must not charge anything new.
        let mut store = AnyStore::from_streaming(cfg.storage, graph);
        if cfg.storage == StorageKind::Hybrid {
            // Enabled only after the initial load, so the cold start stays
            // uncharged (the paper measures per-batch work).
            store.set_touch_tracing(true);
        }
        // Region capacities the synthetic touch addresses fold into
        // (mirrors the `AddressSpace::layout` sizing above).
        let touch_dims =
            ((edge_capacity as u64).max(1), ((coalesced as f64 / 0.75).ceil() as u64).max(1));

        Ok(Self {
            cfg,
            algo,
            store,
            touch_dims,
            machine,
            state,
            counters: UpdateCounters::new(n),
            useful_total: 0,
            batches_done: 0,
            states_before: Vec::new(),
            final_snapshot: snapshot,
            quarantine: QuarantineReport::new(),
            oracle_summary: OracleSummary::default(),
            batch_size,
            pending,
        })
    }

    /// Takes the workload's pending additions (for a composer-driven run).
    /// Subsequent calls return an empty vector.
    pub fn take_pending(&mut self) -> Vec<Edge> {
        std::mem::take(&mut self.pending)
    }

    /// The edges currently present in the mutable graph (composer input;
    /// iteration order is identical across storage backends — the
    /// documented determinism contract of [`GraphStore::edges_vec`]).
    #[must_use]
    pub fn present_edges(&self) -> Vec<Edge> {
        self.store.edges_vec()
    }

    /// Number of vertices the session's graph was laid out for.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.store.num_vertices()
    }

    /// Which storage backend the session's mutable graph uses.
    #[must_use]
    pub fn storage_kind(&self) -> StorageKind {
        self.store.kind()
    }

    /// The effective per-batch update target (explicit
    /// [`RunConfig::batch_size`] or the workload's scaled default).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Batches processed so far (batches whose raw update list was empty
    /// are skipped, not counted).
    #[must_use]
    pub fn batches_done(&self) -> u64 {
        self.batches_done
    }

    /// Quarantine evidence accumulated so far.
    #[must_use]
    pub fn quarantine(&self) -> &QuarantineReport {
        &self.quarantine
    }

    /// Quarantines one malformed wire line (lenient front door for lines
    /// that never parsed into an [`EdgeUpdate`]).
    pub fn quarantine_malformed(&mut self, detail: &str) {
        self.quarantine.record(QuarantineReason::MalformedLine, None, detail);
    }

    /// Quarantines one truncated wire fragment (a line cut by connection
    /// loss or a torn write at a crash) without running the engine.
    pub fn quarantine_truncated(&mut self, detail: &str) {
        self.quarantine.record(QuarantineReason::TruncatedLine, None, detail);
    }

    /// Ingests one recorded wire batch: malformed lines are quarantined in
    /// arrival order, then the surviving updates run as one batch. Both
    /// the live service and offline replay call exactly this, which is the
    /// determinism contract.
    ///
    /// # Errors
    ///
    /// Same as [`StreamingSession::ingest_batch`].
    pub fn ingest_entries<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        entries: &[RecordedEntry],
        recorder: &mut dyn Recorder,
    ) -> Result<(), EngineError> {
        let mut updates = Vec::with_capacity(entries.len());
        for entry in entries {
            match entry {
                RecordedEntry::Malformed(detail) => self.quarantine_malformed(detail),
                RecordedEntry::Truncated(detail) => self.quarantine_truncated(detail),
                RecordedEntry::Update(u) => updates.push(*u),
            }
        }
        self.ingest_batch(engine, updates, recorder)
    }

    /// Runs one update batch through the full per-batch pipeline: validate
    /// (strict or lenient per [`RunConfig::ingest`]), apply to the graph,
    /// seed the incremental computation ("other" time), hand the affected
    /// set to `engine` (propagation time), classify useful work, and run
    /// the mid-run differential oracle when due. An empty `raw` vector is
    /// a no-op (a latency deadline can close a batch holding only
    /// quarantined lines; no simulated work happens for it).
    ///
    /// # Errors
    ///
    /// [`EngineError::Graph`] under strict ingest when the batch fails
    /// validation or application.
    pub fn ingest_batch<E: Engine + ?Sized>(
        &mut self,
        engine: &mut E,
        raw: Vec<EdgeUpdate>,
        recorder: &mut dyn Recorder,
    ) -> Result<(), EngineError> {
        if raw.is_empty() {
            return Ok(());
        }
        let batch = match self.cfg.ingest {
            IngestMode::Strict => UpdateBatch::from_updates(raw)?,
            IngestMode::Lenient => UpdateBatch::from_updates_lenient(raw, &mut self.quarantine),
        };
        let applied = match self.cfg.ingest {
            IngestMode::Strict => self.store.apply_batch(&batch)?,
            IngestMode::Lenient => self.store.apply_batch_lenient(&batch, &mut self.quarantine),
        };
        let snapshot = self.store.snapshot();
        let transpose = snapshot.transpose();
        let chunks = partition_by_edges(&snapshot, self.cfg.sim.cores * self.cfg.chunks_per_core);
        let mass = out_mass(&self.algo, &snapshot);

        self.states_before.clear();
        self.states_before.extend_from_slice(&self.state.states);
        self.counters.reset_marks();

        // Batch application + seeding: "other" time.
        recorder.span_enter(keys::PHASE_OTHER);
        self.machine.compute(0, Actor::Core, Op::ScheduleOp, batch.len() as u64 * 2);
        // The store's own layout touches from applying the batch (hybrid
        // only; the CSR store records nothing, keeping its runs
        // byte-identical). Charged here so the cache/NoC models see the
        // adjacency layout the updates actually walked.
        self.charge_storage_touches(&chunks);
        let affected = {
            let mut tap = MachineTap::new(&mut self.machine, &chunks);
            seed_after_batch(&self.algo, &snapshot, &transpose, &mut self.state, &applied, &mut tap)
        };
        let other_cycles = self.machine.end_phase_synced(PhaseKind::Other);
        recorder.span_exit(keys::PHASE_OTHER, other_cycles);

        // Engine propagation.
        recorder.span_enter(keys::PHASE_PROPAGATION);
        {
            let mut ctx = BatchCtx {
                machine: &mut self.machine,
                graph: &snapshot,
                transpose: &transpose,
                algo: self.algo,
                state: &mut self.state,
                chunks: &chunks,
                counters: &mut self.counters,
                out_mass: &mass,
                obs: RecorderHandle::new(&mut *recorder),
                exec: self.cfg.exec,
            };
            engine.process_batch(&mut ctx, &affected);
        }
        let propagation_cycles = self.machine.end_phase_synced(PhaseKind::Propagation);
        recorder.span_exit(keys::PHASE_PROPAGATION, propagation_cycles);

        // Classify this batch's updates.
        let changed: Vec<bool> = self
            .state
            .states
            .iter()
            .zip(&self.states_before)
            .map(|(&a, &b)| {
                if a.is_infinite() && b.is_infinite() {
                    false
                } else {
                    (a - b).abs() > f32::EPSILON * (1.0 + b.abs())
                }
            })
            .collect();
        let (useful, _useless) = self.counters.classify(&changed);
        self.useful_total += useful;
        self.batches_done += 1;

        // Mid-run differential oracle: solve from scratch on the current
        // snapshot and compare. A mismatch is evidence, not a failure —
        // it is recorded and emitted, and the run continues.
        if let OracleMode::EveryNBatches(every) = self.cfg.oracle {
            if self.batches_done.is_multiple_of(every as u64) {
                let oracle_states = solve(&self.algo, &snapshot);
                let outcome = compare(&self.algo, &self.state.states, &oracle_states.states);
                self.oracle_summary.record(self.batches_done, &outcome);
                if !outcome.is_match() {
                    recorder.event(
                        &TraceEvent::new("oracle_mismatch")
                            .field("batch", self.batches_done)
                            .field("algo", self.algo.name())
                            .field("detail", format!("{outcome:?}")),
                    );
                }
            }
        }

        self.final_snapshot = snapshot;
        Ok(())
    }

    /// Drains the store's update-touch trace and charges each touch into
    /// the machine as a core memory access, folding the store's synthetic
    /// layout onto the simulated address space: row headers land in
    /// `Offset_Array` (one header line per vertex), buffer slots in
    /// `Neighbor_Array` / `Weight_Array` with per-vertex buffers scattered
    /// pseudo-randomly through the region (heap-allocated rows, unlike
    /// CSR's packed arrays — exactly the layout difference the cache model
    /// should observe), and hash probes in the `H_Table` region. Touches
    /// are attributed to the core owning the touched vertex.
    fn charge_storage_touches(&mut self, chunks: &[Chunk]) {
        let touches = self.store.take_update_touches();
        if touches.is_empty() {
            return;
        }
        let cores = self.machine.cores();
        let (buffer_elems, hash_elems) = self.touch_dims;
        for t in touches {
            let core = owner_of(chunks, t.vertex).map_or(0, |chunk| chunk % cores);
            let (region, index) = match t.region {
                StorageRegion::RowHeader => (Region::OffsetArray, u64::from(t.vertex)),
                StorageRegion::NeighborSlot
                | StorageRegion::WeightSlot
                | StorageRegion::HashSlot => {
                    let pos = t.index % TOUCH_ROW_STRIDE;
                    let (region, elems) = match t.region {
                        StorageRegion::NeighborSlot => (Region::NeighborArray, buffer_elems),
                        StorageRegion::WeightSlot => (Region::WeightArray, buffer_elems),
                        _ => (Region::HashTable, hash_elems),
                    };
                    // Deterministic per-vertex buffer base (multiply
                    // hash), positions contiguous from it.
                    let base = u64::from(t.vertex).wrapping_mul(0x9E37_79B9_7F4A_7C15) % elems;
                    (region, (base + pos) % elems)
                }
            };
            self.machine.access(core, Actor::Core, region, index, t.is_write);
        }
    }

    /// Closes the run: final machine drain, energy rollup, final oracle
    /// verification, and the end-of-run totals export (to `recorder` live
    /// and to an internal snapshot the returned [`RunMetrics`] are read
    /// from — so traced and untraced runs report byte-identical numbers).
    #[must_use]
    pub fn finish<E: Engine + ?Sized>(
        mut self,
        engine: &E,
        recorder: &mut dyn Recorder,
    ) -> RunResult {
        self.machine.finish();
        let stats = self.machine.stats().clone();
        let dram_lines = self.machine.dram().total_bytes() / 64;
        let energy = EnergyBreakdown::from_stats(
            &stats,
            dram_lines,
            self.machine.total_cycles(),
            self.cfg.sim.freq_ghz,
            EnergyConstants::nominal(),
        );

        let verify = match self.cfg.oracle {
            OracleMode::Off => VerifyOutcome::Skipped,
            OracleMode::EveryNBatches(_) | OracleMode::Final => {
                let oracle = solve(&self.algo, &self.final_snapshot);
                compare(&self.algo, &self.state.states, &oracle.states)
            }
        };

        // End-of-run totals: `updates.*` already reached `recorder` live,
        // so it only receives the remaining namespaces plus the
        // end-computed useful count; the internal recorder gets everything
        // and becomes the snapshot the metrics are read from.
        let machine = &self.machine;
        let quarantine = &self.quarantine;
        let oracle_summary = &self.oracle_summary;
        let storage_stats = self.store.stats();
        let useful_total = self.useful_total;
        let batches_done = self.batches_done;
        let algo = self.algo;
        let export_totals = |rec: &mut dyn Recorder| {
            stats.export_into(rec);
            energy.export_into(rec);
            rec.counter(keys::USEFUL_UPDATES, useful_total);
            rec.counter(keys::DRAM_BYTES, machine.dram().total_bytes());
            rec.counter(keys::DRAM_READS, machine.dram().total_reads());
            rec.counter(keys::RUN_CYCLES, machine.total_cycles());
            rec.counter(keys::RUN_BATCHES, batches_done);
            rec.label(keys::RUN_ENGINE, engine.name());
            rec.label(keys::RUN_ALGO, algo.name());
            // Degradation counters only exist when something degraded, so a
            // clean run's snapshot stays byte-identical to the pre-chaos era.
            if !quarantine.is_empty() {
                rec.counter(keys::QUARANTINE_TOTAL, quarantine.total());
                for (reason, count) in quarantine.counts() {
                    rec.counter(quarantine_key(reason), count);
                }
            }
            if oracle_summary.checks > 0 {
                rec.counter(keys::ORACLE_CHECKS, oracle_summary.checks);
                rec.counter(keys::ORACLE_MISMATCHES, oracle_summary.mismatches);
            }
            // Same pattern for the storage tiers: the tierless CSR store
            // reports all-zero, so its snapshots stay byte-identical to
            // the pre-storage-axis era.
            if !storage_stats.is_empty() {
                rec.counter(keys::STORAGE_TIER_INLINE, storage_stats.inline_vertices);
                rec.counter(keys::STORAGE_TIER_LINEAR, storage_stats.linear_vertices);
                rec.counter(keys::STORAGE_TIER_INDEXED, storage_stats.indexed_vertices);
                rec.counter(keys::STORAGE_PROMOTIONS, storage_stats.promotions);
                rec.counter(keys::STORAGE_DEMOTIONS, storage_stats.demotions);
            }
        };
        export_totals(recorder);

        let mut mem = MemoryRecorder::new();
        export_totals(&mut mem);
        self.counters.export_into(&mut mem);
        mem.span_exit(keys::PHASE_PROPAGATION, self.machine.breakdown().propagation_cycles);
        mem.span_exit(keys::PHASE_OTHER, self.machine.breakdown().other_cycles);

        let metrics = RunMetrics::from_snapshot(&mem.into_snapshot());
        let exec = self.machine.exec_report().cloned();
        RunResult {
            metrics,
            verify,
            quarantine: self.quarantine,
            oracle: self.oracle_summary,
            exec,
            storage: storage_stats,
        }
    }
}
