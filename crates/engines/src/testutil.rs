//! Test support: oracle-convergence checks shared by engine unit tests
//! (also used by the accelerator crate's tests), plus [`FaultyEngine`] —
//! a configurable misbehaving engine for fault-injection suites.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use tdgraph_algos::traits::Algo;
use tdgraph_graph::datasets::{Dataset, Sizing};
use tdgraph_graph::types::VertexId;

use crate::config::RunConfig;
use crate::ctx::BatchCtx;
use crate::engine::Engine;
use crate::ligra_o::LigraO;

/// Runs `engine` end-to-end on a tiny streaming workload and asserts the
/// final states match the from-scratch oracle.
///
/// # Panics
///
/// Panics on verification failure.
pub fn converges_to_oracle<E: Engine>(engine: &mut E, algo: Algo) {
    let res = RunConfig::small()
        .run(engine, algo, (Dataset::Amazon, Sizing::Tiny))
        .expect("harness run failed");
    assert!(
        res.verify.is_match(),
        "{} on {} diverged from oracle: {:?}",
        engine.name(),
        algo.name(),
        res.verify
    );
    assert!(res.metrics.cycles > 0, "no time was charged");
}

/// Like [`converges_to_oracle`] but with a deletion-heavy batch mix.
///
/// # Panics
///
/// Panics on verification failure.
pub fn converges_with_deletions<E: Engine>(engine: &mut E, algo: Algo) {
    let res = RunConfig::small()
        .with_add_fraction(0.25)
        .run(engine, algo, (Dataset::Dblp, Sizing::Tiny))
        .expect("harness run failed");
    assert!(
        res.verify.is_match(),
        "{} on {} (deletion-heavy) diverged: {:?}",
        engine.name(),
        algo.name(),
        res.verify
    );
}

/// How a [`FaultyEngine`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Behave exactly like the wrapped baseline (control cells).
    None,
    /// Panic when processing the batch with this 0-based index.
    PanicOnBatch(usize),
    /// Sleep for the given duration before processing the batch with this
    /// 0-based index (triggers sweep watchdog timeouts).
    SleepOnBatch(usize, Duration),
    /// Corrupt the vertex states after processing the batch with this
    /// 0-based index, so the run completes but fails oracle verification.
    WrongStatesOnBatch(usize),
}

/// A deliberately misbehaving engine for fault-isolation tests: it wraps
/// the Ligra-o baseline and injects one fault according to its
/// [`FaultMode`]. Registered through an
/// [`EngineRegistry`](crate::registry::EngineRegistry) like any real
/// engine, it exercises panic containment, watchdog timeouts, and
/// divergence reporting in the sweep layer.
#[derive(Debug)]
pub struct FaultyEngine {
    inner: LigraO,
    mode: FaultMode,
    batches_seen: usize,
}

impl FaultyEngine {
    /// Creates a faulty engine with the given fault mode.
    #[must_use]
    pub fn new(mode: FaultMode) -> Self {
        Self { inner: LigraO, mode, batches_seen: 0 }
    }
}

impl Engine for FaultyEngine {
    fn name(&self) -> &'static str {
        "Faulty"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let batch = self.batches_seen;
        self.batches_seen += 1;
        match self.mode {
            FaultMode::None | FaultMode::WrongStatesOnBatch(_) => {}
            FaultMode::PanicOnBatch(n) if batch == n => {
                panic!("injected fault: engine panic on batch {n}")
            }
            FaultMode::SleepOnBatch(n, d) if batch == n => std::thread::sleep(d),
            FaultMode::PanicOnBatch(_) | FaultMode::SleepOnBatch(_, _) => {}
        }
        self.inner.process_batch(ctx, affected);
        if self.mode == FaultMode::WrongStatesOnBatch(batch) {
            for s in &mut ctx.state.states {
                *s = -1234.5;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_engine_none_mode_is_transparent() {
        converges_to_oracle(&mut FaultyEngine::new(FaultMode::None), Algo::sssp(0));
    }

    #[test]
    fn faulty_engine_panics_on_requested_batch() {
        let res = std::panic::catch_unwind(|| {
            let mut e = FaultyEngine::new(FaultMode::PanicOnBatch(0));
            RunConfig::small().run(&mut e, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny))
        });
        assert!(res.is_err(), "expected the injected panic to surface");
    }

    #[test]
    fn faulty_engine_wrong_states_fail_verification() {
        let mut e = FaultyEngine::new(FaultMode::WrongStatesOnBatch(1));
        let res =
            RunConfig::small().run(&mut e, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny)).unwrap();
        assert!(!res.verify.is_match(), "corrupted states must diverge from the oracle");
    }
}
