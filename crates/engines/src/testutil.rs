//! Test support: oracle-convergence checks shared by engine unit tests
//! (also used by the accelerator crate's tests).

use tdgraph_algos::traits::Algo;
use tdgraph_graph::datasets::{Dataset, Sizing};

use crate::engine::Engine;
use crate::harness::{run_streaming, RunOptions};

/// Runs `engine` end-to-end on a tiny streaming workload and asserts the
/// final states match the from-scratch oracle.
///
/// # Panics
///
/// Panics on verification failure.
pub fn converges_to_oracle<E: Engine>(engine: &mut E, algo: Algo) {
    let res = run_streaming(engine, algo, Dataset::Amazon, Sizing::Tiny, &RunOptions::small());
    assert!(
        res.verify.is_match(),
        "{} on {} diverged from oracle: {:?}",
        engine.name(),
        algo.name(),
        res.verify
    );
    assert!(res.metrics.cycles > 0, "no time was charged");
}

/// Like [`converges_to_oracle`] but with a deletion-heavy batch mix.
///
/// # Panics
///
/// Panics on verification failure.
pub fn converges_with_deletions<E: Engine>(engine: &mut E, algo: Algo) {
    let mut opts = RunOptions::small();
    opts.add_fraction = 0.25;
    let res = run_streaming(engine, algo, Dataset::Dblp, Sizing::Tiny, &opts);
    assert!(
        res.verify.is_match(),
        "{} on {} (deletion-heavy) diverged: {:?}",
        engine.name(),
        algo.name(),
        res.verify
    );
}
