//! Direction-optimizing Ligra (Beamer-style push/pull switching).
//!
//! Real Ligra's signature optimization: when the frontier is small, push
//! sparsely along its out-edges; when it grows past a threshold fraction
//! of the graph, switch to a dense *pull* round where every vertex gathers
//! from its in-neighbors — cheaper because a dense pull touches each
//! destination once and can stop at the first useful in-neighbor, and its
//! sequential scans prefetch well.
//!
//! This engine is provided alongside [`crate::ligra_o::LigraO`] (the
//! paper's baseline keeps a fixed push direction, which is what its
//! redundancy analysis assumes); comparing the two quantifies how much of
//! the gap an adaptive software baseline could recover by itself.

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::stats::{Actor, PhaseKind};

use crate::common::{process_vertex, Frontier};
use crate::ctx::BatchCtx;
use crate::engine::Engine;

/// Frontier fraction above which rounds switch to dense pull.
const DENSE_THRESHOLD: f64 = 0.05;

/// The direction-optimizing Ligra engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct LigraDO;

impl Engine for LigraDO {
    fn name(&self) -> &'static str {
        "Ligra-DO"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let mut frontier = Frontier::seeded(n, affected);
        let mut changed_flag = vec![false; n];
        for &v in affected {
            changed_flag[v as usize] = true;
        }
        while !frontier.is_empty() {
            let dense = frontier.len() as f64 > DENSE_THRESHOLD * n as f64;
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            let mut next_flags = vec![false; n];
            if dense && ctx.algo.kind() == AlgorithmKind::Monotonic {
                self.dense_pull(ctx, &changed_flag, &mut next, &mut next_flags);
            } else {
                for v in round {
                    let core = ctx.owner(v);
                    ctx.schedule_op(core, Actor::Core, 1);
                    ctx.read_active(core, Actor::Core, v);
                    process_vertex(ctx, core, Actor::Core, v, &mut next);
                }
                for &v in next.peek() {
                    next_flags[v as usize] = true;
                }
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
            changed_flag = next_flags;
        }
    }
}

impl LigraDO {
    /// One dense pull round: every vertex scans its in-neighbors, stopping
    /// early once no further improvement is possible from the changed set.
    fn dense_pull(
        &self,
        ctx: &mut BatchCtx<'_>,
        changed: &[bool],
        next: &mut Frontier,
        next_flags: &mut [bool],
    ) {
        let algo = ctx.algo;
        let n = ctx.graph.vertex_count();
        for d in 0..n as VertexId {
            let core = ctx.owner(d);
            ctx.schedule_op(core, Actor::Core, 1);
            let cur = ctx.read_state(core, Actor::Core, d);
            let (lo, hi) = ctx.read_offsets_in(core, Actor::Core, d);
            let mut best = cur;
            let mut best_parent = None;
            for i in lo..hi {
                let (src, w) = ctx.read_edge_in(core, Actor::Core, i);
                // The frontier check is a bitvector read — the point of
                // pull: skip state loads for unchanged sources.
                ctx.read_active(core, Actor::Core, src);
                if !changed[src as usize] {
                    continue;
                }
                let s = ctx.read_state(core, Actor::Core, src);
                if !s.is_finite() {
                    continue;
                }
                let cand = algo.mono_propagate(s, w);
                if algo.mono_better(cand, best) {
                    best = cand;
                    best_parent = Some(src);
                }
            }
            if let Some(p) = best_parent {
                ctx.write_state(core, Actor::Core, d, best);
                ctx.write_parent(core, Actor::Core, d, p);
                ctx.write_active(core, Actor::Core, d);
                next.push(d);
                next_flags[d as usize] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{converges_to_oracle, converges_with_deletions};
    use tdgraph_algos::traits::Algo;

    #[test]
    fn converges_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            converges_to_oracle(&mut LigraDO, algo);
        }
    }

    #[test]
    fn deletion_heavy_streams_converge() {
        converges_with_deletions(&mut LigraDO, Algo::sssp(0));
        converges_with_deletions(&mut LigraDO, Algo::cc());
    }
}
