//! Run-level metrics (the quantities the paper's figures plot).
//!
//! Since the observability redesign, [`RunMetrics`] is a *view* over an
//! obs snapshot: the harness exports every statistic into the unified
//! `updates.*` / `sim.*` / `energy.*` / `run.*` namespaces and
//! [`RunMetrics::from_snapshot`] reads them back, so a traced run and its
//! figures see exactly the same numbers.

use tdgraph_graph::types::VertexId;
use tdgraph_obs::{keys, MemoryRecorder, Recorder, Snapshot};
use tdgraph_sim::energy::EnergyBreakdown;
use tdgraph_sim::stats::MachineStats;

/// Counts vertex-state updates during propagation to derive the
/// useful/useless split of Fig 3(b)/Fig 11: the *useful* updates are the
/// final writes of vertices whose value actually changed; every overwritten
/// intermediate write is redundant work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateCounters {
    writes_per_vertex: Vec<u32>,
    total_writes: u64,
    edges_processed: u64,
}

impl UpdateCounters {
    /// Creates counters for `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { writes_per_vertex: vec![0; n], total_writes: 0, edges_processed: 0 }
    }

    /// Records a state write to `v`.
    ///
    /// Vertices beyond the constructed size grow the table instead of
    /// panicking — engines built for an older snapshot may legitimately
    /// write states for vertices added by the current batch.
    pub fn record_write(&mut self, v: VertexId) {
        let i = v as usize;
        if i >= self.writes_per_vertex.len() {
            self.writes_per_vertex.resize(i + 1, 0);
        }
        self.writes_per_vertex[i] += 1;
        self.total_writes += 1;
    }

    /// Records `n` processed edges.
    pub fn record_edges(&mut self, n: u64) {
        self.edges_processed += n;
    }

    /// Total state writes.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.total_writes
    }

    /// Edges processed.
    #[must_use]
    pub fn edges_processed(&self) -> u64 {
        self.edges_processed
    }

    /// Computes `(useful, useless)` updates given which vertices actually
    /// changed value over the batch: the last write to a changed vertex is
    /// useful; everything else was overwritten or redundant.
    #[must_use]
    pub fn classify(&self, changed: &[bool]) -> (u64, u64) {
        let mut useful = 0u64;
        for (v, &w) in self.writes_per_vertex.iter().enumerate() {
            if w > 0 && changed.get(v).copied().unwrap_or(false) {
                useful += 1;
            }
        }
        (useful, self.total_writes - useful)
    }

    /// Clears per-vertex write marks between batches, keeping totals.
    pub fn reset_marks(&mut self) {
        self.writes_per_vertex.iter_mut().for_each(|w| *w = 0);
    }

    /// Writes recorded for `v` in the current batch (0 if `v` was never
    /// written).
    #[must_use]
    pub fn writes_for(&self, v: VertexId) -> u32 {
        self.writes_per_vertex.get(v as usize).copied().unwrap_or(0)
    }

    /// Exports the run totals into the observability layer under the
    /// `updates.*` keys.
    pub fn export_into(&self, rec: &mut dyn Recorder) {
        rec.counter(keys::STATE_WRITES, self.total_writes);
        rec.counter(keys::EDGES_PROCESSED, self.edges_processed);
    }
}

/// Aggregated results of a streaming run (all batches).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetrics {
    /// Engine name.
    pub engine: String,
    /// Algorithm name.
    pub algo: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Cycles spent propagating states.
    pub propagation_cycles: u64,
    /// Cycles spent on everything else.
    pub other_cycles: u64,
    /// Total vertex-state updates performed.
    pub state_updates: u64,
    /// Updates whose value survived to the end of the batch.
    pub useful_updates: u64,
    /// Edges processed during propagation.
    pub edges_processed: u64,
    /// LLC miss rate over the run.
    pub llc_miss_rate: f64,
    /// Fraction of fetched vertex-state words actually used.
    pub useful_state_ratio: f64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// DRAM line reads (for Fig 16's useful/useless split).
    pub dram_reads: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Final machine statistics.
    pub machine: MachineStats,
    /// Number of batches processed.
    pub batches: u64,
}

impl RunMetrics {
    /// Builds the metrics as a view over an observability snapshot: the
    /// `updates.*` / `sim.*` / `energy.*` / `run.*` keys and the phase
    /// spans the harness exports. Integer counters and energy gauges are
    /// copied verbatim; the two derived ratios are recomputed from the
    /// restored machine statistics exactly as the harness used to, so the
    /// resulting metrics are byte-identical to pre-redesign ones.
    #[must_use]
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let machine = MachineStats::from_snapshot(snapshot);
        let energy = EnergyBreakdown::from_snapshot(snapshot);
        Self {
            engine: snapshot.label(keys::RUN_ENGINE).unwrap_or_default().to_string(),
            algo: snapshot.label(keys::RUN_ALGO).unwrap_or_default().to_string(),
            cycles: snapshot.counter(keys::RUN_CYCLES),
            propagation_cycles: snapshot.phase(keys::PHASE_PROPAGATION).map_or(0, |p| p.cycles),
            other_cycles: snapshot.phase(keys::PHASE_OTHER).map_or(0, |p| p.cycles),
            state_updates: snapshot.counter(keys::STATE_WRITES),
            useful_updates: snapshot.counter(keys::USEFUL_UPDATES),
            edges_processed: snapshot.counter(keys::EDGES_PROCESSED),
            llc_miss_rate: machine.llc_miss_rate(),
            useful_state_ratio: machine.state_lines.useful_ratio(),
            dram_bytes: snapshot.counter(keys::DRAM_BYTES),
            dram_reads: snapshot.counter(keys::DRAM_READS),
            energy,
            machine,
            batches: snapshot.counter(keys::RUN_BATCHES),
        }
    }

    /// Exports the metrics back into an observability snapshot.
    /// [`RunMetrics::from_snapshot`] of the result reproduces `self`
    /// (modulo the two ratios, which are re-derived from the machine
    /// statistics).
    #[must_use]
    pub fn to_snapshot(&self) -> Snapshot {
        let mut mem = MemoryRecorder::new();
        self.machine.export_into(&mut mem);
        self.energy.export_into(&mut mem);
        mem.counter(keys::STATE_WRITES, self.state_updates);
        mem.counter(keys::USEFUL_UPDATES, self.useful_updates);
        mem.counter(keys::EDGES_PROCESSED, self.edges_processed);
        mem.counter(keys::DRAM_BYTES, self.dram_bytes);
        mem.counter(keys::DRAM_READS, self.dram_reads);
        mem.counter(keys::RUN_CYCLES, self.cycles);
        mem.counter(keys::RUN_BATCHES, self.batches);
        mem.label(keys::RUN_ENGINE, &self.engine);
        mem.label(keys::RUN_ALGO, &self.algo);
        mem.span_exit(keys::PHASE_PROPAGATION, self.propagation_cycles);
        mem.span_exit(keys::PHASE_OTHER, self.other_cycles);
        mem.into_snapshot()
    }

    /// Ratio of useless updates to all updates (Fig 3b).
    #[must_use]
    pub fn useless_update_ratio(&self) -> f64 {
        if self.state_updates == 0 {
            0.0
        } else {
            (self.state_updates - self.useful_updates) as f64 / self.state_updates as f64
        }
    }

    /// Speedup of this run over `baseline` (cycles ratio).
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        if self.cycles == 0 {
            f64::INFINITY
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// Performance per watt relative to `baseline` (cycles·energy ratio).
    #[must_use]
    pub fn perf_per_watt_over(&self, baseline: &RunMetrics) -> f64 {
        let self_e = self.energy.total_nj();
        let base_e = baseline.energy.total_nj();
        if self.cycles == 0 || self_e == 0.0 {
            f64::INFINITY
        } else {
            // perf/W = (1/t) / (E/t) = 1/E ; relative = E_base / E_self.
            base_e / self_e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_splits_useful_and_useless() {
        let mut c = UpdateCounters::new(4);
        c.record_write(0);
        c.record_write(0);
        c.record_write(1);
        c.record_write(2);
        // Vertices 0 and 1 ended up changed; 2's write restored the old
        // value (e.g. canceled residual), so it is useless.
        let changed = vec![true, true, false, false];
        let (useful, useless) = c.classify(&changed);
        assert_eq!(useful, 2);
        assert_eq!(useless, 2);
        assert_eq!(c.total_writes(), 4);
    }

    #[test]
    fn reset_marks_keeps_totals() {
        let mut c = UpdateCounters::new(2);
        c.record_write(0);
        c.reset_marks();
        assert_eq!(c.total_writes(), 1);
        assert_eq!(c.writes_for(0), 0);
    }

    #[test]
    fn useless_ratio_handles_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.useless_update_ratio(), 0.0);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let a = RunMetrics { cycles: 100, ..Default::default() };
        let b = RunMetrics { cycles: 400, ..Default::default() };
        assert_eq!(a.speedup_over(&b), 4.0);
    }

    #[test]
    fn record_write_grows_past_constructed_size() {
        let mut c = UpdateCounters::new(2);
        c.record_write(5); // beyond the constructed size: must not panic
        c.record_write(5);
        c.record_write(0);
        assert_eq!(c.total_writes(), 3);
        assert_eq!(c.writes_for(5), 2);
        assert_eq!(c.writes_for(4), 0);
        assert_eq!(c.writes_for(100), 0, "unwritten out-of-range vertex reads as 0");
        // The grown vertex participates in classification.
        let changed = vec![false, false, false, false, false, true];
        let (useful, useless) = c.classify(&changed);
        assert_eq!((useful, useless), (1, 2));
    }

    #[test]
    fn classify_tolerates_changed_shorter_than_grown_table() {
        // Regression: record_write grows the per-vertex table past the
        // constructed size, but callers build `changed` from the *snapshot*
        // vertex count — classify must treat the out-of-range tail as
        // unchanged instead of indexing past `changed` and panicking.
        let mut c = UpdateCounters::new(2);
        c.record_write(0);
        c.record_write(9); // grows the table to 10 entries
        let changed = vec![true, false]; // still snapshot-sized
        let (useful, useless) = c.classify(&changed);
        assert_eq!((useful, useless), (1, 1));
        // Even an empty changed-set must classify without panicking.
        assert_eq!(c.classify(&[]), (0, 2));
    }

    #[test]
    fn snapshot_roundtrip_preserves_metrics() {
        let mut machine =
            MachineStats { accesses: 50, llc_hits: 9, llc_misses: 1, ..Default::default() };
        machine.state_lines.record(8);
        let m = RunMetrics {
            engine: "tdgraph".into(),
            algo: "sssp".into(),
            cycles: 1234,
            propagation_cycles: 1000,
            other_cycles: 234,
            state_updates: 77,
            useful_updates: 33,
            edges_processed: 500,
            llc_miss_rate: machine.llc_miss_rate(),
            useful_state_ratio: machine.state_lines.useful_ratio(),
            dram_bytes: 4096,
            dram_reads: 64,
            energy: EnergyBreakdown { core_nj: 1.5, cache_nj: 2.5, noc_nj: 0.5, dram_nj: 9.0 },
            machine,
            batches: 3,
        };
        let restored = RunMetrics::from_snapshot(&m.to_snapshot());
        assert_eq!(restored, m);
    }

    #[test]
    fn edges_counter() {
        let mut c = UpdateCounters::new(1);
        c.record_edges(7);
        c.record_edges(3);
        assert_eq!(c.edges_processed(), 10);
    }
}
