//! KickStarter (Vora et al., ASPLOS'17) execution model.
//!
//! KickStarter maintains value dependencies (which in-neighbor supplied
//! each vertex's value, at which level) so deletions can be trimmed. Its
//! propagation is an asynchronous push worklist. Relative to Ligra-o it
//! pays, per improving update, extra dependency-tree maintenance (a level
//! write alongside the parent write) and, per processed vertex, the
//! data-dependent branches of the trimming checks; it lacks Ligra-o's
//! SIMD/unrolling, modeled as one extra edge-process charge per edge.

use tdgraph_algos::traits::AlgorithmKind;
use tdgraph_graph::types::VertexId;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

use crate::common::Frontier;
use crate::ctx::BatchCtx;
use crate::engine::Engine;

/// The KickStarter engine model.
#[derive(Debug, Clone, Copy, Default)]
pub struct KickStarter;

impl Engine for KickStarter {
    fn name(&self) -> &'static str {
        "KickStarter"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let algo = ctx.algo;
        let mut work = Frontier::seeded(n, affected);
        while let Some(v) = work.pop() {
            let core = ctx.owner(v);
            ctx.schedule_op(core, Actor::Core, 1);
            // Trimming-check branches on the dependency metadata.
            ctx.read_parent(core, Actor::Core, v);
            ctx.branch_miss(core, Actor::Core, 1);
            match algo.kind() {
                AlgorithmKind::Monotonic => {
                    let s = ctx.read_state(core, Actor::Core, v);
                    if !s.is_finite() {
                        continue;
                    }
                    let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                    for i in lo..hi {
                        let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                        // No SIMD: one extra edge charge.
                        ctx.machine.compute(core, Actor::Core, Op::EdgeProcess, 1);
                        let cand = algo.mono_propagate(s, w);
                        let cur = ctx.read_state(core, Actor::Core, dst);
                        if algo.mono_better(cand, cur) {
                            ctx.write_state(core, Actor::Core, dst, cand);
                            // Dependency tree: parent + level.
                            ctx.write_parent(core, Actor::Core, dst, v);
                            ctx.machine.access(
                                core,
                                Actor::Core,
                                tdgraph_sim::address::Region::AuxMeta,
                                u64::from(dst),
                                true,
                            );
                            if work.push(dst) {
                                ctx.frontier_op(core, Actor::Core, dst);
                            }
                        }
                    }
                }
                AlgorithmKind::Accumulative => {
                    let eps = algo.epsilon();
                    let r = ctx.read_residual(core, Actor::Core, v);
                    if r.abs() < eps {
                        continue;
                    }
                    ctx.write_residual(core, Actor::Core, v, 0.0);
                    let s = ctx.read_state(core, Actor::Core, v);
                    ctx.write_state(core, Actor::Core, v, s + r);
                    let mass = ctx.out_mass[v as usize];
                    if mass <= 0.0 {
                        continue;
                    }
                    let (lo, hi) = ctx.read_offsets(core, Actor::Core, v);
                    for i in lo..hi {
                        let (dst, w) = ctx.read_edge(core, Actor::Core, i);
                        ctx.machine.compute(core, Actor::Core, Op::EdgeProcess, 1);
                        let push = algo.acc_scale(r, w, mass);
                        let cur = ctx.read_residual(core, Actor::Core, dst);
                        ctx.write_residual(core, Actor::Core, dst, cur + push);
                        if (cur + push).abs() >= eps && work.push(dst) {
                            ctx.frontier_op(core, Actor::Core, dst);
                        }
                    }
                }
            }
        }
        ctx.machine.end_phase(PhaseKind::Propagation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::converges_to_oracle;
    use tdgraph_algos::traits::Algo;

    #[test]
    fn sssp_converges() {
        converges_to_oracle(&mut KickStarter, Algo::sssp(0));
    }

    #[test]
    fn cc_converges() {
        converges_to_oracle(&mut KickStarter, Algo::cc());
    }

    #[test]
    fn pagerank_converges() {
        converges_to_oracle(&mut KickStarter, Algo::pagerank());
    }

    #[test]
    fn adsorption_converges() {
        converges_to_oracle(&mut KickStarter, Algo::adsorption());
    }
}
