//! The unified run configuration.
//!
//! [`RunConfig`] is the single options surface every way of running a
//! streaming experiment consumes: the one-shot harness entry points, the
//! sweep runner's cells, and the continuous-ingest service. It replaces
//! the former `RunOptions` struct plus the ad-hoc function-per-variant
//! entry points (`run_streaming`, `run_streaming_observed`, …) with one
//! builder and one pair of methods — [`RunConfig::run`] /
//! [`RunConfig::run_observed`] — parameterized by a [`RunSource`]: a
//! dataset to prepare, an already-prepared workload, or a recorded wire
//! schedule to replay. The old names survive as thin `#[deprecated]`
//! shims in [`crate::harness`] for one release.

use tdgraph_algos::traits::Algo;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::error::GraphError;
use tdgraph_graph::fault::FaultPlan;
use tdgraph_graph::quarantine::IngestMode;
use tdgraph_graph::store::StorageKind;
use tdgraph_graph::update::BatchComposer;
use tdgraph_graph::wire::RecordedSchedule;
use tdgraph_obs::{NullRecorder, Recorder};
use tdgraph_sim::config::SimConfig;
use tdgraph_sim::exec::ExecConfig;

use crate::engine::Engine;
use crate::error::EngineError;
use crate::session::{RunResult, StreamingSession};

/// When the differential oracle (the from-scratch solver of
/// `tdgraph_algos::scratch`) is compared against the engine's incremental
/// states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleMode {
    /// Never compare; the run's final `verify` is
    /// [`tdgraph_algos::verify::VerifyOutcome::Skipped`].
    Off,
    /// Compare after every `n`-th batch (and at the end). Mid-run
    /// mismatches are recorded in [`crate::session::OracleSummary`] and
    /// emitted as `oracle_mismatch` trace events instead of failing the
    /// run.
    EveryNBatches(usize),
    /// Compare once, after the last batch.
    #[default]
    Final,
}

/// What a run streams over.
///
/// `From` impls let callers pass `(dataset, sizing)` tuples or prepared
/// workloads directly to [`RunConfig::run`].
#[derive(Debug, Clone)]
pub enum RunSource {
    /// Prepare the synthetic streaming workload of a dataset profile.
    Dataset(Dataset, Sizing),
    /// Run over an already-prepared workload (lets callers customize
    /// graphs); batches come from the seeded [`BatchComposer`].
    Workload(StreamingWorkload),
    /// Replay a recorded wire schedule over a prepared workload. The
    /// schedule drives everything the composer otherwise would:
    /// `batches`, `batch_size`, `add_fraction`, `seed`, and `fault_plan`
    /// are ignored (recorded traffic is already post-corruption). This is
    /// the offline half of the service's determinism contract.
    Recorded {
        /// The base workload (its pending additions are unused; the
        /// schedule carries the updates).
        workload: StreamingWorkload,
        /// The recorded batches, replayed in order.
        schedule: RecordedSchedule,
    },
}

impl From<(Dataset, Sizing)> for RunSource {
    fn from((dataset, sizing): (Dataset, Sizing)) -> Self {
        RunSource::Dataset(dataset, sizing)
    }
}

impl From<StreamingWorkload> for RunSource {
    fn from(workload: StreamingWorkload) -> Self {
        RunSource::Workload(workload)
    }
}

/// Configuration of a streaming run — the one options surface consumed by
/// the harness shims, the sweep runner, and the ingest service.
///
/// Fields are public (sweep `tune` closures mutate them directly) and
/// every field also has a `with_*` builder setter.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Machine configuration.
    pub sim: SimConfig,
    /// Number of update batches to stream (composer-driven sources only).
    pub batches: usize,
    /// Updates per batch (`None` → the workload's scaled default).
    pub batch_size: Option<usize>,
    /// Fraction of additions per batch (Fig 24b sweeps this).
    pub add_fraction: f64,
    /// Hot-vertex fraction α (sizes `Coalesced_States`; §3.1 default 0.5 %).
    pub alpha: f64,
    /// Chunks per core for the ownership map.
    pub chunks_per_core: usize,
    /// Workload seed.
    pub seed: u64,
    /// Strict (error on first bad record) or lenient (quarantine) ingest.
    pub ingest: IngestMode,
    /// Deterministic input corruption ([`FaultPlan::none`] → untouched).
    pub fault_plan: FaultPlan,
    /// Differential-oracle cadence.
    pub oracle: OracleMode,
    /// Host execution configuration. A sharded [`ExecConfig`] runs the
    /// machine's record/replay pipeline over worker threads (optionally
    /// with partitioned reducer lanes and run-length boundary-event
    /// encoding); every metric, snapshot, and verified state stays
    /// byte-identical to [`ExecConfig::serial`].
    pub exec: ExecConfig,
    /// Mutable graph-store backend. [`StorageKind::Csr`] is the
    /// deterministic baseline (byte-identical to every pre-storage-axis
    /// surface); [`StorageKind::Hybrid`] applies batches in O(touched
    /// vertices) through the degree-adaptive tiers and additionally feeds
    /// the sim a storage-layout access trace. Either way every algorithm
    /// fixpoint is identical.
    pub storage: StorageKind,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::table1(),
            batches: 3,
            batch_size: None,
            add_fraction: 0.75,
            alpha: 0.005,
            chunks_per_core: 4,
            seed: 0x7D6,
            ingest: IngestMode::Strict,
            fault_plan: FaultPlan::none(),
            oracle: OracleMode::Final,
            exec: ExecConfig::serial(),
            storage: StorageKind::Csr,
        }
    }
}

impl RunConfig {
    /// Test-sized config: the 4-core machine and 2 batches.
    #[must_use]
    pub fn small() -> Self {
        Self { sim: SimConfig::small_test(), batches: 2, ..Self::default() }
    }

    /// Sets the machine configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the number of update batches to stream.
    #[must_use]
    pub fn with_batches(mut self, batches: usize) -> Self {
        self.batches = batches;
        self
    }

    /// Sets an explicit per-batch update count.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Sets the fraction of additions per batch.
    #[must_use]
    pub fn with_add_fraction(mut self, add_fraction: f64) -> Self {
        self.add_fraction = add_fraction;
        self
    }

    /// Sets the hot-vertex fraction α.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the chunks-per-core granularity of the ownership map.
    #[must_use]
    pub fn with_chunks_per_core(mut self, chunks_per_core: usize) -> Self {
        self.chunks_per_core = chunks_per_core;
        self
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets strict or lenient ingest.
    #[must_use]
    pub fn with_ingest(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// Arms deterministic input corruption.
    #[must_use]
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Sets the differential-oracle cadence.
    #[must_use]
    pub fn with_oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the host execution configuration. Accepts an [`ExecConfig`]
    /// directly or a legacy [`tdgraph_sim::ExecMode`](tdgraph_sim::exec::ExecMode)
    /// via `Into`.
    #[must_use]
    pub fn with_exec(mut self, exec: impl Into<ExecConfig>) -> Self {
        self.exec = exec.into();
        self
    }

    /// Sets the mutable graph-store backend.
    #[must_use]
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Validates the configuration, so a bad one is a typed error rather
    /// than a mid-run panic.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] naming the offending field, or
    /// [`EngineError::Sim`] from machine-configuration validation.
    pub fn validate(&self) -> Result<(), EngineError> {
        if !(0.0..=1.0).contains(&self.add_fraction) {
            return Err(EngineError::InvalidOptions {
                reason: format!("add_fraction must be in [0, 1], got {}", self.add_fraction),
            });
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(EngineError::InvalidOptions {
                reason: format!("alpha must be positive and finite, got {}", self.alpha),
            });
        }
        if self.chunks_per_core == 0 {
            return Err(EngineError::InvalidOptions {
                reason: "chunks_per_core must be >= 1".into(),
            });
        }
        if self.oracle == OracleMode::EveryNBatches(0) {
            return Err(EngineError::InvalidOptions {
                reason: "oracle cadence EveryNBatches(0) is meaningless; use Off".into(),
            });
        }
        self.exec.validate().map_err(|reason| EngineError::InvalidOptions { reason })?;
        self.sim.try_validate()?;
        Ok(())
    }

    /// Runs `engine` with `algo` over `source`, unobserved.
    ///
    /// # Errors
    ///
    /// Same as [`RunConfig::run_observed`].
    pub fn run<E: Engine + ?Sized>(
        &self,
        engine: &mut E,
        algo: Algo,
        source: impl Into<RunSource>,
    ) -> Result<RunResult, EngineError> {
        let mut null = NullRecorder;
        self.run_observed(engine, algo, source, &mut null)
    }

    /// Runs `engine` with `algo` over `source`, emitting live
    /// instrumentation into `recorder`: `updates.*` counters as the engine
    /// performs them, a span per phase with cycle and wall-clock
    /// attribution, and the final `sim.*` / `energy.*` / `run.*` totals.
    ///
    /// The returned [`crate::metrics::RunMetrics`] are always derived from
    /// an (internal) observability snapshot, so traced and untraced runs
    /// report byte-identical numbers; passing [`NullRecorder`] reduces
    /// every live emission to one predictable branch.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidOptions`] or [`EngineError::Sim`] if the
    /// config fails validation, [`EngineError::Graph`] if an update batch
    /// cannot be validated or applied under strict ingest (e.g. an
    /// out-of-range vertex id in caller-provided data).
    pub fn run_observed<E: Engine + ?Sized>(
        &self,
        engine: &mut E,
        algo: Algo,
        source: impl Into<RunSource>,
        recorder: &mut dyn Recorder,
    ) -> Result<RunResult, EngineError> {
        match source.into() {
            RunSource::Dataset(dataset, sizing) => {
                let workload = StreamingWorkload::try_prepare(dataset, sizing)
                    .map_err(|e: GraphError| EngineError::Graph(e))?;
                self.run_composed(engine, algo, workload, recorder)
            }
            RunSource::Workload(workload) => self.run_composed(engine, algo, workload, recorder),
            RunSource::Recorded { workload, schedule } => {
                let mut session = StreamingSession::new(algo, workload, self.clone())?;
                for entries in schedule.batches() {
                    session.ingest_entries(engine, entries, recorder)?;
                }
                Ok(session.finish(engine, recorder))
            }
        }
    }

    /// The composer-driven loop: seeded synthetic batches, optional
    /// deterministic corruption keyed by the loop index.
    fn run_composed<E: Engine + ?Sized>(
        &self,
        engine: &mut E,
        algo: Algo,
        workload: StreamingWorkload,
        recorder: &mut dyn Recorder,
    ) -> Result<RunResult, EngineError> {
        let mut session = StreamingSession::new(algo, workload, self.clone())?;
        let n = session.vertex_count();
        let mut composer = BatchComposer::new(session.take_pending(), self.add_fraction, self.seed);
        for batch_index in 0..self.batches {
            let present = session.present_edges();
            let Some(batch) = composer.next_batch(session.batch_size(), &present) else {
                break;
            };
            // Deterministic input corruption, below the composer: the same
            // `(fault seed, batch index)` always produces the same damage.
            let raw = if self.fault_plan.is_noop() {
                batch.updates().to_vec()
            } else {
                self.fault_plan.corrupt_updates(batch_index as u64, batch.updates(), n)
            };
            session.ingest_batch(engine, raw, recorder)?;
        }
        Ok(session.finish(engine, recorder))
    }
}
