//! Shared propagation building blocks used by the software engines.

use tdgraph_algos::traits::{Algo, AlgorithmKind};
use tdgraph_graph::types::VertexId;
use tdgraph_sim::stats::Actor;

use crate::ctx::BatchCtx;

/// A deduplicating frontier (the `Active_Vertices`-backed worklist of the
/// software systems).
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    items: Vec<VertexId>,
    queued: Vec<bool>,
}

impl Frontier {
    /// Creates a frontier for `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { items: Vec::new(), queued: vec![false; n] }
    }

    /// Seeds from a slice.
    #[must_use]
    pub fn seeded(n: usize, seed: &[VertexId]) -> Self {
        let mut f = Self::new(n);
        for &v in seed {
            f.push(v);
        }
        f
    }

    /// Pushes `v` unless already queued. Returns whether it was added.
    pub fn push(&mut self, v: VertexId) -> bool {
        if self.queued[v as usize] {
            false
        } else {
            self.queued[v as usize] = true;
            self.items.push(v);
            true
        }
    }

    /// Pops from the back (LIFO order, used by async engines).
    pub fn pop(&mut self) -> Option<VertexId> {
        let v = self.items.pop()?;
        self.queued[v as usize] = false;
        Some(v)
    }

    /// Takes the whole frontier, clearing it (synchronous rounds).
    pub fn drain_all(&mut self) -> Vec<VertexId> {
        for &v in &self.items {
            self.queued[v as usize] = false;
        }
        std::mem::take(&mut self.items)
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of queued vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The queued vertices, in insertion order, without draining.
    #[must_use]
    pub fn peek(&self) -> &[VertexId] {
        &self.items
    }
}

/// Push-relaxes vertex `v` (monotonic): reads its state and relaxes every
/// out-edge, pushing improved destinations onto `next`.
pub fn push_relax(
    ctx: &mut BatchCtx<'_>,
    core: usize,
    actor: Actor,
    v: VertexId,
    next: &mut Frontier,
) {
    debug_assert_eq!(ctx.algo.kind(), AlgorithmKind::Monotonic);
    let algo = ctx.algo;
    let s = ctx.read_state(core, actor, v);
    if !s.is_finite() {
        return;
    }
    let (lo, hi) = ctx.read_offsets(core, actor, v);
    for i in lo..hi {
        let (dst, w) = ctx.read_edge(core, actor, i);
        let cand = algo.mono_propagate(s, w);
        let cur = ctx.read_state(core, actor, dst);
        if algo.mono_better(cand, cur) {
            ctx.write_state(core, actor, dst, cand);
            ctx.write_parent(core, actor, dst, v);
            if next.push(dst) {
                ctx.frontier_op(core, actor, dst);
            }
        }
    }
}

/// Expands vertex `v` (accumulative): applies its pending residual to its
/// state and pushes scaled residuals to its out-neighbors, activating those
/// that cross the threshold.
pub fn acc_expand(
    ctx: &mut BatchCtx<'_>,
    core: usize,
    actor: Actor,
    v: VertexId,
    next: &mut Frontier,
) {
    debug_assert_eq!(ctx.algo.kind(), AlgorithmKind::Accumulative);
    let algo = ctx.algo;
    let eps = algo.epsilon();
    let r = ctx.read_residual(core, actor, v);
    if r.abs() < eps {
        return;
    }
    ctx.write_residual(core, actor, v, 0.0);
    let s = ctx.read_state(core, actor, v);
    ctx.write_state(core, actor, v, s + r);
    let mass = ctx.out_mass[v as usize];
    if mass <= 0.0 {
        return;
    }
    let (lo, hi) = ctx.read_offsets(core, actor, v);
    for i in lo..hi {
        let (dst, w) = ctx.read_edge(core, actor, i);
        let push = algo.acc_scale(r, w, mass);
        let cur = ctx.read_residual(core, actor, dst);
        ctx.write_residual(core, actor, dst, cur + push);
        if (cur + push).abs() >= eps && next.push(dst) {
            ctx.frontier_op(core, actor, dst);
        }
    }
}

/// Dispatches to [`push_relax`] or [`acc_expand`] by algorithm kind.
pub fn process_vertex(
    ctx: &mut BatchCtx<'_>,
    core: usize,
    actor: Actor,
    v: VertexId,
    next: &mut Frontier,
) {
    match ctx.algo.kind() {
        AlgorithmKind::Monotonic => push_relax(ctx, core, actor, v, next),
        AlgorithmKind::Accumulative => acc_expand(ctx, core, actor, v, next),
    }
}

/// Convenience: whether `algo` is monotonic.
#[must_use]
pub fn is_monotonic(algo: &Algo) -> bool {
    algo.kind() == AlgorithmKind::Monotonic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_dedups() {
        let mut f = Frontier::new(4);
        assert!(f.push(2));
        assert!(!f.push(2));
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop(), Some(2));
        assert!(f.push(2), "pop must clear the queued mark");
    }

    #[test]
    fn drain_all_clears_marks() {
        let mut f = Frontier::seeded(4, &[0, 3]);
        let drained = f.drain_all();
        assert_eq!(drained, vec![0, 3]);
        assert!(f.is_empty());
        assert!(f.push(0));
    }
}
