//! Ligra-o: the paper's optimized software baseline (§4.1).
//!
//! Ligra extended with the JetStream-style incremental technique, software
//! prefetching, loop unrolling and SIMD. Its schedule is synchronous
//! push-based frontier processing: every round relaxes all out-edges of the
//! current frontier and barriers. The optimizations show up as the *lowest*
//! per-edge instruction overhead of the four software systems (the shared
//! cost table is calibrated to it), but the schedule still propagates each
//! affected vertex's state independently — the redundant-update and
//! irregular-access problems of §2.2 arise naturally.

use tdgraph_graph::types::VertexId;
use tdgraph_sim::stats::{Actor, PhaseKind};

use crate::common::{process_vertex, Frontier};
use crate::ctx::BatchCtx;
use crate::engine::Engine;

/// The Ligra-o baseline engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct LigraO;

impl Engine for LigraO {
    fn name(&self) -> &'static str {
        "Ligra-o"
    }

    fn process_batch(&mut self, ctx: &mut BatchCtx<'_>, affected: &[VertexId]) {
        let n = ctx.graph.vertex_count();
        let mut frontier = Frontier::seeded(n, affected);
        while !frontier.is_empty() {
            let round = frontier.drain_all();
            let mut next = Frontier::new(n);
            for v in round {
                let core = ctx.owner(v);
                ctx.schedule_op(core, Actor::Core, 1);
                ctx.read_active(core, Actor::Core, v);
                process_vertex(ctx, core, Actor::Core, v, &mut next);
            }
            ctx.machine.end_phase(PhaseKind::Propagation);
            frontier = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{converges_to_oracle, converges_with_deletions};
    use tdgraph_algos::traits::Algo;

    #[test]
    fn sssp_converges_to_oracle() {
        converges_to_oracle(&mut LigraO, Algo::sssp(0));
    }

    #[test]
    fn cc_converges_to_oracle() {
        converges_to_oracle(&mut LigraO, Algo::cc());
    }

    #[test]
    fn pagerank_converges_to_oracle() {
        converges_to_oracle(&mut LigraO, Algo::pagerank());
    }

    #[test]
    fn adsorption_converges_to_oracle() {
        converges_to_oracle(&mut LigraO, Algo::adsorption());
    }

    #[test]
    fn sssp_with_deletions_converges() {
        converges_with_deletions(&mut LigraO, Algo::sssp(0));
    }
}
