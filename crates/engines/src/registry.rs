//! Name → engine-factory registry.
//!
//! [`EngineRegistry`] decouples *naming* an engine from *constructing* it:
//! every engine the workspace provides registers a boxed factory under a
//! stable kebab-case key, and sweep specifications refer to engines purely
//! by key. Downstream crates register their own engines the same way and
//! immediately gain access to the whole experiment pipeline — no enum to
//! extend, no match to patch.
//!
//! This crate's [`EngineRegistry::with_software`] registers the software
//! systems; the `tdgraph` facade layers the accelerator models on top in
//! its `default_registry`.

use std::fmt;

use crate::dzig::Dzig;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::graphbolt::GraphBolt;
use crate::kickstarter::KickStarter;
use crate::ligra_do::LigraDO;
use crate::ligra_o::LigraO;

/// A boxed engine constructor. Factories are shared across sweep worker
/// threads, hence `Send + Sync`.
pub type EngineFactory = Box<dyn Fn() -> Box<dyn Engine> + Send + Sync>;

/// Registry keys of the software engines registered by
/// [`EngineRegistry::with_software`], in registration order.
pub const SOFTWARE_KEYS: [&str; 5] = ["ligra-o", "ligra-do", "graphbolt", "kickstarter", "dzig"];

/// An ordered name → factory map of execution engines.
///
/// Registration order is preserved: [`EngineRegistry::names`] and every
/// sweep expansion built from it are deterministic.
#[derive(Default)]
pub struct EngineRegistry {
    entries: Vec<(String, EngineFactory)>,
}

impl EngineRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with the five software systems pre-registered under
    /// [`SOFTWARE_KEYS`].
    #[must_use]
    pub fn with_software() -> Self {
        let mut r = Self::new();
        r.register("ligra-o", || Box::new(LigraO));
        r.register("ligra-do", || Box::new(LigraDO));
        r.register("graphbolt", || Box::new(GraphBolt));
        r.register("kickstarter", || Box::new(KickStarter));
        r.register("dzig", || Box::new(Dzig));
        r
    }

    /// Registers `factory` under `key`, replacing any previous
    /// registration of the same key in place (its position in the
    /// iteration order is kept).
    pub fn register<F>(&mut self, key: impl Into<String>, factory: F) -> &mut Self
    where
        F: Fn() -> Box<dyn Engine> + Send + Sync + 'static,
    {
        let key = key.into();
        let boxed: EngineFactory = Box::new(factory);
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = boxed,
            None => self.entries.push((key, boxed)),
        }
        self
    }

    /// Instantiates the engine registered under `key`.
    #[must_use]
    pub fn build(&self, key: &str) -> Option<Box<dyn Engine>> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, f)| f())
    }

    /// Instantiates the engine registered under `key`, reporting an
    /// unresolved key as a typed [`EngineError::UnknownEngine`] that names
    /// every registered key — the error sweeps record per cell instead of
    /// panicking a worker.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownEngine`] if `key` is not registered.
    pub fn try_build(&self, key: &str) -> Result<Box<dyn Engine>, EngineError> {
        self.build(key).ok_or_else(|| EngineError::UnknownEngine {
            key: key.to_string(),
            known: self.names().map(String::from).collect(),
        })
    }

    /// Whether `key` is registered.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Registered keys, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Number of registered engines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineRegistry").field("names", &self.names().collect::<Vec<_>>()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::BatchCtx;
    use tdgraph_graph::types::VertexId;

    #[test]
    fn software_registry_builds_every_key() {
        let r = EngineRegistry::with_software();
        assert_eq!(r.len(), SOFTWARE_KEYS.len());
        for key in SOFTWARE_KEYS {
            let engine = r.build(key).expect("software key registered");
            assert!(!engine.name().is_empty());
        }
    }

    #[test]
    fn unknown_key_builds_nothing() {
        let r = EngineRegistry::with_software();
        assert!(r.build("warp-drive").is_none());
        assert!(!r.contains("warp-drive"));
    }

    #[test]
    fn try_build_reports_unknown_keys_with_the_known_set() {
        let r = EngineRegistry::with_software();
        assert!(r.try_build("ligra-o").is_ok());
        let Err(err) = r.try_build("warp-drive") else {
            panic!("expected an unknown-engine error");
        };
        match err {
            EngineError::UnknownEngine { key, known } => {
                assert_eq!(key, "warp-drive");
                assert_eq!(known, SOFTWARE_KEYS.map(String::from).to_vec());
            }
            other => panic!("expected UnknownEngine, got {other}"),
        }
    }

    #[test]
    fn register_replaces_in_place() {
        struct Nop(&'static str);
        impl Engine for Nop {
            fn name(&self) -> &'static str {
                self.0
            }
            fn process_batch(&mut self, _: &mut BatchCtx<'_>, _: &[VertexId]) {}
        }

        let mut r = EngineRegistry::new();
        r.register("a", || Box::new(Nop("first")));
        r.register("b", || Box::new(Nop("b")));
        r.register("a", || Box::new(Nop("second")));
        assert_eq!(r.names().collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(r.build("a").unwrap().name(), "second");
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineRegistry>();
    }
}
