//! The streaming-run harness (compatibility surface).
//!
//! The §4.1 methodology — load 50 % of the edges, compute the initial
//! fixed point, stream batches of mixed updates, verify against the
//! from-scratch oracle — now lives in two places: the
//! [`crate::config::RunConfig`] builder (options + entry points) and
//! [`crate::session::StreamingSession`] (the per-batch core). This module
//! re-exports both so existing `harness::` paths keep working, and keeps
//! the four historical free functions as thin `#[deprecated]` shims over
//! [`RunConfig::run`] / [`RunConfig::run_observed`] for one release.

use tdgraph_algos::traits::Algo;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_obs::Recorder;

use crate::engine::Engine;
use crate::error::EngineError;

pub use crate::config::{OracleMode, RunConfig, RunSource};
pub use crate::session::{quarantine_key, OracleCheck, OracleSummary, RunResult, StreamingSession};

/// Former name of [`RunConfig`].
#[deprecated(since = "0.6.0", note = "renamed to RunConfig")]
pub type RunOptions = RunConfig;

/// Runs `engine` with `algo` over the streaming workload of `dataset`.
///
/// # Errors
///
/// Same as [`RunConfig::run_observed`].
#[deprecated(since = "0.6.0", note = "use RunConfig::run with RunSource::Dataset")]
pub fn run_streaming<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    dataset: Dataset,
    sizing: Sizing,
    opts: &RunConfig,
) -> Result<RunResult, EngineError> {
    opts.run(engine, algo, RunSource::Dataset(dataset, sizing))
}

/// Like [`run_streaming`], but emits live instrumentation into `recorder`.
///
/// # Errors
///
/// Same as [`RunConfig::run_observed`].
#[deprecated(since = "0.6.0", note = "use RunConfig::run_observed with RunSource::Dataset")]
pub fn run_streaming_observed<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    dataset: Dataset,
    sizing: Sizing,
    opts: &RunConfig,
    recorder: &mut dyn Recorder,
) -> Result<RunResult, EngineError> {
    opts.run_observed(engine, algo, RunSource::Dataset(dataset, sizing), recorder)
}

/// Runs over an already-prepared workload (lets callers customize graphs).
///
/// # Errors
///
/// Same as [`RunConfig::run_observed`].
#[deprecated(since = "0.6.0", note = "use RunConfig::run with RunSource::Workload")]
pub fn run_streaming_workload<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    workload: StreamingWorkload,
    opts: &RunConfig,
) -> Result<RunResult, EngineError> {
    opts.run(engine, algo, RunSource::Workload(workload))
}

/// Like [`run_streaming_workload`], but observed.
///
/// # Errors
///
/// Same as [`RunConfig::run_observed`].
#[deprecated(since = "0.6.0", note = "use RunConfig::run_observed with RunSource::Workload")]
pub fn run_streaming_workload_observed<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    workload: StreamingWorkload,
    opts: &RunConfig,
    recorder: &mut dyn Recorder,
) -> Result<RunResult, EngineError> {
    opts.run_observed(engine, algo, RunSource::Workload(workload), recorder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligra_o::LigraO;
    use tdgraph_algos::verify::VerifyOutcome;
    use tdgraph_graph::fault::FaultPlan;
    use tdgraph_graph::quarantine::{IngestMode, QuarantineReason};
    use tdgraph_obs::MemoryRecorder;
    use tdgraph_sim::exec::{EventEncoding, ExecConfig, MAX_REDUCE_LANES};

    fn amazon_tiny(cfg: &RunConfig) -> Result<RunResult, EngineError> {
        cfg.run(&mut LigraO, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny))
    }

    #[test]
    fn ligra_o_runs_and_verifies_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            let res =
                RunConfig::small().run(&mut LigraO, algo, (Dataset::Amazon, Sizing::Tiny)).unwrap();
            assert!(res.verify.is_match(), "{} failed verification: {:?}", algo.name(), res.verify);
            assert!(res.metrics.cycles > 0);
            assert_eq!(res.metrics.batches, 2);
        }
    }

    #[test]
    fn deprecated_shims_match_the_new_entry_point() {
        let new = amazon_tiny(&RunConfig::small()).unwrap();
        #[allow(deprecated)]
        let old = run_streaming(
            &mut LigraO,
            Algo::sssp(0),
            Dataset::Amazon,
            Sizing::Tiny,
            &RunConfig::small(),
        )
        .unwrap();
        assert_eq!(format!("{:?}", old.metrics), format!("{:?}", new.metrics));
        assert_eq!(old.verify, new.verify);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let res = RunConfig::small()
            .run(&mut LigraO, Algo::sssp(0), (Dataset::Dblp, Sizing::Tiny))
            .unwrap();
        let m = &res.metrics;
        assert_eq!(m.cycles, m.propagation_cycles + m.other_cycles);
        assert!(m.useful_updates <= m.state_updates);
        assert!((0.0..=1.0).contains(&m.llc_miss_rate));
        assert!((0.0..=1.0).contains(&m.useful_state_ratio));
    }

    #[test]
    fn deletion_heavy_batches_verify() {
        let cfg = RunConfig::small().with_add_fraction(0.2);
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank()] {
            let res = cfg.run(&mut LigraO, algo, (Dataset::Amazon, Sizing::Tiny)).unwrap();
            assert!(
                res.verify.is_match(),
                "{} deletion-heavy failed: {:?}",
                algo.name(),
                res.verify
            );
        }
    }

    #[test]
    fn out_of_range_add_fraction_is_a_typed_error() {
        let err = amazon_tiny(&RunConfig::small().with_add_fraction(1.5)).unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions { .. }), "got {err}");
        assert!(err.to_string().contains("add_fraction"));
    }

    #[test]
    fn invalid_machine_config_is_a_typed_error() {
        let mut cfg = RunConfig::small();
        cfg.sim.mesh_dim = 1; // cannot host 4 cores
        let err = amazon_tiny(&cfg).unwrap_err();
        assert!(matches!(err, EngineError::Sim(_)), "got {err}");
    }

    #[test]
    fn zero_oracle_cadence_is_a_typed_error() {
        let err =
            amazon_tiny(&RunConfig::small().with_oracle(OracleMode::EveryNBatches(0))).unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions { .. }), "got {err}");
    }

    #[test]
    fn oracle_off_skips_final_verification() {
        let res = amazon_tiny(&RunConfig::small().with_oracle(OracleMode::Off)).unwrap();
        assert_eq!(res.verify, VerifyOutcome::Skipped);
        assert_eq!(res.oracle.checks, 0);
        assert!(res.quarantine.is_empty());
    }

    #[test]
    fn mid_run_oracle_checks_every_batch() {
        let res =
            amazon_tiny(&RunConfig::small().with_oracle(OracleMode::EveryNBatches(1))).unwrap();
        assert_eq!(res.oracle.checks, res.metrics.batches);
        assert_eq!(res.oracle.mismatches, 0);
        assert!(res.verify.is_match());
    }

    #[test]
    fn strict_run_with_faults_is_a_typed_error() {
        let cfg =
            RunConfig::small().with_fault_plan(FaultPlan::seeded(3).with_absent_deletions(1.0));
        let err = amazon_tiny(&cfg).unwrap_err();
        assert!(matches!(err, EngineError::Graph(_)), "got {err}");
    }

    #[test]
    fn lenient_run_with_faults_degrades_with_evidence() {
        let cfg = RunConfig::small().with_ingest(IngestMode::Lenient).with_fault_plan(
            FaultPlan::seeded(3)
                .with_absent_deletions(1.0)
                .with_nan_weights(0.3)
                .with_out_of_range_ids(0.2),
        );
        let res = amazon_tiny(&cfg).unwrap();
        assert!(!res.quarantine.is_empty(), "armed faults must quarantine something");
        assert!(res.quarantine.count(QuarantineReason::AbsentDeletion) > 0);
        assert!(
            res.verify.is_match(),
            "surviving updates still verify against the oracle: {:?}",
            res.verify
        );
    }

    #[test]
    fn noop_fault_plan_under_lenient_matches_strict_run_exactly() {
        let run = |cfg: &RunConfig| {
            cfg.run(&mut LigraO, Algo::cc(), (Dataset::Amazon, Sizing::Tiny)).unwrap()
        };
        let strict = run(&RunConfig::small());
        let lenient = run(&RunConfig::small()
            .with_ingest(IngestMode::Lenient)
            .with_fault_plan(FaultPlan::none()));
        assert!(lenient.quarantine.is_empty());
        assert_eq!(format!("{:?}", lenient.metrics), format!("{:?}", strict.metrics));
        assert_eq!(lenient.verify, strict.verify);
    }

    #[test]
    fn out_of_range_reduce_lanes_is_a_typed_error() {
        for lanes in [0, MAX_REDUCE_LANES + 1] {
            let cfg =
                RunConfig::small().with_exec(ExecConfig::serial().shards(2).reduce_lanes(lanes));
            let err = amazon_tiny(&cfg).unwrap_err();
            assert!(matches!(err, EngineError::InvalidOptions { .. }), "lanes={lanes}: got {err}");
        }
    }

    #[test]
    fn legacy_exec_mode_still_configures_runs() {
        #[allow(deprecated)]
        use tdgraph_sim::exec::ExecMode;
        #[allow(deprecated)]
        let old = amazon_tiny(&RunConfig::small().with_exec(ExecMode::Sharded(2))).unwrap();
        let new =
            amazon_tiny(&RunConfig::small().with_exec(ExecConfig::serial().shards(2))).unwrap();
        assert_eq!(format!("{:?}", old.metrics), format!("{:?}", new.metrics));
        assert_eq!(old.verify, new.verify);
    }

    #[test]
    fn sharded_run_matches_serial_byte_for_byte() {
        let serial = amazon_tiny(&RunConfig::small()).unwrap();
        assert!(serial.exec.is_none(), "serial runs carry no pipeline report");
        for exec in [
            ExecConfig::serial().shards(1),
            ExecConfig::serial().shards(2),
            ExecConfig::serial().shards(4),
            ExecConfig::serial().shards(4).reduce_lanes(2),
            ExecConfig::serial().shards(2).reduce_lanes(4).event_encoding(EventEncoding::RunLength),
        ] {
            let sharded = amazon_tiny(&RunConfig::small().with_exec(exec)).unwrap();
            assert_eq!(
                format!("{:?}", sharded.metrics),
                format!("{:?}", serial.metrics),
                "{} metrics diverge from serial",
                exec.label()
            );
            assert_eq!(sharded.verify, serial.verify);
            let report = sharded.exec.expect("sharded runs carry a pipeline report");
            assert_eq!(report.reduce_lanes, exec.lanes());
            assert_eq!(report.encoding, exec.encoding());
        }
    }

    #[test]
    fn every_software_engine_matches_serial_under_sharding() {
        // Engines with mid-batch `end_phase` sync points (GraphBolt, Dzig)
        // exercise the pipeline's multi-phase path; the rest the plain
        // path. All must be byte-identical to their serial runs.
        let registry = crate::registry::EngineRegistry::with_software();
        for key in crate::registry::SOFTWARE_KEYS {
            let mut engine = registry.build(key).expect("software engine registered");
            let serial = RunConfig::small()
                .run(&mut *engine, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny))
                .unwrap();
            let mut engine = registry.build(key).expect("software engine registered");
            let sharded = RunConfig::small()
                .with_exec(ExecConfig::serial().shards(2).reduce_lanes(2))
                .run(&mut *engine, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny))
                .unwrap();
            assert_eq!(
                format!("{:?}", sharded.metrics),
                format!("{:?}", serial.metrics),
                "{key}: sharded2x2 metrics diverge from serial"
            );
            assert_eq!(sharded.verify, serial.verify, "{key}: verification outcome diverges");
        }
    }

    #[test]
    fn sharded_observed_run_snapshot_matches_serial() {
        let run = |exec: ExecConfig| {
            let mut rec = MemoryRecorder::new();
            RunConfig::small()
                .with_exec(exec)
                .run_observed(
                    &mut LigraO,
                    Algo::pagerank(),
                    (Dataset::Amazon, Sizing::Tiny),
                    &mut rec,
                )
                .unwrap();
            // Wall-clock excluded: it is host time, not model output.
            rec.into_snapshot().canonical_json_line()
        };
        let serial = run(ExecConfig::serial());
        assert_eq!(serial, run(ExecConfig::serial().shards(2)));
        assert_eq!(serial, run(ExecConfig::serial().shards(4).reduce_lanes(2)));
        assert_eq!(
            serial,
            run(ExecConfig::serial()
                .shards(2)
                .reduce_lanes(4)
                .event_encoding(EventEncoding::RunLength))
        );
    }

    #[test]
    fn wrong_states_engine_is_caught_by_the_mid_run_oracle() {
        use crate::testutil::{FaultMode, FaultyEngine};
        let mut engine = FaultyEngine::new(FaultMode::WrongStatesOnBatch(0));
        let res = RunConfig::small()
            .with_oracle(OracleMode::EveryNBatches(1))
            .run(&mut engine, Algo::sssp(0), (Dataset::Amazon, Sizing::Tiny))
            .unwrap();
        assert!(res.oracle.mismatches > 0, "corrupted states must be detected mid-run");
        assert!(!res.oracle.records.is_empty());
        assert!(!res.verify.is_match());
    }

    #[test]
    fn recorded_replay_of_a_composed_run_matches_when_schedule_mirrors_batches() {
        use tdgraph_graph::wire::{RecordedEntry, RecordedSchedule};
        // Record the exact batches a composed run would form, then replay
        // them through RunSource::Recorded and compare byte-for-byte.
        let cfg = RunConfig::small();
        let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
        let mut schedule = RecordedSchedule::new();
        {
            let mut session =
                StreamingSession::new(Algo::sssp(0), workload.clone(), cfg.clone()).unwrap();
            let mut composer = tdgraph_graph::update::BatchComposer::new(
                session.take_pending(),
                cfg.add_fraction,
                cfg.seed,
            );
            for _ in 0..cfg.batches {
                let present = session.present_edges();
                let Some(batch) = composer.next_batch(session.batch_size(), &present) else {
                    break;
                };
                schedule.push_batch(
                    batch.updates().iter().map(|u| RecordedEntry::Update(*u)).collect(),
                );
                // Advance the session so `present_edges` evolves as in a
                // real run.
                let mut null = tdgraph_obs::NullRecorder;
                session.ingest_batch(&mut LigraO, batch.updates().to_vec(), &mut null).unwrap();
            }
        }
        let composed = cfg.run(&mut LigraO, Algo::sssp(0), workload.clone()).unwrap();
        let replayed = cfg
            .run(&mut LigraO, Algo::sssp(0), RunSource::Recorded { workload, schedule })
            .unwrap();
        assert_eq!(format!("{:?}", replayed.metrics), format!("{:?}", composed.metrics));
        assert_eq!(replayed.verify, composed.verify);
    }
}
