//! The streaming-run harness.
//!
//! Reproduces the paper's methodology (§4.1): load 50 % of the edges,
//! compute the initial fixed point, then stream batches of mixed updates.
//! Per batch: apply updates, seed the incremental computation (charged as
//! "other" time), hand the affected set to the engine (propagation time),
//! and collect metrics. After the last batch the final states are verified
//! against the from-scratch oracle.

use tdgraph_algos::incremental::{seed_after_batch, AlgoState};
use tdgraph_algos::scratch::{out_mass, solve};
use tdgraph_algos::traits::Algo;
use tdgraph_algos::verify::{compare, VerifyOutcome};
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::fault::FaultPlan;
use tdgraph_graph::partition::{partition_by_edges, ShardPlan};
use tdgraph_graph::quarantine::{IngestMode, QuarantineReason, QuarantineReport};
use tdgraph_graph::update::{BatchComposer, UpdateBatch};
use tdgraph_obs::{keys, MemoryRecorder, NullRecorder, Recorder, RecorderHandle, TraceEvent};
use tdgraph_sim::address::AddressSpace;
use tdgraph_sim::config::SimConfig;
use tdgraph_sim::energy::{EnergyBreakdown, EnergyConstants};
use tdgraph_sim::exec::ExecMode;
use tdgraph_sim::machine::Machine;
use tdgraph_sim::stats::{Actor, Op, PhaseKind};

use crate::ctx::{BatchCtx, MachineTap};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::metrics::{RunMetrics, UpdateCounters};

/// When the differential oracle (the from-scratch solver of
/// `tdgraph_algos::scratch`) is compared against the engine's incremental
/// states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleMode {
    /// Never compare; the run's final `verify` is
    /// [`VerifyOutcome::Skipped`].
    Off,
    /// Compare after every `n`-th batch (and at the end). Mid-run
    /// mismatches are recorded in [`OracleSummary`] and emitted as
    /// `oracle_mismatch` trace events instead of failing the run.
    EveryNBatches(usize),
    /// Compare once, after the last batch (today's behavior).
    #[default]
    Final,
}

/// One mid-run oracle comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleCheck {
    /// 1-based batch count at which the comparison ran.
    pub batch: u64,
    /// What the comparison found.
    pub outcome: VerifyOutcome,
}

/// Bounded cap on retained mid-run mismatch records.
const ORACLE_RECORD_CAP: usize = 8;

/// Accounting of every mid-run oracle comparison
/// ([`OracleMode::EveryNBatches`]); empty under `Off` / `Final`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleSummary {
    /// Comparisons performed mid-run.
    pub checks: u64,
    /// Comparisons that found a mismatch.
    pub mismatches: u64,
    /// First few mismatching comparisons (bounded).
    pub records: Vec<OracleCheck>,
}

impl OracleSummary {
    fn record(&mut self, batch: u64, outcome: &VerifyOutcome) {
        self.checks += 1;
        if !outcome.is_match() {
            self.mismatches += 1;
            if self.records.len() < ORACLE_RECORD_CAP {
                self.records.push(OracleCheck { batch, outcome: outcome.clone() });
            }
        }
    }
}

/// The observability counter key for one quarantine reason.
#[must_use]
pub fn quarantine_key(reason: QuarantineReason) -> &'static str {
    match reason {
        QuarantineReason::MalformedLine => keys::QUARANTINE_MALFORMED_LINE,
        QuarantineReason::IdOverflow => keys::QUARANTINE_ID_OVERFLOW,
        QuarantineReason::IoInterrupted => keys::QUARANTINE_IO_INTERRUPTED,
        QuarantineReason::SelfLoop => keys::QUARANTINE_SELF_LOOP,
        QuarantineReason::ConflictingUpdate => keys::QUARANTINE_CONFLICTING_UPDATE,
        QuarantineReason::NonFiniteWeight => keys::QUARANTINE_NON_FINITE_WEIGHT,
        QuarantineReason::VertexOutOfBounds => keys::QUARANTINE_VERTEX_OUT_OF_BOUNDS,
        QuarantineReason::AbsentDeletion => keys::QUARANTINE_ABSENT_DELETION,
    }
}

/// Options controlling a streaming run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Machine configuration.
    pub sim: SimConfig,
    /// Number of update batches to stream.
    pub batches: usize,
    /// Updates per batch (`None` → the workload's scaled default).
    pub batch_size: Option<usize>,
    /// Fraction of additions per batch (Fig 24b sweeps this).
    pub add_fraction: f64,
    /// Hot-vertex fraction α (sizes `Coalesced_States`; §3.1 default 0.5 %).
    pub alpha: f64,
    /// Chunks per core for the ownership map.
    pub chunks_per_core: usize,
    /// Workload seed.
    pub seed: u64,
    /// Strict (error on first bad record) or lenient (quarantine) ingest.
    pub ingest: IngestMode,
    /// Deterministic input corruption ([`FaultPlan::none`] → untouched).
    pub fault_plan: FaultPlan,
    /// Differential-oracle cadence.
    pub oracle: OracleMode,
    /// Host execution mode. [`ExecMode::Sharded`]`(n)` runs the machine's
    /// record/replay pipeline over `n` worker threads; every metric,
    /// snapshot, and verified state stays byte-identical to
    /// [`ExecMode::Serial`].
    pub exec: ExecMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            sim: SimConfig::table1(),
            batches: 3,
            batch_size: None,
            add_fraction: 0.75,
            alpha: 0.005,
            chunks_per_core: 4,
            seed: 0x7D6,
            ingest: IngestMode::Strict,
            fault_plan: FaultPlan::none(),
            oracle: OracleMode::Final,
            exec: ExecMode::Serial,
        }
    }
}

impl RunOptions {
    /// Test-sized options: the 4-core machine and 2 batches.
    #[must_use]
    pub fn small() -> Self {
        Self { sim: SimConfig::small_test(), batches: 2, ..Self::default() }
    }
}

/// Result of a streaming run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Collected metrics.
    pub metrics: RunMetrics,
    /// Oracle comparison of the final states ([`VerifyOutcome::Skipped`]
    /// under [`OracleMode::Off`]).
    pub verify: VerifyOutcome,
    /// Everything lenient ingest quarantined (empty under strict ingest).
    pub quarantine: QuarantineReport,
    /// Mid-run differential-oracle accounting.
    pub oracle: OracleSummary,
}

/// Runs `engine` with `algo` over the streaming workload of `dataset`.
///
/// # Errors
///
/// Same as [`run_streaming_workload`].
pub fn run_streaming<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    dataset: Dataset,
    sizing: Sizing,
    opts: &RunOptions,
) -> Result<RunResult, EngineError> {
    let workload = StreamingWorkload::try_prepare(dataset, sizing)?;
    run_streaming_workload(engine, algo, workload, opts)
}

/// Like [`run_streaming`], but emits live instrumentation into `recorder`.
///
/// # Errors
///
/// Same as [`run_streaming_workload`].
pub fn run_streaming_observed<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    dataset: Dataset,
    sizing: Sizing,
    opts: &RunOptions,
    recorder: &mut dyn Recorder,
) -> Result<RunResult, EngineError> {
    let workload = StreamingWorkload::try_prepare(dataset, sizing)?;
    run_streaming_workload_observed(engine, algo, workload, opts, recorder)
}

/// Validates run options before any simulation work starts, so a bad
/// configuration is a typed error rather than a mid-run panic.
fn validate_options(opts: &RunOptions) -> Result<(), EngineError> {
    if !(0.0..=1.0).contains(&opts.add_fraction) {
        return Err(EngineError::InvalidOptions {
            reason: format!("add_fraction must be in [0, 1], got {}", opts.add_fraction),
        });
    }
    if !(opts.alpha.is_finite() && opts.alpha > 0.0) {
        return Err(EngineError::InvalidOptions {
            reason: format!("alpha must be positive and finite, got {}", opts.alpha),
        });
    }
    if opts.chunks_per_core == 0 {
        return Err(EngineError::InvalidOptions { reason: "chunks_per_core must be >= 1".into() });
    }
    if opts.oracle == OracleMode::EveryNBatches(0) {
        return Err(EngineError::InvalidOptions {
            reason: "oracle cadence EveryNBatches(0) is meaningless; use Off".into(),
        });
    }
    if opts.exec == ExecMode::Sharded(0) {
        return Err(EngineError::InvalidOptions {
            reason: "ExecMode::Sharded(0) has no worker threads; use Serial".into(),
        });
    }
    opts.sim.try_validate()?;
    Ok(())
}

/// Runs over an already-prepared workload (lets callers customize graphs).
///
/// # Errors
///
/// [`EngineError::InvalidOptions`] or [`EngineError::Sim`] if `opts` fail
/// validation, [`EngineError::Graph`] if an update batch cannot be applied
/// to the graph (e.g. an out-of-range vertex id in caller-provided data).
pub fn run_streaming_workload<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    workload: StreamingWorkload,
    opts: &RunOptions,
) -> Result<RunResult, EngineError> {
    let mut null = NullRecorder;
    run_streaming_workload_observed(engine, algo, workload, opts, &mut null)
}

/// Like [`run_streaming_workload`], but emits live instrumentation into
/// `recorder`: `updates.*` counters as the engine performs them, a span per
/// phase with cycle and wall-clock attribution, and the final `sim.*` /
/// `energy.*` / `run.*` totals.
///
/// The returned [`RunMetrics`] are always derived from an (internal)
/// observability snapshot — [`RunMetrics::from_snapshot`] — so traced and
/// untraced runs report byte-identical numbers; passing
/// [`NullRecorder`] reduces every live emission to one predictable branch.
///
/// # Errors
///
/// Same as [`run_streaming_workload`].
pub fn run_streaming_workload_observed<E: Engine + ?Sized>(
    engine: &mut E,
    algo: Algo,
    workload: StreamingWorkload,
    opts: &RunOptions,
    recorder: &mut dyn Recorder,
) -> Result<RunResult, EngineError> {
    validate_options(opts)?;
    let StreamingWorkload { mut graph, pending, .. } = workload;
    let n = graph.vertex_count();
    let edge_capacity = graph.edge_count() + pending.len();
    let coalesced = ((n as f64 * opts.alpha).ceil() as usize).max(16);
    let layout = AddressSpace::layout(n, edge_capacity, coalesced);

    // Initial fixed point (not charged: the paper measures per-batch
    // incremental processing, not the cold start).
    let snapshot = graph.snapshot();
    let mut machine = match opts.exec {
        ExecMode::Serial => Machine::new(opts.sim.clone(), layout),
        exec @ ExecMode::Sharded(_) => {
            // One static, edge-balanced shard plan from the initial
            // snapshot: replay shards keep their private caches for the
            // whole run, so the grouping must not change per batch.
            let chunks = partition_by_edges(&snapshot, opts.sim.cores * opts.chunks_per_core);
            let plan = ShardPlan::balanced(&chunks, opts.sim.cores, exec.replay_shards());
            Machine::with_exec(opts.sim.clone(), layout, exec, &plan)
        }
    };
    let mut state = AlgoState::from_solution(solve(&algo, &snapshot), n);

    let default_batch = (graph.edge_count() / 16).max(64);
    let batch_size = opts.batch_size.unwrap_or(default_batch);
    let mut composer = BatchComposer::new(pending, opts.add_fraction, opts.seed);

    let mut counters = UpdateCounters::new(n);
    let mut useful_total = 0u64;
    let mut batches_done = 0u64;
    let mut states_before: Vec<f32> = Vec::new();
    let mut final_snapshot = snapshot;
    let mut quarantine = QuarantineReport::new();
    let mut oracle_summary = OracleSummary::default();

    for batch_index in 0..opts.batches {
        let present = graph.edges_vec();
        let Some(batch) = composer.next_batch(batch_size, &present) else {
            break;
        };
        // Deterministic input corruption, below the composer: the same
        // `(fault seed, batch index)` always produces the same damage.
        let batch = if opts.fault_plan.is_noop() {
            batch
        } else {
            let corrupted = opts.fault_plan.corrupt_updates(batch_index as u64, batch.updates(), n);
            match opts.ingest {
                IngestMode::Strict => UpdateBatch::from_updates(corrupted)?,
                IngestMode::Lenient => {
                    UpdateBatch::from_updates_lenient(corrupted, &mut quarantine)
                }
            }
        };
        let applied = match opts.ingest {
            IngestMode::Strict => graph.apply_batch(&batch)?,
            IngestMode::Lenient => graph.apply_batch_lenient(&batch, &mut quarantine),
        };
        let snapshot = graph.snapshot();
        let transpose = snapshot.transpose();
        let chunks = partition_by_edges(&snapshot, opts.sim.cores * opts.chunks_per_core);
        let mass = out_mass(&algo, &snapshot);

        states_before.clear();
        states_before.extend_from_slice(&state.states);
        counters.reset_marks();

        // Batch application + seeding: "other" time.
        recorder.span_enter(keys::PHASE_OTHER);
        machine.compute(0, Actor::Core, Op::ScheduleOp, batch.len() as u64 * 2);
        let affected = {
            let mut tap = MachineTap::new(&mut machine, &chunks);
            seed_after_batch(&algo, &snapshot, &transpose, &mut state, &applied, &mut tap)
        };
        let other_cycles = machine.end_phase_synced(PhaseKind::Other);
        recorder.span_exit(keys::PHASE_OTHER, other_cycles);

        // Engine propagation.
        recorder.span_enter(keys::PHASE_PROPAGATION);
        {
            let mut ctx = BatchCtx {
                machine: &mut machine,
                graph: &snapshot,
                transpose: &transpose,
                algo,
                state: &mut state,
                chunks: &chunks,
                counters: &mut counters,
                out_mass: &mass,
                obs: RecorderHandle::new(&mut *recorder),
                exec: opts.exec,
            };
            engine.process_batch(&mut ctx, &affected);
        }
        let propagation_cycles = machine.end_phase_synced(PhaseKind::Propagation);
        recorder.span_exit(keys::PHASE_PROPAGATION, propagation_cycles);

        // Classify this batch's updates.
        let changed: Vec<bool> = state
            .states
            .iter()
            .zip(&states_before)
            .map(|(&a, &b)| {
                if a.is_infinite() && b.is_infinite() {
                    false
                } else {
                    (a - b).abs() > f32::EPSILON * (1.0 + b.abs())
                }
            })
            .collect();
        let (useful, _useless) = counters.classify(&changed);
        useful_total += useful;
        batches_done += 1;

        // Mid-run differential oracle: solve from scratch on the current
        // snapshot and compare. A mismatch is evidence, not a failure —
        // it is recorded and emitted, and the run continues.
        if let OracleMode::EveryNBatches(every) = opts.oracle {
            if batches_done.is_multiple_of(every as u64) {
                let oracle_states = solve(&algo, &snapshot);
                let outcome = compare(&algo, &state.states, &oracle_states.states);
                oracle_summary.record(batches_done, &outcome);
                if !outcome.is_match() {
                    recorder.event(
                        &TraceEvent::new("oracle_mismatch")
                            .field("batch", batches_done)
                            .field("algo", algo.name())
                            .field("detail", format!("{outcome:?}")),
                    );
                }
            }
        }

        final_snapshot = snapshot;
    }

    machine.finish();
    let stats = machine.stats().clone();
    let dram_lines = machine.dram().total_bytes() / 64;
    let energy = EnergyBreakdown::from_stats(
        &stats,
        dram_lines,
        machine.total_cycles(),
        opts.sim.freq_ghz,
        EnergyConstants::nominal(),
    );

    let verify = match opts.oracle {
        OracleMode::Off => VerifyOutcome::Skipped,
        OracleMode::EveryNBatches(_) | OracleMode::Final => {
            let oracle = solve(&algo, &final_snapshot);
            compare(&algo, &state.states, &oracle.states)
        }
    };

    // End-of-run totals: `updates.*` already reached `recorder` live, so it
    // only receives the remaining namespaces plus the end-computed useful
    // count; the internal recorder gets everything and becomes the
    // snapshot the metrics are read from.
    let export_totals = |rec: &mut dyn Recorder| {
        stats.export_into(rec);
        energy.export_into(rec);
        rec.counter(keys::USEFUL_UPDATES, useful_total);
        rec.counter(keys::DRAM_BYTES, machine.dram().total_bytes());
        rec.counter(keys::DRAM_READS, machine.dram().total_reads());
        rec.counter(keys::RUN_CYCLES, machine.total_cycles());
        rec.counter(keys::RUN_BATCHES, batches_done);
        rec.label(keys::RUN_ENGINE, engine.name());
        rec.label(keys::RUN_ALGO, algo.name());
        // Degradation counters only exist when something degraded, so a
        // clean run's snapshot stays byte-identical to the pre-chaos era.
        if !quarantine.is_empty() {
            rec.counter(keys::QUARANTINE_TOTAL, quarantine.total());
            for (reason, count) in quarantine.counts() {
                rec.counter(quarantine_key(reason), count);
            }
        }
        if oracle_summary.checks > 0 {
            rec.counter(keys::ORACLE_CHECKS, oracle_summary.checks);
            rec.counter(keys::ORACLE_MISMATCHES, oracle_summary.mismatches);
        }
    };
    export_totals(recorder);

    let mut mem = MemoryRecorder::new();
    export_totals(&mut mem);
    counters.export_into(&mut mem);
    mem.span_exit(keys::PHASE_PROPAGATION, machine.breakdown().propagation_cycles);
    mem.span_exit(keys::PHASE_OTHER, machine.breakdown().other_cycles);

    let metrics = RunMetrics::from_snapshot(&mem.into_snapshot());
    Ok(RunResult { metrics, verify, quarantine, oracle: oracle_summary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligra_o::LigraO;

    #[test]
    fn ligra_o_runs_and_verifies_on_all_algorithms() {
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank(), Algo::adsorption()] {
            let res = run_streaming(
                &mut LigraO,
                algo,
                Dataset::Amazon,
                Sizing::Tiny,
                &RunOptions::small(),
            )
            .unwrap();
            assert!(res.verify.is_match(), "{} failed verification: {:?}", algo.name(), res.verify);
            assert!(res.metrics.cycles > 0);
            assert_eq!(res.metrics.batches, 2);
        }
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let res = run_streaming(
            &mut LigraO,
            Algo::sssp(0),
            Dataset::Dblp,
            Sizing::Tiny,
            &RunOptions::small(),
        )
        .unwrap();
        let m = &res.metrics;
        assert_eq!(m.cycles, m.propagation_cycles + m.other_cycles);
        assert!(m.useful_updates <= m.state_updates);
        assert!((0.0..=1.0).contains(&m.llc_miss_rate));
        assert!((0.0..=1.0).contains(&m.useful_state_ratio));
    }

    #[test]
    fn deletion_heavy_batches_verify() {
        let mut opts = RunOptions::small();
        opts.add_fraction = 0.2;
        for algo in [Algo::sssp(0), Algo::cc(), Algo::pagerank()] {
            let res =
                run_streaming(&mut LigraO, algo, Dataset::Amazon, Sizing::Tiny, &opts).unwrap();
            assert!(
                res.verify.is_match(),
                "{} deletion-heavy failed: {:?}",
                algo.name(),
                res.verify
            );
        }
    }

    #[test]
    fn out_of_range_add_fraction_is_a_typed_error() {
        let mut opts = RunOptions::small();
        opts.add_fraction = 1.5;
        let err = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions { .. }), "got {err}");
        assert!(err.to_string().contains("add_fraction"));
    }

    #[test]
    fn invalid_machine_config_is_a_typed_error() {
        let mut opts = RunOptions::small();
        opts.sim.mesh_dim = 1; // cannot host 4 cores
        let err = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap_err();
        assert!(matches!(err, EngineError::Sim(_)), "got {err}");
    }

    #[test]
    fn zero_oracle_cadence_is_a_typed_error() {
        let mut opts = RunOptions::small();
        opts.oracle = OracleMode::EveryNBatches(0);
        let err = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions { .. }), "got {err}");
    }

    #[test]
    fn oracle_off_skips_final_verification() {
        let mut opts = RunOptions::small();
        opts.oracle = OracleMode::Off;
        let res = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap();
        assert_eq!(res.verify, VerifyOutcome::Skipped);
        assert_eq!(res.oracle.checks, 0);
        assert!(res.quarantine.is_empty());
    }

    #[test]
    fn mid_run_oracle_checks_every_batch() {
        let mut opts = RunOptions::small();
        opts.oracle = OracleMode::EveryNBatches(1);
        let res = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap();
        assert_eq!(res.oracle.checks, res.metrics.batches);
        assert_eq!(res.oracle.mismatches, 0);
        assert!(res.verify.is_match());
    }

    #[test]
    fn strict_run_with_faults_is_a_typed_error() {
        let mut opts = RunOptions::small();
        opts.fault_plan = FaultPlan::seeded(3).with_absent_deletions(1.0);
        let err = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap_err();
        assert!(matches!(err, EngineError::Graph(_)), "got {err}");
    }

    #[test]
    fn lenient_run_with_faults_degrades_with_evidence() {
        let mut opts = RunOptions::small();
        opts.ingest = IngestMode::Lenient;
        opts.fault_plan = FaultPlan::seeded(3)
            .with_absent_deletions(1.0)
            .with_nan_weights(0.3)
            .with_out_of_range_ids(0.2);
        let res = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap();
        assert!(!res.quarantine.is_empty(), "armed faults must quarantine something");
        assert!(res.quarantine.count(QuarantineReason::AbsentDeletion) > 0);
        assert!(
            res.verify.is_match(),
            "surviving updates still verify against the oracle: {:?}",
            res.verify
        );
    }

    #[test]
    fn noop_fault_plan_under_lenient_matches_strict_run_exactly() {
        let strict = run_streaming(
            &mut LigraO,
            Algo::cc(),
            Dataset::Amazon,
            Sizing::Tiny,
            &RunOptions::small(),
        )
        .unwrap();
        let mut opts = RunOptions::small();
        opts.ingest = IngestMode::Lenient;
        opts.fault_plan = FaultPlan::none();
        let lenient =
            run_streaming(&mut LigraO, Algo::cc(), Dataset::Amazon, Sizing::Tiny, &opts).unwrap();
        assert!(lenient.quarantine.is_empty());
        assert_eq!(format!("{:?}", lenient.metrics), format!("{:?}", strict.metrics));
        assert_eq!(lenient.verify, strict.verify);
    }

    #[test]
    fn sharded_zero_is_a_typed_error() {
        let mut opts = RunOptions::small();
        opts.exec = ExecMode::Sharded(0);
        let err = run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions { .. }), "got {err}");
    }

    #[test]
    fn sharded_run_matches_serial_byte_for_byte() {
        let serial = run_streaming(
            &mut LigraO,
            Algo::sssp(0),
            Dataset::Amazon,
            Sizing::Tiny,
            &RunOptions::small(),
        )
        .unwrap();
        for workers in [1, 2, 4] {
            let mut opts = RunOptions::small();
            opts.exec = ExecMode::Sharded(workers);
            let sharded =
                run_streaming(&mut LigraO, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
                    .unwrap();
            assert_eq!(
                format!("{:?}", sharded.metrics),
                format!("{:?}", serial.metrics),
                "Sharded({workers}) metrics diverge from serial"
            );
            assert_eq!(sharded.verify, serial.verify);
        }
    }

    #[test]
    fn every_software_engine_matches_serial_under_sharding() {
        // Engines with mid-batch `end_phase` sync points (GraphBolt, Dzig)
        // exercise the pipeline's multi-phase path; the rest the plain
        // path. All must be byte-identical to their serial runs.
        let registry = crate::registry::EngineRegistry::with_software();
        for key in crate::registry::SOFTWARE_KEYS {
            let mut engine = registry.build(key).expect("software engine registered");
            let serial = run_streaming(
                &mut *engine,
                Algo::sssp(0),
                Dataset::Amazon,
                Sizing::Tiny,
                &RunOptions::small(),
            )
            .unwrap();
            let mut opts = RunOptions::small();
            opts.exec = ExecMode::Sharded(2);
            let mut engine = registry.build(key).expect("software engine registered");
            let sharded =
                run_streaming(&mut *engine, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
                    .unwrap();
            assert_eq!(
                format!("{:?}", sharded.metrics),
                format!("{:?}", serial.metrics),
                "{key}: Sharded(2) metrics diverge from serial"
            );
            assert_eq!(sharded.verify, serial.verify, "{key}: verification outcome diverges");
        }
    }

    #[test]
    fn sharded_observed_run_snapshot_matches_serial() {
        let run = |exec: ExecMode| {
            let mut opts = RunOptions::small();
            opts.exec = exec;
            let mut rec = MemoryRecorder::new();
            run_streaming_observed(
                &mut LigraO,
                Algo::pagerank(),
                Dataset::Amazon,
                Sizing::Tiny,
                &opts,
                &mut rec,
            )
            .unwrap();
            // Wall-clock excluded: it is host time, not model output.
            rec.into_snapshot().canonical_json_line()
        };
        let serial = run(ExecMode::Serial);
        assert_eq!(serial, run(ExecMode::Sharded(2)));
        assert_eq!(serial, run(ExecMode::Sharded(4)));
    }

    #[test]
    fn wrong_states_engine_is_caught_by_the_mid_run_oracle() {
        use crate::testutil::{FaultMode, FaultyEngine};
        let mut opts = RunOptions::small();
        opts.oracle = OracleMode::EveryNBatches(1);
        let mut engine = FaultyEngine::new(FaultMode::WrongStatesOnBatch(0));
        let res = run_streaming(&mut engine, Algo::sssp(0), Dataset::Amazon, Sizing::Tiny, &opts)
            .unwrap();
        assert!(res.oracle.mismatches > 0, "corrupted states must be detected mid-run");
        assert!(!res.oracle.records.is_empty());
        assert!(!res.verify.is_match());
    }
}
