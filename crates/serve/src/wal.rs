//! The per-tenant durable ingest write-ahead log.
//!
//! Every accepted wire line is appended to the tenant's WAL **before** it
//! enters the bounded ingest queue, so a daemon crash can lose only lines
//! the client was never going to consider accepted (they sit in socket
//! buffers and are re-sent on reconnect — the `hello` reply's `acked`
//! count is exactly this WAL's clean-line count). The file is canonical
//! JSON lines in the `tdgraph_graph::wire` flat-object codec:
//!
//! * `{"wal":"open","tenant":...,"engine":...,...}` — one head record,
//!   carrying the hello-vocabulary session fields needed to reopen the
//!   tenant against the same service defaults.
//! * `{"wal":"line","raw":"<escaped wire line>"}` — one accepted line.
//! * `{"wal":"trunc","raw":"<escaped fragment>"}` — a truncated fragment
//!   (EOF mid-line / torn write); recorded for deterministic replay but
//!   **excluded** from the `acked` count, because the client re-sends the
//!   whole line after a reconnect.
//! * `{"wal":"close","n":N,"why":"size|deadline|flush"}` — a batch-close
//!   marker: the oldest `N` unconsumed entries formed one batch.
//!
//! Durability points: entry appends are unbuffered `write` calls (durable
//! against process death, e.g. SIGKILL); each batch-close marker is
//! followed by one `fsync` (durable against machine crash at batch
//! granularity — and because markers share the file descriptor with the
//! entries they cover, the sync makes those entries durable too).
//!
//! Recovery ([`TenantWal::load`]) tolerates exactly the damage a crash
//! can cause: a torn tail record (no trailing newline, or an undecodable
//! final line) is detected, dropped, and reported — everything up to the
//! last complete record is recovered. Close markers re-group entries into
//! the original batches; entries after the last marker are the un-batched
//! tail, re-fed into the batch former on restart.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tdgraph_graph::wire::{json_escape_wire, lookup, lookup_str, parse_flat_object};

use crate::batcher::BatchClose;

/// One recovered WAL entry: a raw accepted line or a truncated fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// A complete accepted wire line, byte-exact.
    Line(String),
    /// A fragment cut by connection loss or a torn write.
    Truncated(String),
}

/// The head record of a tenant WAL: everything needed to reopen the
/// session on recovery, in the `hello` request vocabulary (resolved
/// against the *current* service session defaults — recovery assumes the
/// daemon restarts with the same defaults it crashed with).
///
/// `algo` is stored as the hello label (`sssp`, `cc`, `pagerank`,
/// `adsorption`); an explicitly rooted SSSP round-trips as hub-rooted,
/// which is identical for sessions opened over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalHead {
    /// Tenant name.
    pub tenant: String,
    /// Engine registry key.
    pub engine: String,
    /// Dataset abbreviation.
    pub dataset: String,
    /// Sizing label.
    pub sizing: String,
    /// Algorithm label.
    pub algo: String,
    /// Batch-former size threshold (recovery re-forms the tail with the
    /// same threshold, so batch boundaries stay deterministic).
    pub batch_max_entries: usize,
    /// Batch-former latency deadline in milliseconds.
    pub batch_deadline_ms: u64,
}

impl WalHead {
    /// The batch-former deadline as a [`Duration`].
    #[must_use]
    pub fn batch_deadline(&self) -> Duration {
        Duration::from_millis(self.batch_deadline_ms)
    }

    fn render(&self) -> String {
        format!(
            "{{\"wal\":\"open\",\"tenant\":\"{}\",\"engine\":\"{}\",\"dataset\":\"{}\",\"sizing\":\"{}\",\"algo\":\"{}\",\"batch_max_entries\":{},\"batch_deadline_ms\":{}}}",
            json_escape_wire(&self.tenant),
            json_escape_wire(&self.engine),
            json_escape_wire(&self.dataset),
            json_escape_wire(&self.sizing),
            json_escape_wire(&self.algo),
            self.batch_max_entries,
            self.batch_deadline_ms,
        )
    }

    fn parse(fields: &[(String, String)]) -> Result<Self, String> {
        let int = |key: &str| -> Result<u64, String> {
            lookup(fields, key)?
                .parse()
                .map_err(|e| format!("wal open field {key:?} is not an integer: {e}"))
        };
        Ok(Self {
            tenant: lookup_str(fields, "tenant")?,
            engine: lookup_str(fields, "engine")?,
            dataset: lookup_str(fields, "dataset")?,
            sizing: lookup_str(fields, "sizing")?,
            algo: lookup_str(fields, "algo")?,
            batch_max_entries: usize::try_from(int("batch_max_entries")?)
                .map_err(|e| format!("batch_max_entries overflows usize: {e}"))?,
            batch_deadline_ms: int("batch_deadline_ms")?,
        })
    }
}

/// Everything recovered from one tenant's WAL file.
#[derive(Debug)]
pub struct LoadedWal {
    /// The session head record.
    pub head: WalHead,
    /// Closed batches, in close order, each in arrival order.
    pub batches: Vec<Vec<WalEntry>>,
    /// Entries accepted after the last close marker (the un-batched
    /// tail), in arrival order.
    pub tail: Vec<WalEntry>,
    /// Clean accepted lines across batches and tail — the resume offset
    /// reported to reconnecting clients. Truncated fragments are excluded.
    pub acked: u64,
    /// Whether a torn tail record was detected and dropped.
    pub torn_tail: bool,
    /// The WAL handle, reopened in append mode so the recovered tenant
    /// keeps logging to the same file.
    pub wal: TenantWal,
}

/// An open per-tenant WAL file.
#[derive(Debug)]
pub struct TenantWal {
    path: PathBuf,
    file: File,
}

impl TenantWal {
    /// Creates (truncating any stale file of the same name) the WAL for
    /// `head.tenant` under `dir`, writes and syncs the head record.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O failures.
    pub fn create(dir: &Path, head: &WalHead) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file_name(&head.tenant));
        let mut file = File::create(&path)?;
        file.write_all(head.render().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
        // Best-effort directory sync so the file's existence survives a
        // machine crash too (Linux allows fsync on a read-only dir fd).
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(Self { path, file })
    }

    /// The WAL file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one accepted line (unbuffered; durable against process
    /// death, synced at the next batch close).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn append_line(&mut self, raw: &str) -> std::io::Result<()> {
        self.append_record(&format!("{{\"wal\":\"line\",\"raw\":\"{}\"}}", json_escape_wire(raw)))
    }

    /// Appends one truncated fragment.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn append_truncated(&mut self, fragment: &str) -> std::io::Result<()> {
        self.append_record(&format!(
            "{{\"wal\":\"trunc\",\"raw\":\"{}\"}}",
            json_escape_wire(fragment)
        ))
    }

    /// Appends a batch-close marker covering the oldest `n` unconsumed
    /// entries, then syncs the file — the WAL's durability point.
    ///
    /// # Errors
    ///
    /// Propagates the write or sync failure.
    pub fn append_close(&mut self, n: usize, why: BatchClose) -> std::io::Result<()> {
        self.append_record(&format!(
            "{{\"wal\":\"close\",\"n\":{n},\"why\":\"{}\"}}",
            why.label()
        ))?;
        self.file.sync_all()
    }

    /// Removes the WAL file (tenant finished cleanly; nothing left to
    /// recover). The open handle stays valid — on Linux an unlinked file
    /// is simply anonymous until the last fd closes — but nothing is
    /// appended after a finish.
    ///
    /// # Errors
    ///
    /// Propagates the removal failure.
    pub fn remove(&self) -> std::io::Result<()> {
        std::fs::remove_file(&self.path)
    }

    fn append_record(&mut self, record: &str) -> std::io::Result<()> {
        // One write call per record: an interrupted append leaves at most
        // one torn record at the tail, which recovery detects and drops.
        let mut line = String::with_capacity(record.len() + 1);
        line.push_str(record);
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }

    /// Recovers a tenant WAL: parses up to the last complete record,
    /// re-groups entries into their recorded batches, and reopens the
    /// file for appending.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the file has no parseable head record (nothing
    /// recoverable); plain I/O errors otherwise. A torn *tail* is not an
    /// error — it is dropped and flagged in [`LoadedWal::torn_tail`].
    pub fn load(path: &Path) -> std::io::Result<LoadedWal> {
        let bytes = std::fs::read(path)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut torn_tail = !text.is_empty() && !text.ends_with('\n');

        let mut head: Option<WalHead> = None;
        let mut batches: Vec<Vec<WalEntry>> = Vec::new();
        let mut pending: Vec<WalEntry> = Vec::new();

        let complete: Vec<&str> = if torn_tail {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines
        } else {
            text.lines().collect()
        };

        for line in complete {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = parse_flat_object(line)
                .and_then(|fields| lookup_str(&fields, "wal").map(|kind| (fields, kind)));
            let Ok((fields, kind)) = parsed else {
                // Any undecodable record means crash damage reached past
                // the final newline; recover the prefix before it.
                torn_tail = true;
                break;
            };
            match kind.as_str() {
                "open" => match WalHead::parse(&fields) {
                    Ok(h) => head = Some(h),
                    Err(_) => {
                        torn_tail = true;
                        break;
                    }
                },
                "line" => match lookup_str(&fields, "raw") {
                    Ok(raw) => pending.push(WalEntry::Line(raw)),
                    Err(_) => {
                        torn_tail = true;
                        break;
                    }
                },
                "trunc" => match lookup_str(&fields, "raw") {
                    Ok(raw) => pending.push(WalEntry::Truncated(raw)),
                    Err(_) => {
                        torn_tail = true;
                        break;
                    }
                },
                "close" => {
                    let n = lookup(&fields, "n").ok().and_then(|v| v.parse::<usize>().ok());
                    match n {
                        // Markers are written after their entries, so a
                        // well-formed marker always finds them; anything
                        // else is tail damage.
                        Some(n) if n <= pending.len() => {
                            let rest = pending.split_off(n);
                            batches.push(std::mem::replace(&mut pending, rest));
                        }
                        _ => {
                            torn_tail = true;
                            break;
                        }
                    }
                }
                _ => {
                    torn_tail = true;
                    break;
                }
            }
        }

        let head = head.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("wal {} has no head record", path.display()),
            )
        })?;
        let acked = batches
            .iter()
            .flatten()
            .chain(pending.iter())
            .filter(|e| matches!(e, WalEntry::Line(_)))
            .count() as u64;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(LoadedWal {
            head,
            batches,
            tail: pending,
            acked,
            torn_tail,
            wal: TenantWal { path: path.to_path_buf(), file },
        })
    }
}

/// Scans `dir` for tenant WAL files, sorted by file name so recovery
/// order is deterministic.
///
/// # Errors
///
/// Propagates the directory read failure. A missing directory is an empty
/// scan, not an error (nothing was ever logged).
pub fn scan_wal_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "wal"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// The WAL file name for `tenant`: injective percent-encoding of the
/// tenant name (hostile names cannot escape the directory or collide).
#[must_use]
pub fn file_name(tenant: &str) -> String {
    let mut out = String::with_capacity(tenant.len() + 4);
    for b in tenant.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out.push_str(".wal");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head() -> WalHead {
        WalHead {
            tenant: "alpha".to_string(),
            engine: "ligra-o".to_string(),
            dataset: "AZ".to_string(),
            sizing: "tiny".to_string(),
            algo: "sssp".to_string(),
            batch_max_entries: 8,
            batch_deadline_ms: 600_000,
        }
    }

    #[test]
    fn file_names_are_injective_and_path_safe() {
        assert_eq!(file_name("alpha"), "alpha.wal");
        assert_eq!(file_name("../evil"), "%2E%2E%2Fevil.wal");
        // Injective: a literal "%2F" in a tenant name re-encodes ('%' is
        // itself escaped), so it cannot collide with an encoded '/'.
        assert_ne!(file_name("a/b"), file_name("a%2Fb"));
        assert!(!file_name("x/../../y").contains('/'));
    }

    #[test]
    fn wal_round_trips_batches_tail_and_acked() {
        let dir = std::env::temp_dir().join(format!("tdg-wal-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = TenantWal::create(&dir, &head()).unwrap();
        wal.append_line("{\"op\":\"add\",\"src\":1,\"dst\":2,\"weight\":1}").unwrap();
        wal.append_line("garbage line").unwrap();
        wal.append_close(2, BatchClose::Size).unwrap();
        wal.append_truncated("{\"op\":\"ad").unwrap();
        wal.append_line("{\"op\":\"del\",\"src\":3,\"dst\":4}").unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);

        let loaded = TenantWal::load(&path).unwrap();
        assert_eq!(loaded.head, head());
        assert_eq!(loaded.batches.len(), 1);
        assert_eq!(loaded.batches[0].len(), 2);
        assert_eq!(
            loaded.tail,
            vec![
                WalEntry::Truncated("{\"op\":\"ad".to_string()),
                WalEntry::Line("{\"op\":\"del\",\"src\":3,\"dst\":4}".to_string()),
            ]
        );
        // 3 clean lines; the truncated fragment is excluded from acked.
        assert_eq!(loaded.acked, 3);
        assert!(!loaded.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_survives_truncation_at_every_byte_offset() {
        // The WAL corruption-tolerance property: for *any* crash point k,
        // loading the first k bytes recovers a prefix of the records —
        // never an error, never an entry invented — and the dropped tail
        // is flagged.
        let dir = std::env::temp_dir().join(format!("tdg-wal-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = TenantWal::create(&dir, &head()).unwrap();
        for i in 0..6 {
            wal.append_line(&format!(
                "{{\"op\":\"add\",\"src\":{i},\"dst\":{},\"weight\":1}}",
                i + 1
            ))
            .unwrap();
            if i % 2 == 1 {
                wal.append_close(2, BatchClose::Size).unwrap();
            }
        }
        wal.append_truncated("torn \"frag\\ment").unwrap();
        let path = wal.path().to_path_buf();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let full = TenantWal::load(&path).unwrap();
        assert_eq!(full.acked, 6);
        assert_eq!(full.batches.len(), 3);

        let head_line_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut_path = dir.join("cut.wal");
        for k in 0..=bytes.len() {
            std::fs::write(&cut_path, &bytes[..k]).unwrap();
            let loaded = TenantWal::load(&cut_path);
            if k < head_line_len {
                assert!(loaded.is_err(), "no head record at cut {k}");
                continue;
            }
            let loaded = loaded.unwrap_or_else(|e| panic!("cut {k}: {e}"));
            // Recovered content is a prefix: acked and batch count are
            // monotone in k and bounded by the full file's.
            assert!(loaded.acked <= full.acked, "cut {k}");
            assert!(loaded.batches.len() <= full.batches.len(), "cut {k}");
            // A cut mid-record is flagged torn; a cut landing exactly on
            // a record boundary is indistinguishable from a clean,
            // shorter log — and must load as one.
            assert_eq!(loaded.torn_tail, bytes[k - 1] != b'\n', "cut {k}");
            // Every recovered clean line is one of the six we wrote, in
            // order (prefix property on the flattened entry list).
            let lines: Vec<&String> = loaded
                .batches
                .iter()
                .flatten()
                .chain(loaded.tail.iter())
                .filter_map(|e| match e {
                    WalEntry::Line(s) => Some(s),
                    WalEntry::Truncated(_) => None,
                })
                .collect();
            for (i, line) in lines.iter().enumerate() {
                assert_eq!(
                    **line,
                    format!("{{\"op\":\"add\",\"src\":{i},\"dst\":{},\"weight\":1}}", i + 1),
                    "cut {k} line {i}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_lists_wal_files_sorted_and_tolerates_missing_dir() {
        let dir = std::env::temp_dir().join(format!("tdg-wal-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(scan_wal_dir(&dir).unwrap().is_empty());
        let mut h = head();
        for name in ["zeta", "alpha"] {
            h.tenant = name.to_string();
            TenantWal::create(&dir, &h).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let scanned = scan_wal_dir(&dir).unwrap();
        assert_eq!(
            scanned
                .iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().to_string())
                .collect::<Vec<_>>(),
            vec!["alpha.wal", "zeta.wal"]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
