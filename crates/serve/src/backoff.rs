//! Shared deterministic retry/backoff.
//!
//! Every retry loop in the workspace — client connects and reconnects,
//! shed-line re-sends, fleet-worker coordinator reconnects, coordinator
//! lease re-assignment — runs on the same primitive: a [`RetryPolicy`]
//! (bounded attempts, exponential delay, ceiling) driven through a
//! [`Backoff`] cursor. Delays always flow through the injectable
//! [`Clock`], so tests assert exact schedules without real sleeps.
//!
//! Jitter is opt-in and *seeded*: [`Backoff::with_jitter_seed`] scales
//! each delay by a factor in `[0.75, 1.25)` drawn from the workspace
//! [`Xoshiro256StarStar`] PRNG, so even jittered schedules are a pure
//! function of `(policy, seed)` and reproduce exactly.

use std::time::Duration;

use tdgraph_graph::prng::Xoshiro256StarStar;

use crate::clock::Clock;

/// Bounded deterministic retry: attempt `k` (0-based) waits
/// `min(base_backoff * 2^k, max_backoff)` before trying again, up to
/// `max_attempts` total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try counts).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff after failed attempt `attempt` (0-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_backoff)
    }
}

/// A retry cursor over a [`RetryPolicy`]: tracks which attempt is next and
/// sleeps the policy's delay (optionally jittered) through a [`Clock`].
///
/// ```
/// use tdgraph_serve::{Backoff, RetryPolicy, TestClock};
///
/// let clock = TestClock::new();
/// let mut backoff = Backoff::new(RetryPolicy::default());
/// let mut attempts = 0;
/// loop {
///     attempts += 1; // ... try the operation ...
///     if !backoff.wait(&clock) {
///         break; // budget exhausted
///     }
/// }
/// assert_eq!(attempts as u32, RetryPolicy::default().max_attempts);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    jitter: Option<Xoshiro256StarStar>,
}

impl Backoff {
    /// A fresh cursor at attempt 0 with no jitter: delays are exactly
    /// [`RetryPolicy::backoff`].
    #[must_use]
    pub fn new(policy: RetryPolicy) -> Self {
        Self { policy, attempt: 0, jitter: None }
    }

    /// Enables deterministic jitter: each delay is scaled by a factor in
    /// `[0.75, 1.25)` drawn from a PRNG seeded with `seed`. Same seed,
    /// same schedule.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter = Some(Xoshiro256StarStar::new(seed));
        self
    }

    /// The policy this cursor follows.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Failed attempts waited out so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Whether another retry is allowed by the attempt budget.
    #[must_use]
    pub fn can_retry(&self) -> bool {
        self.attempt + 1 < self.policy.max_attempts.max(1)
    }

    /// The delay the *next* [`Backoff::wait`] will sleep, drawing the
    /// jitter factor when enabled (so calling this consumes that draw).
    pub fn next_delay(&mut self) -> Duration {
        let base = self.policy.backoff(self.attempt);
        match &mut self.jitter {
            None => base,
            Some(rng) => {
                let factor = 0.75 + 0.5 * rng.next_f64();
                Duration::from_secs_f64(base.as_secs_f64() * factor)
            }
        }
    }

    /// Sleeps before the next retry and advances the cursor. Returns
    /// `false` — without sleeping — when the attempt budget is spent.
    pub fn wait(&mut self, clock: &dyn Clock) -> bool {
        self.wait_at_least(Duration::ZERO, clock)
    }

    /// Like [`Backoff::wait`], but sleeps at least `floor` (e.g. a
    /// server's `retry_after` hint) when that exceeds the policy delay.
    pub fn wait_at_least(&mut self, floor: Duration, clock: &dyn Clock) -> bool {
        if !self.can_retry() {
            return false;
        }
        let delay = self.next_delay();
        clock.sleep(delay.max(floor));
        self.attempt += 1;
        true
    }

    /// Runs `op` under this cursor: retries on `Err` until the budget is
    /// spent, returning the first success or the final error.
    ///
    /// # Errors
    ///
    /// The error of the last attempt once `policy.max_attempts` is spent.
    pub fn run<T, E>(
        mut self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if !self.wait(clock) {
                        return Err(e);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(25),
        }
    }

    #[test]
    fn unjittered_schedule_matches_the_policy_exactly() {
        let clock = TestClock::new();
        let mut backoff = Backoff::new(policy());
        while backoff.wait(&clock) {}
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(10), Duration::from_millis(20), Duration::from_millis(25),],
            "3 delays between 4 attempts, doubling then capped"
        );
    }

    #[test]
    fn run_returns_first_success_and_final_error() {
        let clock = TestClock::new();
        let mut calls = 0;
        let ok: Result<u32, &str> = Backoff::new(policy()).run(&clock, || {
            calls += 1;
            if calls == 3 {
                Ok(7)
            } else {
                Err("down")
            }
        });
        assert_eq!(ok, Ok(7));
        assert_eq!(calls, 3);

        let clock = TestClock::new();
        let mut calls = 0;
        let err: Result<u32, &str> = Backoff::new(policy()).run(&clock, || {
            calls += 1;
            Err("still down")
        });
        assert_eq!(err, Err("still down"));
        assert_eq!(calls, 4, "budget is total attempts, first try included");
        assert_eq!(clock.slept().len(), 3);
    }

    #[test]
    fn jitter_is_seeded_bounded_and_reproducible() {
        let schedule = |seed: u64| {
            let clock = TestClock::new();
            let mut backoff = Backoff::new(policy()).with_jitter_seed(seed);
            while backoff.wait(&clock) {}
            clock.slept()
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed must give the same jittered schedule");
        let c = schedule(43);
        assert_ne!(a, c, "different seeds should jitter differently");
        for (i, d) in a.iter().enumerate() {
            let base = policy().backoff(i as u32).as_secs_f64();
            let f = d.as_secs_f64() / base;
            assert!((0.75..1.25).contains(&f), "jitter factor {f} out of range");
        }
    }

    #[test]
    fn wait_at_least_honours_the_floor() {
        let clock = TestClock::new();
        let mut backoff = Backoff::new(policy());
        assert!(backoff.wait_at_least(Duration::from_millis(100), &clock));
        assert!(backoff.wait_at_least(Duration::from_millis(1), &clock));
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(100), Duration::from_millis(20)],
            "floor wins when larger, policy delay otherwise"
        );
    }

    #[test]
    fn zero_attempt_policies_never_sleep() {
        let clock = TestClock::new();
        let mut backoff = Backoff::new(RetryPolicy { max_attempts: 0, ..policy() });
        assert!(!backoff.can_retry());
        assert!(!backoff.wait(&clock));
        assert!(clock.slept().is_empty());
    }
}
