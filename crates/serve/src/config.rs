//! Service and session configuration builders.
//!
//! The builder family deliberately mirrors `SweepSpec`: chainable
//! `with_*` setters over plain public fields, validated once at open time
//! into typed errors. [`ServiceConfig`] shapes the daemon (queue bound,
//! tenancy limit, session defaults); [`SessionConfig`] shapes one
//! tenant's ingest session (workload, algorithm, engine, batch-former
//! thresholds, and the embedded [`RunConfig`] consumed by the shared
//! harness core).

use std::time::Duration;

use tdgraph_algos::traits::Algo;
use tdgraph_engines::config::RunConfig;
use tdgraph_graph::datasets::{Dataset, Sizing};
use tdgraph_graph::quarantine::IngestMode;

/// The algorithm a tenant session runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AlgoChoice {
    /// SSSP rooted at the workload's highest-degree vertex (the
    /// methodology default).
    #[default]
    HubSssp,
    /// A fixed algorithm.
    Fixed(Algo),
}

impl AlgoChoice {
    /// Resolves against a prepared workload's hub vertex.
    #[must_use]
    pub fn resolve(&self, hub: u32) -> Algo {
        match self {
            AlgoChoice::HubSssp => Algo::sssp(hub),
            AlgoChoice::Fixed(a) => *a,
        }
    }
}

impl From<Algo> for AlgoChoice {
    fn from(a: Algo) -> Self {
        AlgoChoice::Fixed(a)
    }
}

/// Configuration of one tenant's ingest session.
///
/// Defaults are service-shaped: lenient ingest (the wire is the front
/// door for hostile traffic, so bad records quarantine instead of
/// erroring), the 4-core test machine, batches closed at 256 entries or
/// a 50 ms latency deadline — whichever fires first.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The base workload: dataset profile streamed 50 %-preloaded.
    pub dataset: Dataset,
    /// Workload sizing.
    pub sizing: Sizing,
    /// Algorithm selection.
    pub algo: AlgoChoice,
    /// Engine registry key (e.g. `"ligra-o"`, `"tdgraph-h"`).
    pub engine: String,
    /// The embedded harness configuration. `batches`, `batch_size`,
    /// `add_fraction`, `seed`, and `fault_plan` are ignored — the wire
    /// stream drives the schedule — but everything else (machine, α,
    /// oracle cadence, ingest mode, exec mode) applies as offline.
    pub run: RunConfig,
    /// Size threshold: the batch former closes a batch when it holds this
    /// many entries (accepted updates *and* quarantined malformed lines —
    /// counting both keeps buffered memory bounded under garbage floods).
    pub batch_max_entries: usize,
    /// Latency deadline: an open batch closes this long after its first
    /// entry arrived, even if under the size threshold.
    pub batch_deadline: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            dataset: Dataset::Amazon,
            sizing: Sizing::Tiny,
            algo: AlgoChoice::HubSssp,
            engine: "ligra-o".to_string(),
            run: RunConfig::small().with_ingest(IngestMode::Lenient),
            batch_max_entries: 256,
            batch_deadline: Duration::from_millis(50),
        }
    }
}

impl SessionConfig {
    /// A default session config.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the workload dataset.
    #[must_use]
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Sets the workload sizing.
    #[must_use]
    pub fn with_sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Sets the algorithm.
    #[must_use]
    pub fn with_algo(mut self, algo: impl Into<AlgoChoice>) -> Self {
        self.algo = algo.into();
        self
    }

    /// Sets the engine registry key.
    #[must_use]
    pub fn with_engine(mut self, key: impl Into<String>) -> Self {
        self.engine = key.into();
        self
    }

    /// Replaces the embedded harness configuration.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Mutates the embedded harness configuration in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunConfig)) -> Self {
        f(&mut self.run);
        self
    }

    /// Sets the batch-former size threshold.
    #[must_use]
    pub fn with_batch_max_entries(mut self, max_entries: usize) -> Self {
        self.batch_max_entries = max_entries;
        self
    }

    /// Sets the batch-former latency deadline.
    #[must_use]
    pub fn with_batch_deadline(mut self, deadline: Duration) -> Self {
        self.batch_deadline = deadline;
        self
    }

    /// Validates this session config (thresholds plus the embedded
    /// [`RunConfig`]).
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_max_entries == 0 {
            return Err("batch_max_entries must be >= 1".to_string());
        }
        if self.batch_deadline.is_zero() {
            return Err("batch_deadline must be non-zero".to_string());
        }
        self.run.validate().map_err(|e| e.to_string())
    }
}

/// Configuration of the service as a whole.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded per-tenant ingest-queue capacity (messages). A full queue
    /// blocks the producer — backpressure, not memory growth.
    pub queue_capacity: usize,
    /// Maximum concurrently open tenants.
    pub max_tenants: usize,
    /// Session defaults for tenants opened without an explicit config.
    pub session_defaults: SessionConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { queue_capacity: 1024, max_tenants: 16, session_defaults: SessionConfig::default() }
    }
}

impl ServiceConfig {
    /// A default service config.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bounded per-tenant queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the tenancy limit.
    #[must_use]
    pub fn with_max_tenants(mut self, max_tenants: usize) -> Self {
        self.max_tenants = max_tenants;
        self
    }

    /// Sets the session defaults.
    #[must_use]
    pub fn with_session_defaults(mut self, defaults: SessionConfig) -> Self {
        self.session_defaults = defaults;
        self
    }

    /// Validates the service config and its session defaults.
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        if self.max_tenants == 0 {
            return Err("max_tenants must be >= 1".to_string());
        }
        self.session_defaults.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServiceConfig::default().validate().unwrap();
        SessionConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_thresholds_are_rejected() {
        assert!(SessionConfig::new().with_batch_max_entries(0).validate().is_err());
        assert!(SessionConfig::new().with_batch_deadline(Duration::ZERO).validate().is_err());
        assert!(ServiceConfig::new().with_queue_capacity(0).validate().is_err());
        assert!(ServiceConfig::new().with_max_tenants(0).validate().is_err());
    }

    #[test]
    fn embedded_run_config_is_validated() {
        let bad = SessionConfig::new().tune(|r| r.alpha = -1.0);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("alpha"));
    }
}
