//! Service and session configuration builders.
//!
//! The builder family deliberately mirrors `SweepSpec`: chainable
//! `with_*` setters over plain public fields, validated once at open time
//! into typed errors. [`ServiceConfig`] shapes the daemon (queue bound,
//! tenancy limit, session defaults); [`SessionConfig`] shapes one
//! tenant's ingest session (workload, algorithm, engine, batch-former
//! thresholds, and the embedded [`RunConfig`] consumed by the shared
//! harness core).

use std::path::PathBuf;
use std::time::Duration;

use tdgraph_algos::traits::Algo;
use tdgraph_engines::config::RunConfig;
use tdgraph_graph::datasets::{Dataset, Sizing};
use tdgraph_graph::quarantine::IngestMode;

use crate::wal::WalHead;

/// The algorithm a tenant session runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AlgoChoice {
    /// SSSP rooted at the workload's highest-degree vertex (the
    /// methodology default).
    #[default]
    HubSssp,
    /// A fixed algorithm.
    Fixed(Algo),
}

impl AlgoChoice {
    /// Resolves against a prepared workload's hub vertex.
    #[must_use]
    pub fn resolve(&self, hub: u32) -> Algo {
        match self {
            AlgoChoice::HubSssp => Algo::sssp(hub),
            AlgoChoice::Fixed(a) => *a,
        }
    }
}

impl From<Algo> for AlgoChoice {
    fn from(a: Algo) -> Self {
        AlgoChoice::Fixed(a)
    }
}

/// Configuration of one tenant's ingest session.
///
/// Defaults are service-shaped: lenient ingest (the wire is the front
/// door for hostile traffic, so bad records quarantine instead of
/// erroring), the 4-core test machine, batches closed at 256 entries or
/// a 50 ms latency deadline — whichever fires first.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The base workload: dataset profile streamed 50 %-preloaded.
    pub dataset: Dataset,
    /// Workload sizing.
    pub sizing: Sizing,
    /// Algorithm selection.
    pub algo: AlgoChoice,
    /// Engine registry key (e.g. `"ligra-o"`, `"tdgraph-h"`).
    pub engine: String,
    /// The embedded harness configuration. `batches`, `batch_size`,
    /// `add_fraction`, `seed`, and `fault_plan` are ignored — the wire
    /// stream drives the schedule — but everything else (machine, α,
    /// oracle cadence, ingest mode, exec mode) applies as offline.
    pub run: RunConfig,
    /// Size threshold: the batch former closes a batch when it holds this
    /// many entries (accepted updates *and* quarantined malformed lines —
    /// counting both keeps buffered memory bounded under garbage floods).
    pub batch_max_entries: usize,
    /// Latency deadline: an open batch closes this long after its first
    /// entry arrived, even if under the size threshold.
    pub batch_deadline: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            dataset: Dataset::Amazon,
            sizing: Sizing::Tiny,
            algo: AlgoChoice::HubSssp,
            engine: "ligra-o".to_string(),
            run: RunConfig::small().with_ingest(IngestMode::Lenient),
            batch_max_entries: 256,
            batch_deadline: Duration::from_millis(50),
        }
    }
}

impl SessionConfig {
    /// A default session config.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the workload dataset.
    #[must_use]
    pub fn with_dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// Sets the workload sizing.
    #[must_use]
    pub fn with_sizing(mut self, sizing: Sizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Sets the algorithm.
    #[must_use]
    pub fn with_algo(mut self, algo: impl Into<AlgoChoice>) -> Self {
        self.algo = algo.into();
        self
    }

    /// Sets the engine registry key.
    #[must_use]
    pub fn with_engine(mut self, key: impl Into<String>) -> Self {
        self.engine = key.into();
        self
    }

    /// Replaces the embedded harness configuration.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Mutates the embedded harness configuration in place.
    #[must_use]
    pub fn tune(mut self, f: impl FnOnce(&mut RunConfig)) -> Self {
        f(&mut self.run);
        self
    }

    /// Sets the batch-former size threshold.
    #[must_use]
    pub fn with_batch_max_entries(mut self, max_entries: usize) -> Self {
        self.batch_max_entries = max_entries;
        self
    }

    /// Sets the batch-former latency deadline.
    #[must_use]
    pub fn with_batch_deadline(mut self, deadline: Duration) -> Self {
        self.batch_deadline = deadline;
        self
    }

    /// Validates this session config (thresholds plus the embedded
    /// [`RunConfig`]).
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_max_entries == 0 {
            return Err("batch_max_entries must be >= 1".to_string());
        }
        if self.batch_deadline.is_zero() {
            return Err("batch_deadline must be non-zero".to_string());
        }
        self.run.validate().map_err(|e| e.to_string())
    }

    /// The durable-log head record for a tenant opened with this config:
    /// the session fields in `hello` vocabulary, so recovery resolves
    /// them through the same parser the wire uses.
    #[must_use]
    pub fn wal_head(&self, tenant: &str) -> WalHead {
        let algo = match &self.algo {
            AlgoChoice::HubSssp => "sssp".to_string(),
            AlgoChoice::Fixed(a) => a.name().to_ascii_lowercase(),
        };
        WalHead {
            tenant: tenant.to_string(),
            engine: self.engine.clone(),
            dataset: self.dataset.abbrev().to_string(),
            sizing: match self.sizing {
                Sizing::Reference => "reference",
                Sizing::Small => "small",
                Sizing::Tiny => "tiny",
            }
            .to_string(),
            algo,
            batch_max_entries: self.batch_max_entries,
            batch_deadline_ms: u64::try_from(self.batch_deadline.as_millis()).unwrap_or(u64::MAX),
        }
    }
}

/// Supervision policy for tenant engine generations: how long one batch
/// may take before the watchdog detaches the generation, how many
/// deterministic restart-with-replay attempts a tenant gets, and the base
/// of the exponential restart backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Restart budget per tenant. A generation that panics or hangs is
    /// restarted and the recorded schedule replayed from the top; after
    /// this many restarts the tenant is abandoned with evidence.
    pub max_restarts: u32,
    /// Wall-clock bound on a single batch ingest (and on finish). A
    /// generation exceeding it is treated as hung: detached, never joined.
    pub batch_watchdog: Duration,
    /// Base restart delay; attempt `k` (1-based) waits
    /// `restart_backoff * 2^(k-1)` — deterministic, bounded by the
    /// restart budget.
    pub restart_backoff: Duration,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        Self {
            max_restarts: 2,
            batch_watchdog: Duration::from_secs(30),
            restart_backoff: Duration::from_millis(10),
        }
    }
}

impl SupervisionConfig {
    /// A default supervision policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-tenant restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Sets the per-batch wall-clock watchdog.
    #[must_use]
    pub fn with_batch_watchdog(mut self, watchdog: Duration) -> Self {
        self.batch_watchdog = watchdog;
        self
    }

    /// Sets the base restart backoff.
    #[must_use]
    pub fn with_restart_backoff(mut self, backoff: Duration) -> Self {
        self.restart_backoff = backoff;
        self
    }

    /// The deterministic backoff before restart attempt `attempt`
    /// (1-based): `restart_backoff * 2^(attempt-1)`, saturating.
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        self.restart_backoff
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(u32::MAX))
    }
}

/// Overload-shedding policy. When absent (the default) the service keeps
/// its original behaviour: a full tenant queue blocks the producer
/// (backpressure). When present, admission is checked *before* the line
/// is logged or queued, and refusals are explicit `shed` replies carrying
/// a `retry_after` hint — the accept loop never blocks on a slow tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Global budget of admitted-but-unprocessed entries across all
    /// tenants. Admission is refused while the outstanding count is at or
    /// over this bound, so one hung tenant saturates the budget instead
    /// of growing memory.
    pub entry_budget: usize,
    /// The retry hint attached to shed replies.
    pub retry_after: Duration,
    /// Whether a full per-tenant queue sheds instead of blocking the
    /// producer.
    pub shed_on_queue_full: bool,
    /// Socket write deadline for replies; a slow-reading client errors
    /// out instead of wedging its connection handler.
    pub write_deadline: Option<Duration>,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            entry_budget: 4096,
            retry_after: Duration::from_millis(50),
            shed_on_queue_full: true,
            write_deadline: Some(Duration::from_secs(5)),
        }
    }
}

impl OverloadPolicy {
    /// A default overload policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the global unprocessed-entry budget.
    #[must_use]
    pub fn with_entry_budget(mut self, budget: usize) -> Self {
        self.entry_budget = budget;
        self
    }

    /// Sets the retry hint attached to shed replies.
    #[must_use]
    pub fn with_retry_after(mut self, retry_after: Duration) -> Self {
        self.retry_after = retry_after;
        self
    }

    /// Sets whether a full tenant queue sheds instead of blocking.
    #[must_use]
    pub fn with_shed_on_queue_full(mut self, shed: bool) -> Self {
        self.shed_on_queue_full = shed;
        self
    }

    /// Sets the reply write deadline.
    #[must_use]
    pub fn with_write_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.write_deadline = deadline;
        self
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.entry_budget == 0 {
            return Err("overload entry_budget must be >= 1".to_string());
        }
        if self.retry_after.is_zero() {
            return Err("overload retry_after must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Configuration of the service as a whole.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded per-tenant ingest-queue capacity (messages). A full queue
    /// blocks the producer — backpressure, not memory growth.
    pub queue_capacity: usize,
    /// Maximum concurrently open tenants.
    pub max_tenants: usize,
    /// Session defaults for tenants opened without an explicit config.
    pub session_defaults: SessionConfig,
    /// Durable ingest-log directory. `None` disables the WAL (the PR 6
    /// in-memory behaviour); `Some` makes every accepted line durable
    /// before it enters the queue and enables crash recovery.
    pub wal_dir: Option<PathBuf>,
    /// Per-tenant supervision policy (always on; panics are never allowed
    /// to escape a tenant worker).
    pub supervision: SupervisionConfig,
    /// Overload-shedding policy. `None` (default) keeps blocking
    /// backpressure; `Some` sheds with explicit `retry_after` replies.
    pub overload: Option<OverloadPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_tenants: 16,
            session_defaults: SessionConfig::default(),
            wal_dir: None,
            supervision: SupervisionConfig::default(),
            overload: None,
        }
    }
}

impl ServiceConfig {
    /// A default service config.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bounded per-tenant queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the tenancy limit.
    #[must_use]
    pub fn with_max_tenants(mut self, max_tenants: usize) -> Self {
        self.max_tenants = max_tenants;
        self
    }

    /// Sets the session defaults.
    #[must_use]
    pub fn with_session_defaults(mut self, defaults: SessionConfig) -> Self {
        self.session_defaults = defaults;
        self
    }

    /// Enables the durable ingest WAL under `dir`.
    #[must_use]
    pub fn with_wal_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Sets the supervision policy.
    #[must_use]
    pub fn with_supervision(mut self, supervision: SupervisionConfig) -> Self {
        self.supervision = supervision;
        self
    }

    /// Enables overload shedding under `policy`.
    #[must_use]
    pub fn with_overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Validates the service config and its session defaults.
    ///
    /// # Errors
    ///
    /// A human-readable reason naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be >= 1".to_string());
        }
        if self.max_tenants == 0 {
            return Err("max_tenants must be >= 1".to_string());
        }
        if let Some(overload) = &self.overload {
            overload.validate()?;
        }
        self.session_defaults.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServiceConfig::default().validate().unwrap();
        SessionConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_thresholds_are_rejected() {
        assert!(SessionConfig::new().with_batch_max_entries(0).validate().is_err());
        assert!(SessionConfig::new().with_batch_deadline(Duration::ZERO).validate().is_err());
        assert!(ServiceConfig::new().with_queue_capacity(0).validate().is_err());
        assert!(ServiceConfig::new().with_max_tenants(0).validate().is_err());
    }

    #[test]
    fn embedded_run_config_is_validated() {
        let bad = SessionConfig::new().tune(|r| r.alpha = -1.0);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("alpha"));
    }

    #[test]
    fn overload_policy_is_validated() {
        let bad = ServiceConfig::new().with_overload(OverloadPolicy::new().with_entry_budget(0));
        assert!(bad.validate().unwrap_err().contains("entry_budget"));
        let bad = ServiceConfig::new()
            .with_overload(OverloadPolicy::new().with_retry_after(Duration::ZERO));
        assert!(bad.validate().unwrap_err().contains("retry_after"));
        ServiceConfig::new().with_overload(OverloadPolicy::new()).validate().unwrap();
    }

    #[test]
    fn restart_backoff_is_deterministic_and_exponential() {
        let sup = SupervisionConfig::new().with_restart_backoff(Duration::from_millis(10));
        assert_eq!(sup.backoff_before(1), Duration::from_millis(10));
        assert_eq!(sup.backoff_before(2), Duration::from_millis(20));
        assert_eq!(sup.backoff_before(3), Duration::from_millis(40));
    }

    #[test]
    fn wal_head_round_trips_session_labels() {
        let sc = SessionConfig::new()
            .with_dataset(Dataset::Dblp)
            .with_sizing(Sizing::Small)
            .with_algo(Algo::pagerank())
            .with_engine("graphbolt")
            .with_batch_max_entries(8)
            .with_batch_deadline(Duration::from_secs(600));
        let head = sc.wal_head("alpha");
        assert_eq!(head.tenant, "alpha");
        assert_eq!(head.engine, "graphbolt");
        assert_eq!(head.dataset, Dataset::Dblp.abbrev());
        assert_eq!(head.sizing, "small");
        assert_eq!(head.algo, "pagerank");
        assert_eq!(head.batch_max_entries, 8);
        assert_eq!(head.batch_deadline(), Duration::from_secs(600));
    }
}
