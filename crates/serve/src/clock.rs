//! An injectable clock for deterministic retry/backoff tests.
//!
//! Client-side retry logic (connect retries, shed-reply backoff) must be
//! testable without real sleeps: the tests inject a [`TestClock`] whose
//! `sleep` records the requested duration and returns immediately, so a
//! retry schedule can be asserted exactly — which attempts slept, and for
//! how long — in microseconds of wall time.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A source of time and delay, injectable for tests.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
    /// Blocks (or pretends to) for `d`.
    fn sleep(&self, d: Duration);
}

/// The real wall clock: `Instant::now` and `thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock for tests: `sleep` advances virtual time instantly and
/// records every requested delay, so backoff schedules are asserted
/// without wall-clock waits.
#[derive(Debug)]
pub struct TestClock {
    origin: Instant,
    elapsed: Mutex<Duration>,
    slept: Mutex<Vec<Duration>>,
}

impl Default for TestClock {
    fn default() -> Self {
        Self::new()
    }
}

impl TestClock {
    /// A virtual clock starting at the real current instant.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            elapsed: Mutex::new(Duration::ZERO),
            slept: Mutex::new(Vec::new()),
        }
    }

    /// Every duration `sleep` was asked for, in call order.
    #[must_use]
    pub fn slept(&self) -> Vec<Duration> {
        lock_ok(&self.slept).clone()
    }

    /// Total virtual time slept.
    #[must_use]
    pub fn total_slept(&self) -> Duration {
        lock_ok(&self.slept).iter().sum()
    }
}

impl Clock for TestClock {
    fn now(&self) -> Instant {
        self.origin + *lock_ok(&self.elapsed)
    }

    fn sleep(&self, d: Duration) {
        *lock_ok(&self.elapsed) += d;
        lock_ok(&self.slept).push(d);
    }
}

// The guarded values are plain data; a poisoned lock cannot leave them
// inconsistent, so recover instead of propagating an unrelated panic.
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_advances_without_blocking() {
        let clock = TestClock::new();
        let before = clock.now();
        let wall = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        clock.sleep(Duration::from_millis(5));
        assert!(wall.elapsed() < Duration::from_secs(5), "sleep must not block");
        assert_eq!(clock.now() - before, Duration::from_secs(3600) + Duration::from_millis(5));
        assert_eq!(clock.slept(), vec![Duration::from_secs(3600), Duration::from_millis(5)]);
    }
}
