//! The service wire protocol: JSON lines over a byte stream.
//!
//! Framing reuses the flat-object codec of `tdgraph_graph::wire`. A
//! connection speaks newline-delimited JSON in both directions:
//!
//! * **Requests** are objects with a `"req"` key: `hello`, `flush`,
//!   `snapshot`, `finish`, `shutdown`.
//! * **Data lines** are everything else, forwarded verbatim to the
//!   tenant's ingest queue. Well-formed lines are edge updates in the
//!   `tdgraph_graph::wire` format; anything else rides along and is
//!   quarantined at ingest time — garbage on the wire is *data* (a
//!   `MalformedLine` quarantine record), never a protocol error.
//! * **Events** (server → client) are objects with an `"ev"` key: `ok`,
//!   `error`, `report`, `snapshot`, plus raw schedule/snapshot lines
//!   bracketed by the event that announces them and a final
//!   `{"ev":"end"}`.
//!
//! Data lines are deliberately un-acked (streaming throughput; flow
//!  control is TCP + the bounded queue). Requests are synchronous: the
//! reply orders after every data line sent before it on the same
//! connection.

use tdgraph_graph::wire::{json_escape_wire, lookup_str, parse_flat_object, sanitize_detail};

use crate::service::{ShedReply, TenantReport};

/// A parsed client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientLine {
    /// `{"req":"hello","tenant":...}` with optional session overrides.
    Hello(HelloRequest),
    /// `{"req":"flush"}` — force the open batch out.
    Flush,
    /// `{"req":"snapshot"}` — read-only progress view.
    Snapshot,
    /// `{"req":"finish"}` — drain, verify, report, close the tenant.
    Finish,
    /// `{"req":"shutdown"}` — stop accepting connections.
    Shutdown,
    /// Anything without a `"req"` key: forwarded to the ingest queue.
    Data(String),
}

/// Session overrides carried by a `hello` request. Absent fields fall
/// back to the service's session defaults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HelloRequest {
    /// Tenant name (required).
    pub tenant: String,
    /// Engine registry key.
    pub engine: Option<String>,
    /// Dataset name (`amazon`, `dblp`, `gplus`, `livejournal`, `orkut`,
    /// `friendster`, or the Table 2 abbreviation).
    pub dataset: Option<String>,
    /// Sizing (`tiny`, `small`, `reference`).
    pub sizing: Option<String>,
    /// Algorithm (`sssp` for hub-rooted SSSP, `pagerank`, `cc`,
    /// `adsorption`).
    pub algo: Option<String>,
}

/// Classifies one client line.
///
/// # Errors
///
/// A bounded human-readable reason when the line *is* a request but is
/// malformed (unknown `req` value, missing `tenant` on hello). Non-request
/// lines never error — they classify as [`ClientLine::Data`].
pub fn parse_client_line(line: &str) -> Result<ClientLine, String> {
    let Ok(fields) = parse_flat_object(line) else {
        return Ok(ClientLine::Data(line.to_string()));
    };
    let Ok(req) = lookup_str(&fields, "req") else {
        return Ok(ClientLine::Data(line.to_string()));
    };
    match req.as_str() {
        "hello" => {
            let tenant = lookup_str(&fields, "tenant")
                .map_err(|_| "hello requires a \"tenant\" field".to_string())?;
            let opt = |key: &str| lookup_str(&fields, key).ok();
            Ok(ClientLine::Hello(HelloRequest {
                tenant,
                engine: opt("engine"),
                dataset: opt("dataset"),
                sizing: opt("sizing"),
                algo: opt("algo"),
            }))
        }
        "flush" => Ok(ClientLine::Flush),
        "snapshot" => Ok(ClientLine::Snapshot),
        "finish" => Ok(ClientLine::Finish),
        "shutdown" => Ok(ClientLine::Shutdown),
        other => Err(format!("unknown request {:?}", sanitize_detail(other))),
    }
}

/// `{"ev":"ok","req":...}` acknowledgement.
#[must_use]
pub fn render_ok(req: &str) -> String {
    format!("{{\"ev\":\"ok\",\"req\":\"{}\"}}", json_escape_wire(req))
}

/// `{"ev":"error","detail":...}` with a sanitized, bounded detail.
#[must_use]
pub fn render_error(detail: &str) -> String {
    format!("{{\"ev\":\"error\",\"detail\":\"{}\"}}", json_escape_wire(&sanitize_detail(detail)))
}

/// The `hello` acknowledgement, carrying the tenant's durable resume
/// offset: the count of clean lines already accepted (from this or any
/// prior connection, surviving daemon restarts via the WAL). A
/// reconnecting client resumes sending at data-line index `acked`.
#[must_use]
pub fn render_hello_ok(acked: u64) -> String {
    format!("{{\"ev\":\"ok\",\"req\":\"hello\",\"acked\":{acked}}}")
}

/// An explicit overload refusal for the data line at 0-based
/// per-connection index `line`: `{"ev":"shed",...}` with the shed reason
/// and a `retry_after_ms` hint. Unlike accepted data lines (un-acked),
/// shed lines are answered — the client must know exactly which lines
/// never entered the log.
#[must_use]
pub fn render_shed(line: u64, reply: &ShedReply) -> String {
    format!(
        "{{\"ev\":\"shed\",\"line\":{line},\"reason\":\"{}\",\"retry_after_ms\":{}}}",
        reply.reason.label(),
        reply.retry_after.as_millis(),
    )
}

/// The terminal `{"ev":"end"}` marker closing a multi-line reply.
pub const END_EVENT: &str = "{\"ev\":\"end\"}";

/// Renders a finished tenant's report as deterministic wire lines:
///
/// 1. a `report` event (tenant, engine, algo, status, verification and
///    quarantine summary),
/// 2. the recorded schedule as `tdgraph_graph::wire` JSONL,
/// 3. the tenant's canonical observability snapshot line,
/// 4. [`END_EVENT`].
///
/// Every line is free of wall-clock and queue-timing data, so the same
/// function applied to a live report and to its offline replay must
/// produce byte-identical output — the service's determinism contract is
/// checked against exactly this rendering. (`queue_peak` is deliberately
/// excluded; it lives in the service stats surface.)
#[must_use]
pub fn render_report(report: &TenantReport) -> Vec<String> {
    let mut head = format!(
        "{{\"ev\":\"report\",\"tenant\":\"{}\",\"engine\":\"{}\",\"algo\":\"{}\"",
        json_escape_wire(&report.tenant),
        json_escape_wire(&report.engine),
        json_escape_wire(&report.algo),
    );
    match &report.result {
        Ok(result) => {
            let verify = if result.verify.is_match() { "match" } else { "mismatch" };
            head.push_str(&format!(
                ",\"status\":\"ok\",\"verify\":\"{}\",\"quarantined\":{},\"oracle_checks\":{},\"oracle_mismatches\":{}}}",
                verify,
                result.quarantine.total(),
                result.oracle.checks,
                result.oracle.mismatches,
            ));
        }
        Err(detail) => {
            head.push_str(&format!(
                ",\"status\":\"error\",\"detail\":\"{}\"}}",
                json_escape_wire(&sanitize_detail(detail)),
            ));
        }
    }
    let mut lines = vec![head];
    lines.extend(report.schedule.to_jsonl().lines().map(String::from));
    lines.push(report.snapshot.canonical_json_line());
    lines.push(END_EVENT.to_string());
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_classify() {
        let hello =
            parse_client_line("{\"req\":\"hello\",\"tenant\":\"a\",\"engine\":\"dzig\"}").unwrap();
        match hello {
            ClientLine::Hello(h) => {
                assert_eq!(h.tenant, "a");
                assert_eq!(h.engine.as_deref(), Some("dzig"));
                assert!(h.dataset.is_none());
            }
            other => panic!("expected hello, got {other:?}"),
        }
        assert_eq!(parse_client_line("{\"req\":\"flush\"}").unwrap(), ClientLine::Flush);
        assert_eq!(parse_client_line("{\"req\":\"finish\"}").unwrap(), ClientLine::Finish);
    }

    #[test]
    fn non_request_lines_are_data_even_when_garbage() {
        let update = "{\"op\":\"add\",\"src\":1,\"dst\":2,\"weight\":1}";
        assert_eq!(parse_client_line(update).unwrap(), ClientLine::Data(update.to_string()));
        assert_eq!(
            parse_client_line("!!not json!!").unwrap(),
            ClientLine::Data("!!not json!!".to_string())
        );
    }

    #[test]
    fn hello_without_tenant_is_a_protocol_error() {
        assert!(parse_client_line("{\"req\":\"hello\"}").is_err());
        assert!(parse_client_line("{\"req\":\"warp\"}").is_err());
    }

    #[test]
    fn hello_ack_and_shed_render_stably() {
        use crate::service::ShedReason;
        use std::time::Duration;

        let ack = render_hello_ok(42);
        assert_eq!(ack, "{\"ev\":\"ok\",\"req\":\"hello\",\"acked\":42}");
        assert!(ack.starts_with("{\"ev\":\"ok\""), "must satisfy the generic ok check");
        let shed = render_shed(
            7,
            &ShedReply { reason: ShedReason::EntryBudget, retry_after: Duration::from_millis(25) },
        );
        assert_eq!(
            shed,
            "{\"ev\":\"shed\",\"line\":7,\"reason\":\"entry_budget\",\"retry_after_ms\":25}"
        );
    }
}
