//! Adaptive batch forming: close on size *or* latency deadline.
//!
//! The former is a small explicit state machine, deliberately free of any
//! clock of its own — every transition takes the current [`Instant`] as a
//! parameter. That keeps the policy deterministic and unit-testable (tests
//! feed synthetic instants) and leaves the *scheduling* of deadline checks
//! to the service worker loop, which is the only place real time exists.
//!
//! States:
//!
//! * **Empty** — no buffered entries, no deadline armed.
//! * **Open** — ≥ 1 buffered entry; a deadline of `first_entry_at +
//!   deadline` is armed. New entries never extend the deadline (the bound
//!   is on the *oldest* buffered entry's latency).
//!
//! Transitions out of **Open** back to **Empty** emit a closed batch
//! tagged with why it closed ([`BatchClose`]): the size threshold was
//! reached, the deadline passed, or an explicit flush (client request or
//! shutdown drain) forced it out.

use std::time::{Duration, Instant};

use tdgraph_graph::wire::RecordedEntry;

/// Why a batch closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClose {
    /// The size threshold was reached.
    Size,
    /// The latency deadline for the oldest buffered entry passed.
    Deadline,
    /// An explicit flush (client request or shutdown drain).
    Flush,
}

impl BatchClose {
    /// Stable lowercase label, used in trace events and wire replies.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BatchClose::Size => "size",
            BatchClose::Deadline => "deadline",
            BatchClose::Flush => "flush",
        }
    }
}

/// The adaptive batch former for one tenant stream.
#[derive(Debug)]
pub struct BatchFormer {
    max_entries: usize,
    deadline: Duration,
    buffered: Vec<RecordedEntry>,
    opened_at: Option<Instant>,
}

impl BatchFormer {
    /// A former that closes batches at `max_entries` entries or
    /// `deadline` after the first buffered entry, whichever comes first.
    #[must_use]
    pub fn new(max_entries: usize, deadline: Duration) -> Self {
        Self { max_entries: max_entries.max(1), deadline, buffered: Vec::new(), opened_at: None }
    }

    /// Number of currently buffered entries.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// The armed deadline, if a batch is open.
    ///
    /// The worker loop uses this to bound its queue wait: sleep until
    /// `deadline_at`, then call [`close_if_due`](Self::close_if_due).
    #[must_use]
    pub fn deadline_at(&self) -> Option<Instant> {
        self.opened_at.map(|t| t + self.deadline)
    }

    /// Buffers one entry at time `now`; returns the closed batch if this
    /// entry reached the size threshold.
    pub fn push(
        &mut self,
        entry: RecordedEntry,
        now: Instant,
    ) -> Option<(Vec<RecordedEntry>, BatchClose)> {
        if self.buffered.is_empty() {
            self.opened_at = Some(now);
        }
        self.buffered.push(entry);
        if self.buffered.len() >= self.max_entries {
            return Some((self.take(), BatchClose::Size));
        }
        None
    }

    /// Closes the open batch if its deadline has passed by `now`.
    pub fn close_if_due(&mut self, now: Instant) -> Option<(Vec<RecordedEntry>, BatchClose)> {
        match self.deadline_at() {
            Some(due) if now >= due => Some((self.take(), BatchClose::Deadline)),
            _ => None,
        }
    }

    /// Unconditionally closes the open batch (client flush or shutdown
    /// drain). Returns `None` when nothing is buffered — flushing an
    /// empty former is a no-op, never an empty batch.
    pub fn flush(&mut self) -> Option<(Vec<RecordedEntry>, BatchClose)> {
        if self.buffered.is_empty() {
            return None;
        }
        Some((self.take(), BatchClose::Flush))
    }

    fn take(&mut self) -> Vec<RecordedEntry> {
        self.opened_at = None;
        std::mem::take(&mut self.buffered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdgraph_graph::update::EdgeUpdate;

    fn add(src: u32, dst: u32) -> RecordedEntry {
        RecordedEntry::Update(EdgeUpdate::addition(src, dst, 1.0))
    }

    #[test]
    fn size_threshold_closes_the_batch() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(3, Duration::from_secs(60));
        assert!(f.push(add(0, 1), t0).is_none());
        assert!(f.push(add(1, 2), t0).is_none());
        let (batch, why) = f.push(add(2, 3), t0).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(why, BatchClose::Size);
        assert_eq!(f.buffered(), 0);
        assert!(f.deadline_at().is_none());
    }

    #[test]
    fn deadline_closes_an_undersized_batch() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(100, Duration::from_millis(10));
        assert!(f.push(add(0, 1), t0).is_none());
        // Not yet due just before the deadline.
        assert!(f.close_if_due(t0 + Duration::from_millis(9)).is_none());
        let (batch, why) = f.close_if_due(t0 + Duration::from_millis(10)).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(why, BatchClose::Deadline);
    }

    #[test]
    fn deadline_is_anchored_to_the_first_entry_not_the_latest() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(100, Duration::from_millis(10));
        f.push(add(0, 1), t0);
        // A later entry must not extend the armed deadline.
        f.push(add(1, 2), t0 + Duration::from_millis(8));
        assert_eq!(f.deadline_at().unwrap(), t0 + Duration::from_millis(10));
        let (batch, _) = f.close_if_due(t0 + Duration::from_millis(10)).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn flush_forces_out_a_partial_batch_and_is_a_noop_when_empty() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(100, Duration::from_secs(60));
        assert!(f.flush().is_none());
        f.push(add(0, 1), t0);
        let (batch, why) = f.flush().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(why, BatchClose::Flush);
        assert!(f.flush().is_none());
    }

    #[test]
    fn malformed_entries_count_toward_the_size_threshold() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(2, Duration::from_secs(60));
        assert!(f.push(RecordedEntry::Malformed("junk".to_string()), t0).is_none());
        let (batch, why) = f.push(add(0, 1), t0).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(why, BatchClose::Size);
    }

    #[test]
    fn reopening_after_a_close_rearms_the_deadline() {
        let t0 = Instant::now();
        let mut f = BatchFormer::new(2, Duration::from_millis(10));
        f.push(add(0, 1), t0);
        f.push(add(1, 2), t0).unwrap();
        let t1 = t0 + Duration::from_secs(5);
        f.push(add(1, 2), t1);
        assert_eq!(f.deadline_at().unwrap(), t1 + Duration::from_millis(10));
    }
}
