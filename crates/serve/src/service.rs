//! The multi-tenant ingest service.
//!
//! Each tenant is run by a **supervisor** thread that owns the durable
//! and deterministic state — batch former, recorded schedule, WAL
//! markers — and drains a **bounded** `sync_channel`. The engine itself
//! (not `Send`, possibly hostile: it can panic or hang) lives one level
//! down in a **generation** thread the supervisor can discard and
//! respawn. A generation that panics or trips the wall-clock watchdog is
//! replaced — bounded, with deterministic exponential backoff — and the
//! fresh generation replays the recorded schedule from the top, so a
//! recovered tenant's report is byte-identical to an untroubled run of
//! the same schedule. A tenant that exhausts its restart budget is
//! abandoned with evidence; its neighbors and the daemon never notice.
//!
//! Durability: with a WAL directory configured, every accepted line is
//! appended to the tenant's write-ahead log **before** it enters the
//! queue, and every batch close appends a synced marker. After a crash,
//! [`Service::recover_tenants`] reopens each tenant from its WAL and
//! replays the recorded batches through the same ingest path, so the
//! recovered finish reply is byte-identical to an uncrashed run.
//!
//! Overload: by default a full tenant queue blocks the producer
//! (backpressure). With an [`OverloadPolicy`], [`Service::admit_line`]
//! instead checks a global unprocessed-entry budget (and optionally the
//! tenant queue) *before* logging or queuing, and refusals are explicit
//! [`Admission::Shed`] verdicts carrying a `retry_after` hint — admission
//! never blocks, and shed lines never enter the WAL.
//!
//! Determinism: the tenant recorder sees *only* what the offline harness
//! would emit for the same schedule — every timing-dependent quantity
//! (close reasons, queue depths, restarts, sheds) goes to a separate
//! service-level stats recorder. That split is what makes a live report
//! byte-identical to an offline replay of its recorded schedule.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdgraph_engines::engine::Engine;
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_engines::session::{RunResult, StreamingSession};
use tdgraph_graph::datasets::StreamingWorkload;
use tdgraph_graph::wire::{parse_update_line, sanitize_detail, RecordedEntry, RecordedSchedule};
use tdgraph_obs::{keys, MemoryRecorder, Recorder, Snapshot};

use crate::batcher::{BatchClose, BatchFormer};
use crate::config::{OverloadPolicy, ServiceConfig, SessionConfig, SupervisionConfig};
use crate::protocol::HelloRequest;
use crate::wal::{scan_wal_dir, LoadedWal, TenantWal, WalEntry};

/// Errors from the service control surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A config failed validation.
    InvalidConfig(String),
    /// The tenancy limit is reached.
    TenantLimit(usize),
    /// The tenant name is already open.
    DuplicateTenant(String),
    /// No open tenant of that name.
    UnknownTenant(String),
    /// The session references an unregistered engine key.
    UnknownEngine(String),
    /// The workload could not be prepared.
    Workload(String),
    /// The tenant worker is gone (it should never exit on its own).
    WorkerGone(String),
    /// The write-ahead log could not be created or recovered.
    Wal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(reason) => write!(f, "invalid config: {reason}"),
            ServeError::TenantLimit(max) => write!(f, "tenant limit ({max}) reached"),
            ServeError::DuplicateTenant(name) => write!(f, "tenant {name:?} is already open"),
            ServeError::UnknownTenant(name) => write!(f, "no open tenant {name:?}"),
            ServeError::UnknownEngine(key) => write!(f, "unknown engine key {key:?}"),
            ServeError::Workload(reason) => write!(f, "workload preparation failed: {reason}"),
            ServeError::WorkerGone(name) => write!(f, "worker for tenant {name:?} is gone"),
            ServeError::Wal(reason) => write!(f, "write-ahead log failure: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A read-only view of a tenant's progress, served mid-stream.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    /// Clone of the tenant session recorder (deterministic surface).
    pub snapshot: Snapshot,
    /// Batches ingested so far.
    pub batches_done: u64,
    /// Entries currently buffered in the open batch.
    pub buffered: usize,
    /// Records quarantined so far.
    pub quarantined: u64,
}

/// How a tenant's supervision story ended. Deliberately **not** part of
/// the rendered wire report (it is timing-dependent: whether a panic hit
/// depends on which generation ran); it lives here and in the
/// `serve.supervision.*` stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantOutcome {
    /// No generation ever failed.
    Completed,
    /// At least one generation panicked or hung; the final report was
    /// produced by a fresh generation replaying the recorded schedule.
    Recovered {
        /// Restarts performed.
        restarts: u32,
    },
    /// The restart budget was exhausted; no result could be produced.
    Abandoned {
        /// Restarts performed before giving up.
        restarts: u32,
        /// The last failure, bounded and sanitized.
        evidence: String,
    },
}

/// Everything a finished tenant leaves behind.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Engine registry key the session ran.
    pub engine: String,
    /// Algorithm display name.
    pub algo: String,
    /// The run result, or the fatal error that stopped ingestion.
    pub result: Result<RunResult, String>,
    /// The recorded wire schedule — replaying it offline through
    /// [`tdgraph_engines::config::RunSource::Recorded`] reproduces
    /// `result` and `snapshot` byte-identically.
    pub schedule: RecordedSchedule,
    /// Final tenant observability snapshot.
    pub snapshot: Snapshot,
    /// Highest observed ingest-queue depth (filled by the service; may
    /// overshoot the configured bound by at most one in-flight message).
    pub queue_peak: usize,
    /// The supervision outcome (timing-dependent; excluded from the
    /// rendered wire report like `queue_peak`).
    pub outcome: TenantOutcome,
}

/// Why a line was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The global unprocessed-entry budget is saturated.
    EntryBudget,
    /// The tenant's bounded queue is at capacity.
    QueueFull,
}

impl ShedReason {
    /// Stable wire label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::EntryBudget => "entry_budget",
            ShedReason::QueueFull => "queue_full",
        }
    }
}

/// The explicit refusal handed back for a shed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedReply {
    /// Why the line was shed.
    pub reason: ShedReason,
    /// How long the client should wait before retrying.
    pub retry_after: Duration,
}

/// The admission verdict for one data line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The line was logged and queued.
    Accepted,
    /// The line was refused *before* touching the WAL or queue.
    Shed(ShedReply),
}

enum TenantMsg {
    Line(String),
    Truncated(String),
    Flush(Sender<usize>),
    Snapshot(Sender<Box<SnapshotView>>),
    Finish(Sender<Box<TenantReport>>),
}

/// The per-tenant state shared between the service front and the
/// supervisor: queue sender, gauges, resume offset, and the WAL handle.
struct HandleShared {
    tx: SyncSender<TenantMsg>,
    depth: Arc<AtomicI64>,
    peak: AtomicI64,
    /// Clean lines durably accepted — the resume offset a reconnecting
    /// client is told. Truncated fragments are excluded: the client
    /// re-sends the whole line.
    acked: AtomicU64,
    wal: Option<Arc<Mutex<TenantWal>>>,
    /// Serializes producers so WAL append order equals queue order —
    /// the invariant that makes batch-close markers group the right
    /// entries. Never held by the supervisor, so holding it across a
    /// blocking send cannot deadlock.
    producer: Mutex<()>,
}

struct TenantHandle {
    shared: Arc<HandleShared>,
    join: JoinHandle<()>,
}

/// The ingest daemon core: tenant lifecycle, bounded queues, durability,
/// supervision, and service stats. Wire protocol and TCP live in
/// [`crate::server`]; this type is fully usable in-process (the unit and
/// recovery tests drive it directly).
pub struct Service {
    cfg: ServiceConfig,
    registry: Arc<EngineRegistry>,
    tenants: Mutex<HashMap<String, TenantHandle>>,
    stats: Arc<Mutex<MemoryRecorder>>,
    /// Admitted-but-unprocessed entries across all tenants — the overload
    /// budget's measure. Incremented at admission, decremented when a
    /// batch commits, so a hung engine pins it high and saturates the
    /// budget deterministically.
    outstanding: Arc<AtomicI64>,
}

impl Service {
    /// A service over `registry`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(cfg: ServiceConfig, registry: EngineRegistry) -> Result<Self, ServeError> {
        cfg.validate().map_err(ServeError::InvalidConfig)?;
        Ok(Self {
            cfg,
            registry: Arc::new(registry),
            tenants: Mutex::new(HashMap::new()),
            stats: Arc::new(Mutex::new(MemoryRecorder::default())),
            outstanding: Arc::new(AtomicI64::new(0)),
        })
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The session defaults tenants open with when no explicit config is
    /// given.
    #[must_use]
    pub fn session_defaults(&self) -> SessionConfig {
        self.cfg.session_defaults.clone()
    }

    /// Opens `tenant` with the service's session defaults.
    ///
    /// # Errors
    ///
    /// See [`Service::open_tenant_with`].
    pub fn open_tenant(&self, tenant: &str) -> Result<(), ServeError> {
        self.open_tenant_with(tenant, self.cfg.session_defaults.clone())
    }

    /// Opens `tenant` with an explicit session config: prepares the
    /// workload, creates the WAL (when configured), spawns the supervisor
    /// thread, and registers the bounded ingest queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`], [`ServeError::UnknownEngine`],
    /// [`ServeError::Workload`], [`ServeError::DuplicateTenant`],
    /// [`ServeError::TenantLimit`], or [`ServeError::Wal`].
    pub fn open_tenant_with(&self, tenant: &str, sc: SessionConfig) -> Result<(), ServeError> {
        self.open_tenant_inner(tenant, sc, None)
    }

    /// Recovers every tenant with a WAL file in the configured directory:
    /// reopens the session from the WAL head (resolved against the
    /// current session defaults), replays the recorded batches through
    /// the same ingest machinery, and re-feeds the un-batched tail into
    /// the batch former. Returns the recovered tenant names in recovery
    /// (file-name) order. A no-op without a WAL directory.
    ///
    /// Must run before serving: creating a tenant of the same name first
    /// would truncate its log.
    ///
    /// # Errors
    ///
    /// [`ServeError::Wal`] on an unreadable directory, plus the
    /// [`Service::open_tenant_with`] errors. A WAL file with an
    /// unrecoverable head is skipped and counted in `serve.wal.io_errors`,
    /// not an error — one damaged tenant must not block the rest.
    pub fn recover_tenants(&self) -> Result<Vec<String>, ServeError> {
        let Some(dir) = self.cfg.wal_dir.clone() else {
            return Ok(Vec::new());
        };
        let mut recovered = Vec::new();
        for path in scan_wal_dir(&dir).map_err(|e| ServeError::Wal(e.to_string()))? {
            let loaded = match TenantWal::load(&path) {
                Ok(l) => l,
                Err(_) => {
                    lock_stats(&self.stats).counter(keys::SERVE_WAL_IO_ERRORS, 1);
                    continue;
                }
            };
            if loaded.torn_tail {
                lock_stats(&self.stats).counter(keys::SERVE_WAL_TORN_DROPPED, 1);
            }
            let head = &loaded.head;
            let hello = HelloRequest {
                tenant: head.tenant.clone(),
                engine: Some(head.engine.clone()),
                dataset: Some(head.dataset.clone()),
                sizing: Some(head.sizing.clone()),
                algo: Some(head.algo.clone()),
            };
            let sc = crate::server::session_from_hello(self.cfg.session_defaults.clone(), &hello)
                .map_err(|e| ServeError::Wal(format!("{}: {e}", path.display())))?
                .with_batch_max_entries(head.batch_max_entries)
                .with_batch_deadline(head.batch_deadline());
            let tenant = head.tenant.clone();
            self.open_tenant_inner(&tenant, sc, Some(loaded))?;
            recovered.push(tenant);
        }
        Ok(recovered)
    }

    fn open_tenant_inner(
        &self,
        tenant: &str,
        sc: SessionConfig,
        recovered: Option<LoadedWal>,
    ) -> Result<(), ServeError> {
        sc.validate().map_err(ServeError::InvalidConfig)?;
        if !self.registry.contains(&sc.engine) {
            return Err(ServeError::UnknownEngine(sc.engine.clone()));
        }
        // Prepared once here to fail fast and to resolve the algorithm
        // label; each generation re-prepares its own copy in-thread
        // (preparation is deterministic, engines are not `Send`).
        let workload = StreamingWorkload::try_prepare(sc.dataset, sc.sizing)
            .map_err(|e| ServeError::Workload(e.to_string()))?;
        let algo_label = sc.algo.resolve(workload.hub_vertex()).name();
        drop(workload);

        let mut tenants = lock_tenants(&self.tenants);
        if tenants.contains_key(tenant) {
            return Err(ServeError::DuplicateTenant(tenant.to_string()));
        }
        if tenants.len() >= self.cfg.max_tenants {
            return Err(ServeError::TenantLimit(self.cfg.max_tenants));
        }

        let (wal, preseed, acked0) = match recovered {
            Some(loaded) => {
                // The recovered tail is new to this process: count it
                // into the outstanding budget so its eventual batch
                // commit balances. Replayed batches never touch the
                // budget — they were paid for before the crash.
                self.outstanding.fetch_add(loaded.tail.len() as i64, Ordering::SeqCst);
                (
                    Some(Arc::new(Mutex::new(loaded.wal))),
                    Some((loaded.batches, loaded.tail)),
                    loaded.acked,
                )
            }
            None => match &self.cfg.wal_dir {
                Some(dir) => {
                    let w = TenantWal::create(dir, &sc.wal_head(tenant))
                        .map_err(|e| ServeError::Wal(e.to_string()))?;
                    (Some(Arc::new(Mutex::new(w))), None, 0)
                }
                None => (None, None, 0),
            },
        };

        let (tx, rx) = sync_channel(self.cfg.queue_capacity);
        let depth = Arc::new(AtomicI64::new(0));
        let supervisor = Supervisor {
            tenant: tenant.to_string(),
            engine_key: sc.engine.clone(),
            algo_label,
            sc,
            registry: Arc::clone(&self.registry),
            stats: Arc::clone(&self.stats),
            supervision: self.cfg.supervision,
            former: BatchFormer::new(0, Duration::from_secs(1)), // replaced in start()
            schedule: RecordedSchedule::new(),
            wal: wal.clone(),
            outstanding: Arc::clone(&self.outstanding),
            gen: Gen::Abandoned { evidence: String::new() }, // replaced in start()
            restarts: 0,
        };
        let worker_depth = Arc::clone(&depth);
        let join = std::thread::spawn(move || {
            supervisor_loop(supervisor, rx, &worker_depth, preseed);
        });
        tenants.insert(
            tenant.to_string(),
            TenantHandle {
                shared: Arc::new(HandleShared {
                    tx,
                    depth,
                    peak: AtomicI64::new(0),
                    acked: AtomicU64::new(acked0),
                    wal,
                    producer: Mutex::new(()),
                }),
                join,
            },
        );
        Ok(())
    }

    /// Names of the currently open tenants, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        let tenants = lock_tenants(&self.tenants);
        let mut names: Vec<String> = tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether `tenant` is open.
    #[must_use]
    pub fn is_open(&self, tenant: &str) -> bool {
        lock_tenants(&self.tenants).contains_key(tenant)
    }

    /// Clean lines durably accepted for `tenant` — the resume offset a
    /// reconnecting client should continue from. Truncated fragments are
    /// excluded (the client re-sends the whole line).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn acked(&self, tenant: &str) -> Result<u64, ServeError> {
        Ok(self.shared(tenant)?.acked.load(Ordering::SeqCst))
    }

    /// Admitted-but-unprocessed entries across all tenants (the overload
    /// budget's measure).
    #[must_use]
    pub fn outstanding_entries(&self) -> i64 {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Streams one raw wire line into `tenant`'s queue, appending it to
    /// the WAL first when one is configured. Blocks while the queue is at
    /// capacity — this is the backpressure edge. Use
    /// [`Service::admit_line`] for the non-blocking shedding front.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn ingest_line(&self, tenant: &str, line: impl Into<String>) -> Result<(), ServeError> {
        let shared = self.shared(tenant)?;
        self.send_admitted(tenant, &shared, line.into(), false)
    }

    /// Flushes a partial final line cut by connection loss into `tenant`
    /// as a quarantined truncated fragment: it is WAL-logged (but never
    /// counted into the resume offset) and rides the normal batch path
    /// into the session's quarantine ledger.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn ingest_truncated(
        &self,
        tenant: &str,
        fragment: impl Into<String>,
    ) -> Result<(), ServeError> {
        let shared = self.shared(tenant)?;
        lock_stats(&self.stats).counter(keys::SERVE_LINES_TRUNCATED, 1);
        self.send_admitted(tenant, &shared, fragment.into(), true)
    }

    /// The non-blocking admission front. Without an [`OverloadPolicy`]
    /// this is exactly [`Service::ingest_line`] (blocking backpressure).
    /// With one, the global entry budget — and, when enabled, the tenant
    /// queue depth — is checked *before* the line touches the WAL or
    /// queue; refusals return [`Admission::Shed`] with the policy's
    /// `retry_after` and are counted under `serve.shed.*`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn admit_line(
        &self,
        tenant: &str,
        line: impl Into<String>,
    ) -> Result<Admission, ServeError> {
        let Some(policy) = self.cfg.overload else {
            self.ingest_line(tenant, line)?;
            return Ok(Admission::Accepted);
        };
        let shared = self.shared(tenant)?;
        if self.outstanding.load(Ordering::SeqCst) >= policy.entry_budget as i64 {
            return Ok(self.shed(&policy, ShedReason::EntryBudget));
        }
        if policy.shed_on_queue_full
            && shared.depth.load(Ordering::SeqCst) >= self.cfg.queue_capacity as i64
        {
            return Ok(self.shed(&policy, ShedReason::QueueFull));
        }
        self.send_admitted(tenant, &shared, line.into(), false)?;
        Ok(Admission::Accepted)
    }

    fn shed(&self, policy: &OverloadPolicy, reason: ShedReason) -> Admission {
        let mut stats = lock_stats(&self.stats);
        stats.counter(keys::SERVE_SHED_LINES, 1);
        stats.counter(
            match reason {
                ShedReason::EntryBudget => keys::SERVE_SHED_ENTRY_BUDGET,
                ShedReason::QueueFull => keys::SERVE_SHED_QUEUE_FULL,
            },
            1,
        );
        Admission::Shed(ShedReply { reason, retry_after: policy.retry_after })
    }

    /// The admitted-line tail shared by every ingest path: WAL append
    /// (under the producer gate, so log order equals queue order), then
    /// the possibly-blocking queue send, then the depth gauges.
    fn send_admitted(
        &self,
        tenant: &str,
        shared: &HandleShared,
        payload: String,
        truncated: bool,
    ) -> Result<(), ServeError> {
        let _gate = lock_unit(&shared.producer);
        if let Some(wal) = &shared.wal {
            let appended = if truncated {
                lock_wal(wal).append_truncated(&payload)
            } else {
                lock_wal(wal).append_line(&payload)
            };
            let mut stats = lock_stats(&self.stats);
            match appended {
                Ok(()) => stats.counter(keys::SERVE_WAL_APPENDED_ENTRIES, 1),
                Err(_) => stats.counter(keys::SERVE_WAL_IO_ERRORS, 1),
            }
        }
        if !truncated {
            shared.acked.fetch_add(1, Ordering::SeqCst);
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let msg = if truncated { TenantMsg::Truncated(payload) } else { TenantMsg::Line(payload) };
        if shared.tx.send(msg).is_err() {
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::WorkerGone(tenant.to_string()));
        }
        // Count after the (possibly blocking) send: the counted depth
        // tracks messages actually enqueued, so the observed peak can
        // exceed the structural bound by at most the one message the
        // worker has received but not yet counted off.
        let d = shared.depth.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak.fetch_max(d, Ordering::SeqCst);
        Ok(())
    }

    /// Forces `tenant`'s open batch out (even undersized, even before its
    /// deadline) and returns how many entries it held.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn flush(&self, tenant: &str) -> Result<usize, ServeError> {
        let (reply_tx, reply_rx) = channel();
        self.request(tenant, TenantMsg::Flush(reply_tx))?;
        reply_rx.recv().map_err(|_| ServeError::WorkerGone(tenant.to_string()))
    }

    /// A read-only progress view of `tenant`. Does not flush: the view
    /// reflects completed batches only. Degrades (default snapshot) when
    /// the tenant's generation is hung or abandoned.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn snapshot(&self, tenant: &str) -> Result<SnapshotView, ServeError> {
        let (reply_tx, reply_rx) = channel();
        self.request(tenant, TenantMsg::Snapshot(reply_tx))?;
        reply_rx.recv().map(|b| *b).map_err(|_| ServeError::WorkerGone(tenant.to_string()))
    }

    /// Finishes `tenant`: drains its queue, flushes the final partial
    /// batch, runs final verification, removes the WAL file (nothing left
    /// to recover), and returns the full report. The tenant is closed
    /// afterwards.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn finish(&self, tenant: &str) -> Result<TenantReport, ServeError> {
        let handle = lock_tenants(&self.tenants)
            .remove(tenant)
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let (reply_tx, reply_rx) = channel();
        handle
            .shared
            .tx
            .send(TenantMsg::Finish(reply_tx))
            .map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        let mut report =
            reply_rx.recv().map(|b| *b).map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        let _ = handle.join.join();
        if let Some(wal) = &handle.shared.wal {
            let _ = lock_wal(wal).remove();
        }
        let peak = handle.shared.peak.load(Ordering::SeqCst).max(0) as usize;
        report.queue_peak = peak;
        let mut stats = lock_stats(&self.stats);
        stats.counter(keys::SERVE_TENANTS_FINISHED, 1);
        stats.histogram(keys::SERVE_QUEUE_PEAK_DEPTH, peak as u64);
        Ok(report)
    }

    /// Gracefully drains the whole service: finishes every open tenant in
    /// name order and returns their reports.
    pub fn shutdown(&self) -> Vec<TenantReport> {
        let mut reports = Vec::new();
        for name in self.tenant_names() {
            if let Ok(report) = self.finish(&name) {
                reports.push(report);
            }
        }
        reports
    }

    /// Simulates an unclean daemon death for recovery tests: every tenant
    /// is dropped **without** finishing — no final flush marker, no
    /// report, and crucially no WAL removal. Queued lines drain into the
    /// log's batch markers (the channel is read to exhaustion before the
    /// supervisor observes disconnect); the batch former's open tail is
    /// discarded, exactly as a crash would, leaving those entries in the
    /// WAL without a covering marker.
    pub fn abort(&self) {
        let handles: Vec<TenantHandle> =
            lock_tenants(&self.tenants).drain().map(|(_, handle)| handle).collect();
        for handle in handles {
            let TenantHandle { shared, join } = handle;
            drop(shared); // last sender: the supervisor sees disconnect
            let _ = join.join();
        }
    }

    /// The service-level stats snapshot: `serve.*` counters (batch close
    /// reasons, line rates, queue peaks, WAL, supervision, shedding).
    /// Timing-dependent by design — kept out of tenant snapshots so those
    /// stay replay-deterministic.
    #[must_use]
    pub fn stats(&self) -> Snapshot {
        lock_stats(&self.stats).snapshot().clone()
    }

    fn shared(&self, tenant: &str) -> Result<Arc<HandleShared>, ServeError> {
        let tenants = lock_tenants(&self.tenants);
        let handle =
            tenants.get(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        Ok(Arc::clone(&handle.shared))
    }

    fn request(&self, tenant: &str, msg: TenantMsg) -> Result<(), ServeError> {
        let shared = self.shared(tenant)?;
        shared.tx.send(msg).map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        let d = shared.depth.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak.fetch_max(d, Ordering::SeqCst);
        Ok(())
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("tenants", &self.tenant_names())
            .field("queue_capacity", &self.cfg.queue_capacity)
            .finish()
    }
}

// Mutex poisoning cannot corrupt these structures (all updates are
// single-call atomic inserts), so recover the inner value instead of
// propagating a panic from an unrelated thread.
fn lock_tenants(
    m: &Mutex<HashMap<String, TenantHandle>>,
) -> std::sync::MutexGuard<'_, HashMap<String, TenantHandle>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_stats(m: &Mutex<MemoryRecorder>) -> std::sync::MutexGuard<'_, MemoryRecorder> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_wal(m: &Mutex<TenantWal>) -> std::sync::MutexGuard<'_, TenantWal> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_unit(m: &Mutex<()>) -> std::sync::MutexGuard<'_, ()> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Maps a wire payload to its recorded entry — the single classification
/// point shared by live intake, WAL tail re-feed, and (through identical
/// code) offline replay, so all three produce the same schedule bytes.
fn recorded_from_raw(raw: &str) -> RecordedEntry {
    match parse_update_line(raw) {
        Ok(update) => RecordedEntry::Update(update),
        Err(_) => RecordedEntry::Malformed(sanitize_detail(raw)),
    }
}

fn recorded_from_wal_entry(entry: WalEntry) -> RecordedEntry {
    match entry {
        WalEntry::Line(raw) => recorded_from_raw(&raw),
        WalEntry::Truncated(fragment) => RecordedEntry::Truncated(sanitize_detail(&fragment)),
    }
}

// ---------------------------------------------------------------------
// Supervisor: owns the deterministic spine (former, schedule, WAL
// markers) and drives disposable engine generations.
// ---------------------------------------------------------------------

enum Gen {
    Live {
        tx: Sender<GenMsg>,
        join: Option<JoinHandle<()>>,
        /// Recorded batches this generation has ingested; a fresh
        /// generation starts at 0 and replays the whole schedule.
        done: usize,
    },
    Abandoned {
        evidence: String,
    },
}

enum GenMsg {
    Batch(Vec<RecordedEntry>, Sender<GenBatchReply>),
    View(Sender<Box<SnapshotView>>),
    Finish(Sender<GenFinishReply>),
}

enum GenBatchReply {
    Done,
    Panicked(String),
}

enum GenFinishReply {
    Report(Box<(Result<RunResult, String>, Snapshot)>),
    Panicked(String),
}

struct Supervisor {
    tenant: String,
    engine_key: String,
    algo_label: &'static str,
    sc: SessionConfig,
    registry: Arc<EngineRegistry>,
    stats: Arc<Mutex<MemoryRecorder>>,
    supervision: SupervisionConfig,
    former: BatchFormer,
    schedule: RecordedSchedule,
    wal: Option<Arc<Mutex<TenantWal>>>,
    outstanding: Arc<AtomicI64>,
    gen: Gen,
    restarts: u32,
}

impl Supervisor {
    fn note(&self, key: &'static str, n: u64) {
        lock_stats(&self.stats).counter(key, n);
    }

    fn spawn_gen(&self) -> Gen {
        let (tx, rx) = channel::<GenMsg>();
        let sc = self.sc.clone();
        let registry = Arc::clone(&self.registry);
        let join = std::thread::spawn(move || generation_main(&sc, registry.as_ref(), &rx));
        Gen::Live { tx, join: Some(join), done: 0 }
    }

    /// Replaces a failed generation: bounded restart with deterministic
    /// exponential backoff, or abandonment with evidence once the budget
    /// is spent. The failed generation is simply dropped — a hung thread
    /// is detached (its replies go nowhere), never joined.
    fn fail_generation(&mut self, evidence: String) {
        if self.restarts >= self.supervision.max_restarts {
            self.note(keys::SERVE_SUPERVISION_ABANDONED, 1);
            self.gen = Gen::Abandoned { evidence };
            return;
        }
        self.restarts += 1;
        self.note(keys::SERVE_SUPERVISION_RESTARTS, 1);
        std::thread::sleep(self.supervision.backoff_before(self.restarts));
        self.gen = self.spawn_gen();
    }

    /// Drives the live generation until it has ingested every recorded
    /// batch — the one replay path used by normal operation (one new
    /// batch), post-restart recovery (whole schedule), and WAL recovery
    /// (recovered batches).
    fn catch_up(&mut self) {
        loop {
            let (tx, done) = match &self.gen {
                Gen::Abandoned { .. } => return,
                Gen::Live { tx, done, .. } => (tx.clone(), *done),
            };
            if done >= self.schedule.len() {
                return;
            }
            let batch = self.schedule.batches()[done].clone();
            let (reply_tx, reply_rx) = channel();
            if tx.send(GenMsg::Batch(batch, reply_tx)).is_err() {
                self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                self.fail_generation(format!("generation died before batch {done}"));
                continue;
            }
            match reply_rx.recv_timeout(self.supervision.batch_watchdog) {
                Ok(GenBatchReply::Done) => {
                    if let Gen::Live { done, .. } = &mut self.gen {
                        *done += 1;
                    }
                }
                Ok(GenBatchReply::Panicked(detail)) => {
                    self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                    self.fail_generation(format!("panic while ingesting batch {done}: {detail}"));
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.note(keys::SERVE_SUPERVISION_WATCHDOG, 1);
                    self.fail_generation(format!(
                        "watchdog: batch {done} exceeded {:?}",
                        self.supervision.batch_watchdog
                    ));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                    self.fail_generation(format!("generation died during batch {done}"));
                }
            }
        }
    }

    /// Commits one closed batch: WAL marker + sync, service stats, the
    /// recorded schedule, generation catch-up, and the outstanding-budget
    /// release — in that order, so durability always precedes processing.
    fn commit(&mut self, entries: Vec<RecordedEntry>, why: BatchClose) {
        let n = entries.len();
        if let Some(wal) = &self.wal {
            let marked = lock_wal(wal).append_close(n, why);
            let mut stats = lock_stats(&self.stats);
            match marked {
                Ok(()) => {
                    stats.counter(keys::SERVE_WAL_BATCH_MARKS, 1);
                    stats.counter(keys::SERVE_WAL_FSYNCS, 1);
                }
                Err(_) => stats.counter(keys::SERVE_WAL_IO_ERRORS, 1),
            }
        }
        {
            // Timing-dependent accounting goes to the service stats
            // recorder only; the tenant recorder must stay identical to
            // an offline replay of the schedule.
            let malformed =
                entries.iter().filter(|e| matches!(e, RecordedEntry::Malformed(_))).count() as u64;
            let truncated =
                entries.iter().filter(|e| matches!(e, RecordedEntry::Truncated(_))).count() as u64;
            let mut stats = lock_stats(&self.stats);
            stats.counter(
                match why {
                    BatchClose::Size => keys::SERVE_BATCHES_SIZE_CLOSED,
                    BatchClose::Deadline => keys::SERVE_BATCHES_DEADLINE_CLOSED,
                    BatchClose::Flush => keys::SERVE_BATCHES_FLUSHED,
                },
                1,
            );
            stats.counter(keys::SERVE_LINES_MALFORMED, malformed);
            stats.counter(keys::SERVE_LINES_ACCEPTED, n as u64 - malformed - truncated);
        }
        self.schedule.push_batch(entries);
        self.catch_up();
        self.outstanding.fetch_sub(n as i64, Ordering::SeqCst);
    }

    fn accept(&mut self, entry: RecordedEntry, now: Instant) {
        if let Some((batch, why)) = self.former.push(entry, now) {
            self.commit(batch, why);
        }
    }

    fn close_due(&mut self, now: Instant) {
        if let Some((batch, why)) = self.former.close_if_due(now) {
            self.commit(batch, why);
        }
    }

    fn flush(&mut self) -> usize {
        match self.former.flush() {
            Some((batch, why)) => {
                let n = batch.len();
                self.commit(batch, why);
                n
            }
            None => 0,
        }
    }

    /// Seeds a recovered tenant: recorded batches go straight into the
    /// schedule (their markers already exist; replay counts to stats),
    /// then the un-batched tail re-enters the batch former as if it had
    /// just arrived — its eventual closes write legitimately new markers.
    fn preseed(&mut self, batches: Vec<Vec<WalEntry>>, tail: Vec<WalEntry>) {
        if !batches.is_empty() {
            let n_entries: usize = batches.iter().map(Vec::len).sum();
            let mut stats = lock_stats(&self.stats);
            stats.counter(keys::SERVE_WAL_REPLAYED_BATCHES, batches.len() as u64);
            stats.counter(keys::SERVE_WAL_REPLAYED_ENTRIES, n_entries as u64);
        }
        for batch in batches {
            self.schedule.push_batch(batch.into_iter().map(recorded_from_wal_entry).collect());
        }
        self.catch_up();
        if !tail.is_empty() {
            self.note(keys::SERVE_WAL_TAIL_ENTRIES, tail.len() as u64);
        }
        let now = Instant::now();
        for entry in tail {
            self.accept(recorded_from_wal_entry(entry), now);
        }
    }

    fn view(&mut self) -> SnapshotView {
        let degraded = |former: &BatchFormer| SnapshotView {
            snapshot: Snapshot::default(),
            batches_done: 0,
            buffered: former.buffered(),
            quarantined: 0,
        };
        let tx = match &self.gen {
            Gen::Abandoned { .. } => return degraded(&self.former),
            Gen::Live { tx, .. } => tx.clone(),
        };
        let (reply_tx, reply_rx) = channel();
        if tx.send(GenMsg::View(reply_tx)).is_ok() {
            if let Ok(mut boxed) = reply_rx.recv_timeout(self.supervision.batch_watchdog) {
                boxed.buffered = self.former.buffered();
                return *boxed;
            }
        }
        // Unresponsive generation: serve a degraded view; the next batch
        // commit's watchdog owns the restart decision.
        degraded(&self.former)
    }

    fn into_report(mut self) -> TenantReport {
        self.flush();
        let (result, snapshot, outcome) = loop {
            let tx = match &self.gen {
                Gen::Abandoned { evidence } => {
                    break (
                        Err(format!(
                            "tenant abandoned after {} restart(s): {evidence}",
                            self.restarts
                        )),
                        Snapshot::default(),
                        TenantOutcome::Abandoned {
                            restarts: self.restarts,
                            evidence: evidence.clone(),
                        },
                    );
                }
                Gen::Live { tx, .. } => tx.clone(),
            };
            let (reply_tx, reply_rx) = channel();
            if tx.send(GenMsg::Finish(reply_tx)).is_err() {
                self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                self.fail_generation("generation died before finish".to_string());
                self.catch_up();
                continue;
            }
            match reply_rx.recv_timeout(self.supervision.batch_watchdog) {
                Ok(GenFinishReply::Report(boxed)) => {
                    let (result, snapshot) = *boxed;
                    if let Gen::Live { join, .. } = &mut self.gen {
                        if let Some(join) = join.take() {
                            let _ = join.join(); // already replied; immediate
                        }
                    }
                    let outcome = if self.restarts > 0 {
                        self.note(keys::SERVE_SUPERVISION_RECOVERED, 1);
                        TenantOutcome::Recovered { restarts: self.restarts }
                    } else {
                        TenantOutcome::Completed
                    };
                    break (result, snapshot, outcome);
                }
                Ok(GenFinishReply::Panicked(detail)) => {
                    self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                    self.fail_generation(format!("panic during finish: {detail}"));
                    self.catch_up();
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.note(keys::SERVE_SUPERVISION_WATCHDOG, 1);
                    self.fail_generation(format!(
                        "watchdog: finish exceeded {:?}",
                        self.supervision.batch_watchdog
                    ));
                    self.catch_up();
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.note(keys::SERVE_SUPERVISION_PANICS, 1);
                    self.fail_generation("generation died during finish".to_string());
                    self.catch_up();
                }
            }
        };
        TenantReport {
            tenant: self.tenant,
            engine: self.engine_key,
            algo: self.algo_label.to_string(),
            result,
            schedule: self.schedule,
            snapshot,
            queue_peak: 0, // filled by Service::finish
            outcome,
        }
    }
}

/// The per-tenant supervisor loop: wait on the queue bounded by the
/// former's armed deadline (so deadline closes fire even when the stream
/// goes quiet), commit closed batches, answer control requests. Exiting
/// on disconnect without a finish is the abandonment/crash path: no
/// flush, no report, and any recorded WAL stays for recovery.
fn supervisor_loop(
    mut sup: Supervisor,
    rx: Receiver<TenantMsg>,
    depth: &AtomicI64,
    preseed: Option<(Vec<Vec<WalEntry>>, Vec<WalEntry>)>,
) {
    sup.former = BatchFormer::new(sup.sc.batch_max_entries, sup.sc.batch_deadline);
    sup.gen = sup.spawn_gen();
    if let Some((batches, tail)) = preseed {
        sup.preseed(batches, tail);
    }
    loop {
        let msg = if let Some(due) = sup.former.deadline_at() {
            let now = Instant::now();
            if now >= due {
                sup.close_due(now);
                continue;
            }
            match rx.recv_timeout(due - now) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    sup.close_due(Instant::now());
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                // Every sender dropped without Finish: tenant abandoned
                // (or the daemon is simulating a crash via abort()).
                Err(_) => return,
            }
        };
        depth.fetch_sub(1, Ordering::SeqCst);
        match msg {
            TenantMsg::Line(raw) => sup.accept(recorded_from_raw(&raw), Instant::now()),
            TenantMsg::Truncated(fragment) => {
                sup.accept(RecordedEntry::Truncated(sanitize_detail(&fragment)), Instant::now());
            }
            TenantMsg::Flush(reply) => {
                let n = sup.flush();
                let _ = reply.send(n);
            }
            TenantMsg::Snapshot(reply) => {
                let _ = reply.send(Box::new(sup.view()));
            }
            TenantMsg::Finish(reply) => {
                let _ = reply.send(Box::new(sup.into_report()));
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generation: one disposable engine + session, fully owned by its own
// thread (engines are not `Send`), every fallible operation wrapped in
// `catch_unwind` so a hostile workload panics the generation, never the
// supervisor.
// ---------------------------------------------------------------------

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        sanitize_detail(s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        sanitize_detail(s)
    } else {
        "panic payload of unknown type".to_string()
    }
}

struct GenState {
    session: Option<StreamingSession>,
    engine: Option<Box<dyn Engine>>,
    recorder: MemoryRecorder,
    fatal: Option<String>,
}

fn generation_main(sc: &SessionConfig, registry: &EngineRegistry, rx: &Receiver<GenMsg>) {
    // Build in-thread; a deterministic build failure (unknown engine key
    // races are pre-checked, so this is workload/session setup) is a
    // `fatal` result, not a panic — restarting would not change it.
    let mut state =
        GenState { session: None, engine: None, recorder: MemoryRecorder::default(), fatal: None };
    match registry.try_build(&sc.engine) {
        Ok(engine) => state.engine = Some(engine),
        Err(e) => state.fatal = Some(e.to_string()),
    }
    match StreamingWorkload::try_prepare(sc.dataset, sc.sizing).map_err(|e| e.to_string()).and_then(
        |workload| {
            let algo = sc.algo.resolve(workload.hub_vertex());
            StreamingSession::new(algo, workload, sc.run.clone()).map_err(|e| e.to_string())
        },
    ) {
        Ok(session) => state.session = Some(session),
        Err(e) => {
            state.fatal.get_or_insert(e);
        }
    }

    while let Ok(msg) = rx.recv() {
        match msg {
            GenMsg::Batch(entries, reply) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if state.fatal.is_none() {
                        if let (Some(session), Some(engine)) =
                            (state.session.as_mut(), state.engine.as_mut())
                        {
                            if let Err(e) = session.ingest_entries(
                                engine.as_mut(),
                                &entries,
                                &mut state.recorder,
                            ) {
                                state.fatal = Some(e.to_string());
                            }
                        }
                    }
                }));
                match outcome {
                    Ok(()) => {
                        let _ = reply.send(GenBatchReply::Done);
                    }
                    Err(payload) => {
                        // State may be torn mid-panic: report and die; the
                        // supervisor replays into a fresh generation.
                        let _ = reply.send(GenBatchReply::Panicked(panic_detail(payload.as_ref())));
                        return;
                    }
                }
            }
            GenMsg::View(reply) => {
                let view = SnapshotView {
                    snapshot: state.recorder.snapshot().clone(),
                    batches_done: state.session.as_ref().map_or(0, StreamingSession::batches_done),
                    buffered: 0, // the former lives in the supervisor
                    quarantined: state.session.as_ref().map_or(0, |s| s.quarantine().total()),
                };
                let _ = reply.send(Box::new(view));
            }
            GenMsg::Finish(reply) => {
                let msg = match (state.fatal.take(), state.session.take(), state.engine.take()) {
                    (None, Some(session), Some(engine)) => {
                        let mut recorder = std::mem::take(&mut state.recorder);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            let result = session.finish(engine.as_ref(), &mut recorder);
                            (result, recorder.into_snapshot())
                        })) {
                            Ok((result, snapshot)) => {
                                GenFinishReply::Report(Box::new((Ok(result), snapshot)))
                            }
                            Err(payload) => {
                                GenFinishReply::Panicked(panic_detail(payload.as_ref()))
                            }
                        }
                    }
                    (Some(fatal), _, _) => GenFinishReply::Report(Box::new((
                        Err(fatal),
                        std::mem::take(&mut state.recorder).into_snapshot(),
                    ))),
                    _ => GenFinishReply::Report(Box::new((
                        Err("session initialization failed".to_string()),
                        std::mem::take(&mut state.recorder).into_snapshot(),
                    ))),
                };
                let _ = reply.send(msg);
                return;
            }
        }
    }
}
