//! The multi-tenant ingest service.
//!
//! One worker thread per tenant owns that tenant's whole pipeline —
//! engine (built in-thread; engines are not `Send`), streaming session,
//! batch former, recorded schedule, and observability recorder — and
//! drains a **bounded** `sync_channel`. The bound is the backpressure
//! contract: when a tenant's queue is full, `ingest_line` blocks the
//! producer instead of buffering, so a slow consumer can never grow
//! service memory. Control messages (flush / snapshot / finish) travel on
//! the same channel as data lines, which makes them natural barriers:
//! by the time a reply arrives, every line sent before the request has
//! been formed, ingested, or buffered.
//!
//! Determinism: the tenant recorder sees *only* what the offline harness
//! would emit for the same schedule — every timing-dependent quantity
//! (close reasons, queue depths, line rates) goes to a separate
//! service-level stats recorder. That split is what makes a live report
//! byte-identical to an offline replay of its recorded schedule.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use tdgraph_engines::engine::Engine;
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_engines::session::{RunResult, StreamingSession};
use tdgraph_graph::datasets::StreamingWorkload;
use tdgraph_graph::wire::{parse_update_line, sanitize_detail, RecordedEntry, RecordedSchedule};
use tdgraph_obs::{keys, MemoryRecorder, Recorder, Snapshot};

use crate::batcher::{BatchClose, BatchFormer};
use crate::config::{ServiceConfig, SessionConfig};

/// Errors from the service control surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A config failed validation.
    InvalidConfig(String),
    /// The tenancy limit is reached.
    TenantLimit(usize),
    /// The tenant name is already open.
    DuplicateTenant(String),
    /// No open tenant of that name.
    UnknownTenant(String),
    /// The session references an unregistered engine key.
    UnknownEngine(String),
    /// The workload could not be prepared.
    Workload(String),
    /// The tenant worker is gone (it should never exit on its own).
    WorkerGone(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(reason) => write!(f, "invalid config: {reason}"),
            ServeError::TenantLimit(max) => write!(f, "tenant limit ({max}) reached"),
            ServeError::DuplicateTenant(name) => write!(f, "tenant {name:?} is already open"),
            ServeError::UnknownTenant(name) => write!(f, "no open tenant {name:?}"),
            ServeError::UnknownEngine(key) => write!(f, "unknown engine key {key:?}"),
            ServeError::Workload(reason) => write!(f, "workload preparation failed: {reason}"),
            ServeError::WorkerGone(name) => write!(f, "worker for tenant {name:?} is gone"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A read-only view of a tenant's progress, served mid-stream.
#[derive(Debug, Clone)]
pub struct SnapshotView {
    /// Clone of the tenant session recorder (deterministic surface).
    pub snapshot: Snapshot,
    /// Batches ingested so far.
    pub batches_done: u64,
    /// Entries currently buffered in the open batch.
    pub buffered: usize,
    /// Records quarantined so far.
    pub quarantined: u64,
}

/// Everything a finished tenant leaves behind.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Engine registry key the session ran.
    pub engine: String,
    /// Algorithm display name.
    pub algo: String,
    /// The run result, or the fatal error that stopped ingestion.
    pub result: Result<RunResult, String>,
    /// The recorded wire schedule — replaying it offline through
    /// [`tdgraph_engines::config::RunSource::Recorded`] reproduces
    /// `result` and `snapshot` byte-identically.
    pub schedule: RecordedSchedule,
    /// Final tenant observability snapshot.
    pub snapshot: Snapshot,
    /// Highest observed ingest-queue depth (filled by the service; may
    /// overshoot the configured bound by at most one in-flight message).
    pub queue_peak: usize,
}

enum TenantMsg {
    Line(String),
    Flush(Sender<usize>),
    Snapshot(Sender<Box<SnapshotView>>),
    Finish(Sender<Box<TenantReport>>),
}

struct TenantHandle {
    tx: SyncSender<TenantMsg>,
    depth: Arc<AtomicI64>,
    peak: Arc<AtomicI64>,
    join: JoinHandle<()>,
}

/// The pieces of a [`TenantHandle`] a sender needs outside the tenant
/// lock: the queue sender plus the shared depth/peak gauges.
type HandleParts = (SyncSender<TenantMsg>, Arc<AtomicI64>, Arc<AtomicI64>);

/// The ingest daemon core: tenant lifecycle, bounded queues, service
/// stats. Wire protocol and TCP live in [`crate::server`]; this type is
/// fully usable in-process (the unit tests drive it directly).
pub struct Service {
    cfg: ServiceConfig,
    registry: Arc<EngineRegistry>,
    tenants: Mutex<HashMap<String, TenantHandle>>,
    stats: Arc<Mutex<MemoryRecorder>>,
}

impl Service {
    /// A service over `registry`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] if `cfg` fails validation.
    pub fn new(cfg: ServiceConfig, registry: EngineRegistry) -> Result<Self, ServeError> {
        cfg.validate().map_err(ServeError::InvalidConfig)?;
        Ok(Self {
            cfg,
            registry: Arc::new(registry),
            tenants: Mutex::new(HashMap::new()),
            stats: Arc::new(Mutex::new(MemoryRecorder::default())),
        })
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The session defaults tenants open with when no explicit config is
    /// given.
    #[must_use]
    pub fn session_defaults(&self) -> SessionConfig {
        self.cfg.session_defaults.clone()
    }

    /// Opens `tenant` with the service's session defaults.
    ///
    /// # Errors
    ///
    /// See [`Service::open_tenant_with`].
    pub fn open_tenant(&self, tenant: &str) -> Result<(), ServeError> {
        self.open_tenant_with(tenant, self.cfg.session_defaults.clone())
    }

    /// Opens `tenant` with an explicit session config: prepares the
    /// workload, spawns the worker thread, and registers the bounded
    /// ingest queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`], [`ServeError::UnknownEngine`],
    /// [`ServeError::Workload`], [`ServeError::DuplicateTenant`], or
    /// [`ServeError::TenantLimit`].
    pub fn open_tenant_with(&self, tenant: &str, sc: SessionConfig) -> Result<(), ServeError> {
        sc.validate().map_err(ServeError::InvalidConfig)?;
        if !self.registry.contains(&sc.engine) {
            return Err(ServeError::UnknownEngine(sc.engine.clone()));
        }
        let workload = StreamingWorkload::try_prepare(sc.dataset, sc.sizing)
            .map_err(|e| ServeError::Workload(e.to_string()))?;

        let mut tenants = lock_tenants(&self.tenants);
        if tenants.contains_key(tenant) {
            return Err(ServeError::DuplicateTenant(tenant.to_string()));
        }
        if tenants.len() >= self.cfg.max_tenants {
            return Err(ServeError::TenantLimit(self.cfg.max_tenants));
        }

        let (tx, rx) = sync_channel(self.cfg.queue_capacity);
        let depth = Arc::new(AtomicI64::new(0));
        let peak = Arc::new(AtomicI64::new(0));
        let worker_depth = Arc::clone(&depth);
        let registry = Arc::clone(&self.registry);
        let stats = Arc::clone(&self.stats);
        let name = tenant.to_string();
        let join = std::thread::spawn(move || {
            let worker = Worker::build(name, sc, workload, registry.as_ref(), stats);
            worker_loop(worker, rx, &worker_depth);
        });
        tenants.insert(tenant.to_string(), TenantHandle { tx, depth, peak, join });
        Ok(())
    }

    /// Names of the currently open tenants, sorted.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        let tenants = lock_tenants(&self.tenants);
        let mut names: Vec<String> = tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// Whether `tenant` is open.
    #[must_use]
    pub fn is_open(&self, tenant: &str) -> bool {
        lock_tenants(&self.tenants).contains_key(tenant)
    }

    /// Streams one raw wire line into `tenant`'s queue. Blocks while the
    /// queue is at capacity — this is the backpressure edge.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn ingest_line(&self, tenant: &str, line: impl Into<String>) -> Result<(), ServeError> {
        let (tx, depth, peak) = self.handle_parts(tenant)?;
        tx.send(TenantMsg::Line(line.into()))
            .map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        // Count after the (possibly blocking) send: the counted depth
        // tracks messages actually enqueued, so the observed peak can
        // exceed the structural bound by at most the one message the
        // worker has received but not yet counted off.
        let d = depth.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(d, Ordering::SeqCst);
        Ok(())
    }

    /// Forces `tenant`'s open batch out (even undersized, even before its
    /// deadline) and returns how many entries it held.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn flush(&self, tenant: &str) -> Result<usize, ServeError> {
        let (reply_tx, reply_rx) = channel();
        self.request(tenant, TenantMsg::Flush(reply_tx))?;
        reply_rx.recv().map_err(|_| ServeError::WorkerGone(tenant.to_string()))
    }

    /// A read-only progress view of `tenant`. Does not flush: the view
    /// reflects completed batches only.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn snapshot(&self, tenant: &str) -> Result<SnapshotView, ServeError> {
        let (reply_tx, reply_rx) = channel();
        self.request(tenant, TenantMsg::Snapshot(reply_tx))?;
        reply_rx.recv().map(|b| *b).map_err(|_| ServeError::WorkerGone(tenant.to_string()))
    }

    /// Finishes `tenant`: drains its queue, flushes the final partial
    /// batch, runs final verification, and returns the full report. The
    /// tenant is closed afterwards.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] or [`ServeError::WorkerGone`].
    pub fn finish(&self, tenant: &str) -> Result<TenantReport, ServeError> {
        let handle = lock_tenants(&self.tenants)
            .remove(tenant)
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let (reply_tx, reply_rx) = channel();
        handle
            .tx
            .send(TenantMsg::Finish(reply_tx))
            .map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        let mut report =
            reply_rx.recv().map(|b| *b).map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        drop(handle.tx);
        let _ = handle.join.join();
        let peak = handle.peak.load(Ordering::SeqCst).max(0) as usize;
        report.queue_peak = peak;
        let mut stats = lock_stats(&self.stats);
        stats.counter(keys::SERVE_TENANTS_FINISHED, 1);
        stats.histogram(keys::SERVE_QUEUE_PEAK_DEPTH, peak as u64);
        Ok(report)
    }

    /// Gracefully drains the whole service: finishes every open tenant in
    /// name order and returns their reports.
    pub fn shutdown(&self) -> Vec<TenantReport> {
        let mut reports = Vec::new();
        for name in self.tenant_names() {
            if let Ok(report) = self.finish(&name) {
                reports.push(report);
            }
        }
        reports
    }

    /// The service-level stats snapshot: `serve.*` counters (batch close
    /// reasons, line rates, queue peaks). Timing-dependent by design —
    /// kept out of tenant snapshots so those stay replay-deterministic.
    #[must_use]
    pub fn stats(&self) -> Snapshot {
        lock_stats(&self.stats).snapshot().clone()
    }

    fn handle_parts(&self, tenant: &str) -> Result<HandleParts, ServeError> {
        let tenants = lock_tenants(&self.tenants);
        let handle =
            tenants.get(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        Ok((handle.tx.clone(), Arc::clone(&handle.depth), Arc::clone(&handle.peak)))
    }

    fn request(&self, tenant: &str, msg: TenantMsg) -> Result<(), ServeError> {
        let (tx, depth, peak) = self.handle_parts(tenant)?;
        tx.send(msg).map_err(|_| ServeError::WorkerGone(tenant.to_string()))?;
        let d = depth.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(d, Ordering::SeqCst);
        Ok(())
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("tenants", &self.tenant_names())
            .field("queue_capacity", &self.cfg.queue_capacity)
            .finish()
    }
}

// Mutex poisoning cannot corrupt these structures (all updates are
// single-call atomic inserts), so recover the inner value instead of
// propagating a panic from an unrelated thread.
fn lock_tenants(
    m: &Mutex<HashMap<String, TenantHandle>>,
) -> std::sync::MutexGuard<'_, HashMap<String, TenantHandle>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_stats(m: &Mutex<MemoryRecorder>) -> std::sync::MutexGuard<'_, MemoryRecorder> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One tenant's worker state: the full pipeline, owned by one thread.
struct Worker {
    tenant: String,
    engine_key: String,
    algo_label: &'static str,
    session: Option<StreamingSession>,
    engine: Option<Box<dyn Engine>>,
    recorder: MemoryRecorder,
    former: BatchFormer,
    schedule: RecordedSchedule,
    stats: Arc<Mutex<MemoryRecorder>>,
    fatal: Option<String>,
}

impl Worker {
    /// Builds the pipeline *inside* the worker thread — engines are not
    /// `Send`, so the boxed engine must be constructed where it lives.
    fn build(
        tenant: String,
        sc: SessionConfig,
        workload: StreamingWorkload,
        registry: &EngineRegistry,
        stats: Arc<Mutex<MemoryRecorder>>,
    ) -> Self {
        let algo = sc.algo.resolve(workload.hub_vertex());
        let former = BatchFormer::new(sc.batch_max_entries, sc.batch_deadline);
        let mut fatal = None;
        let engine = match registry.try_build(&sc.engine) {
            Ok(e) => Some(e),
            Err(e) => {
                fatal = Some(e.to_string());
                None
            }
        };
        let session = match StreamingSession::new(algo, workload, sc.run.clone()) {
            Ok(s) => Some(s),
            Err(e) => {
                fatal.get_or_insert(e.to_string());
                None
            }
        };
        Self {
            tenant,
            engine_key: sc.engine,
            algo_label: algo.name(),
            session,
            engine,
            recorder: MemoryRecorder::default(),
            former,
            schedule: RecordedSchedule::new(),
            stats,
            fatal,
        }
    }

    fn accept_line(&mut self, raw: String, now: Instant) {
        let entry = match parse_update_line(&raw) {
            Ok(update) => RecordedEntry::Update(update),
            Err(_) => RecordedEntry::Malformed(sanitize_detail(&raw)),
        };
        if let Some((batch, why)) = self.former.push(entry, now) {
            self.ingest(batch, why);
        }
    }

    fn close_due(&mut self, now: Instant) {
        if let Some((batch, why)) = self.former.close_if_due(now) {
            self.ingest(batch, why);
        }
    }

    fn flush(&mut self) -> usize {
        match self.former.flush() {
            Some((batch, why)) => {
                let n = batch.len();
                self.ingest(batch, why);
                n
            }
            None => 0,
        }
    }

    fn ingest(&mut self, entries: Vec<RecordedEntry>, why: BatchClose) {
        {
            // Timing-dependent accounting goes to the service stats
            // recorder only; the tenant recorder must stay identical to an
            // offline replay of the schedule.
            let malformed =
                entries.iter().filter(|e| matches!(e, RecordedEntry::Malformed(_))).count() as u64;
            let mut stats = lock_stats(&self.stats);
            stats.counter(
                match why {
                    BatchClose::Size => keys::SERVE_BATCHES_SIZE_CLOSED,
                    BatchClose::Deadline => keys::SERVE_BATCHES_DEADLINE_CLOSED,
                    BatchClose::Flush => keys::SERVE_BATCHES_FLUSHED,
                },
                1,
            );
            stats.counter(keys::SERVE_LINES_MALFORMED, malformed);
            stats.counter(keys::SERVE_LINES_ACCEPTED, entries.len() as u64 - malformed);
        }
        self.schedule.push_batch(entries.clone());
        if self.fatal.is_some() {
            return;
        }
        if let (Some(session), Some(engine)) = (self.session.as_mut(), self.engine.as_mut()) {
            if let Err(e) = session.ingest_entries(engine.as_mut(), &entries, &mut self.recorder) {
                self.fatal = Some(e.to_string());
            }
        }
    }

    fn view(&self) -> SnapshotView {
        SnapshotView {
            snapshot: self.recorder.snapshot().clone(),
            batches_done: self.session.as_ref().map_or(0, StreamingSession::batches_done),
            buffered: self.former.buffered(),
            quarantined: self.session.as_ref().map_or(0, |s| s.quarantine().total()),
        }
    }

    fn into_report(mut self) -> TenantReport {
        self.flush();
        let result = match (self.fatal.take(), self.session.take(), self.engine.take()) {
            (None, Some(session), Some(engine)) => {
                Ok(session.finish(engine.as_ref(), &mut self.recorder))
            }
            (Some(fatal), _, _) => Err(fatal),
            _ => Err("session initialization failed".to_string()),
        };
        TenantReport {
            tenant: self.tenant,
            engine: self.engine_key,
            algo: self.algo_label.to_string(),
            result,
            schedule: self.schedule,
            snapshot: self.recorder.into_snapshot(),
            queue_peak: 0, // filled by Service::finish
        }
    }
}

/// The per-tenant event loop: wait on the queue bounded by the former's
/// armed deadline, so deadline closes fire even when the stream goes
/// quiet.
fn worker_loop(mut worker: Worker, rx: Receiver<TenantMsg>, depth: &AtomicI64) {
    loop {
        let msg = if let Some(due) = worker.former.deadline_at() {
            let now = Instant::now();
            if now >= due {
                worker.close_due(now);
                continue;
            }
            match rx.recv_timeout(due - now) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    worker.close_due(Instant::now());
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        } else {
            match rx.recv() {
                Ok(m) => m,
                // Every sender dropped without Finish: tenant abandoned.
                Err(_) => return,
            }
        };
        depth.fetch_sub(1, Ordering::SeqCst);
        match msg {
            TenantMsg::Line(raw) => worker.accept_line(raw, Instant::now()),
            TenantMsg::Flush(reply) => {
                let n = worker.flush();
                let _ = reply.send(n);
            }
            TenantMsg::Snapshot(reply) => {
                let _ = reply.send(Box::new(worker.view()));
            }
            TenantMsg::Finish(reply) => {
                let _ = reply.send(Box::new(worker.into_report()));
                return;
            }
        }
    }
}
