//! # tdgraph-serve — the continuous-ingest streaming service.
//!
//! Everything below the facade runs *sessions*: a fixed schedule of
//! update batches pushed through an engine, verified, and reported. This
//! crate turns that into a long-running daemon whose batches are shaped
//! by the *wire* instead of a composer:
//!
//! * [`config`] — the [`ServiceConfig`] / [`SessionConfig`] builder
//!   family, mirroring `SweepSpec`, plus the [`SupervisionConfig`] and
//!   [`OverloadPolicy`] robustness knobs.
//! * [`batcher`] — the adaptive [`BatchFormer`]: close on size *or*
//!   latency deadline, explicit-clock and unit-testable.
//! * [`wal`] — the per-tenant durable ingest write-ahead log: accepted
//!   lines are appended before they enter the queue, batch closes are
//!   synced markers, and recovery tolerates torn tails.
//! * [`service`] — the multi-tenant core: a supervisor thread per tenant
//!   over a bounded queue (backpressure blocks producers; an optional
//!   [`OverloadPolicy`] sheds instead), driving disposable engine
//!   generations (panic/hang isolation with bounded restart), recording
//!   every closed batch into a replayable
//!   [`tdgraph_graph::wire::RecordedSchedule`].
//! * [`protocol`] / [`server`] / [`client`] — JSON-lines-over-TCP front
//!   end and its reference client with deterministic bounded retry.
//! * [`clock`] — the injectable [`Clock`] that keeps retry tests free of
//!   real sleeps.
//! * [`chaos`] — the seeded network-fault harness (mid-frame
//!   disconnects, torn writes, reconnect-and-resume).
//!
//! The determinism contract: a tenant's final report, schedule, and
//! observability snapshot rendered by [`protocol::render_report`] are
//! byte-identical to an offline
//! [`tdgraph_engines::config::RunSource::Recorded`] replay of the same
//! schedule. Arrival timing decides only *where batch boundaries fall*
//! (recorded in the schedule), never what any batch computes. Crash
//! recovery extends the same contract across a daemon kill: a WAL-replayed
//! tenant's finish reply is byte-identical to an uncrashed run.

// Robustness gate, matching the engines/obs/facade crates: a daemon must
// route failures through typed errors, never unwrap/expect (CI clippy).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backoff;
pub mod batcher;
pub mod chaos;
pub mod client;
pub mod clock;
pub mod config;
pub mod protocol;
pub mod server;
pub mod service;
pub mod wal;

pub use backoff::{Backoff, RetryPolicy};
pub use batcher::{BatchClose, BatchFormer};
pub use chaos::{stream_with_chaos, ChaosOutcome, WireFault, WireFaultPlan};
pub use client::{ClientError, ServeClient, ShedEvent, SnapshotReply};
pub use clock::{Clock, SystemClock, TestClock};
pub use config::{AlgoChoice, OverloadPolicy, ServiceConfig, SessionConfig, SupervisionConfig};
pub use protocol::{render_report, ClientLine, HelloRequest};
pub use server::TdServer;
pub use service::{
    Admission, ServeError, Service, ShedReason, ShedReply, SnapshotView, TenantOutcome,
    TenantReport,
};
pub use wal::{LoadedWal, TenantWal, WalEntry, WalHead};
