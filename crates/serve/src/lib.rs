//! # tdgraph-serve — the continuous-ingest streaming service.
//!
//! Everything below the facade runs *sessions*: a fixed schedule of
//! update batches pushed through an engine, verified, and reported. This
//! crate turns that into a long-running daemon whose batches are shaped
//! by the *wire* instead of a composer:
//!
//! * [`config`] — the [`ServiceConfig`] / [`SessionConfig`] builder
//!   family, mirroring `SweepSpec`.
//! * [`batcher`] — the adaptive [`BatchFormer`]: close on size *or*
//!   latency deadline, explicit-clock and unit-testable.
//! * [`service`] — the multi-tenant core: a worker thread per tenant
//!   over a bounded queue (backpressure blocks producers), recording
//!   every closed batch into a replayable
//!   [`tdgraph_graph::wire::RecordedSchedule`].
//! * [`protocol`] / [`server`] / [`client`] — JSON-lines-over-TCP front
//!   end and its reference client.
//!
//! The determinism contract: a tenant's final report, schedule, and
//! observability snapshot rendered by [`protocol::render_report`] are
//! byte-identical to an offline
//! [`tdgraph_engines::config::RunSource::Recorded`] replay of the same
//! schedule. Arrival timing decides only *where batch boundaries fall*
//! (recorded in the schedule), never what any batch computes.

// Robustness gate, matching the engines/obs/facade crates: a daemon must
// route failures through typed errors, never unwrap/expect (CI clippy).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batcher;
pub mod client;
pub mod config;
pub mod protocol;
pub mod server;
pub mod service;

pub use batcher::{BatchClose, BatchFormer};
pub use client::{ClientError, ServeClient, SnapshotReply};
pub use config::{AlgoChoice, ServiceConfig, SessionConfig};
pub use protocol::{render_report, ClientLine, HelloRequest};
pub use server::TdServer;
pub use service::{ServeError, Service, SnapshotView, TenantReport};
