//! A minimal blocking client for the service wire protocol.
//!
//! Used by the integration tests and the daemon's smoke workloads; it is
//! also the reference for speaking the protocol from other tooling: every
//! method is a thin line-in/line-out wrapper with no hidden state beyond
//! the buffered socket.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::{format_update_line, json_escape_wire};

use crate::protocol::END_EVENT;

/// Client-side protocol errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server replied `{"ev":"error",...}`.
    Server(String),
    /// The server replied something the client did not expect.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(detail) => write!(f, "server error: {detail}"),
            ClientError::Protocol(detail) => write!(f, "unexpected reply: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`crate::server::TdServer`].
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to the server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Binds this connection to `tenant` with the service's session
    /// defaults.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service rejects the session.
    pub fn hello(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.hello_with(tenant, &[])
    }

    /// Binds this connection to `tenant` with session overrides, e.g.
    /// `[("engine", "dzig"), ("dataset", "dblp")]`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service rejects the session.
    pub fn hello_with(
        &mut self,
        tenant: &str,
        overrides: &[(&str, &str)],
    ) -> Result<(), ClientError> {
        let mut line = format!("{{\"req\":\"hello\",\"tenant\":\"{}\"", json_escape_wire(tenant));
        for (key, value) in overrides {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                json_escape_wire(key),
                json_escape_wire(value)
            ));
        }
        line.push('}');
        self.send_line(&line)?;
        self.expect_ok()
    }

    /// Streams one edge update. Un-acked; backpressure arrives as a
    /// blocking write when the tenant queue is full.
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn send_update(&mut self, update: &EdgeUpdate) -> Result<(), ClientError> {
        self.send_line(&format_update_line(update))
    }

    /// Streams one raw line — the fault-injection path for tests that
    /// feed the server corrupt traffic.
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    /// Forces the open batch out; returns how many entries it held.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / [`ClientError::Protocol`] on bad replies.
    pub fn flush(&mut self) -> Result<u64, ClientError> {
        self.send_line("{\"req\":\"flush\"}")?;
        let line = self.read_line()?;
        if let Some(detail) = error_detail(&line) {
            return Err(ClientError::Server(detail));
        }
        extract_u64(&line, "\"flushed\":").ok_or(ClientError::Protocol(line))
    }

    /// Reads the tenant's progress: the header line and the canonical
    /// snapshot line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / [`ClientError::Protocol`] on bad replies.
    pub fn snapshot(&mut self) -> Result<SnapshotReply, ClientError> {
        self.send_line("{\"req\":\"snapshot\"}")?;
        let header = self.read_line()?;
        if let Some(detail) = error_detail(&header) {
            return Err(ClientError::Server(detail));
        }
        let snapshot = self.read_line()?;
        let end = self.read_line()?;
        if end != END_EVENT {
            return Err(ClientError::Protocol(end));
        }
        Ok(SnapshotReply { header, snapshot })
    }

    /// Finishes the tenant and returns every reply line up to (excluding)
    /// the end marker: the report event, the recorded schedule, and the
    /// canonical snapshot — the byte-comparable determinism surface.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service reports a failure.
    pub fn finish(&mut self) -> Result<Vec<String>, ClientError> {
        self.send_line("{\"req\":\"finish\"}")?;
        let first = self.read_line()?;
        if let Some(detail) = error_detail(&first) {
            return Err(ClientError::Server(detail));
        }
        let mut lines = vec![first];
        loop {
            let line = self.read_line()?;
            if line == END_EVENT {
                return Ok(lines);
            }
            lines.push(line);
        }
    }

    /// Asks the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / socket-level failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send_line("{\"req\":\"shutdown\"}")?;
        self.expect_ok()
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        let line = self.read_line()?;
        if let Some(detail) = error_detail(&line) {
            return Err(ClientError::Server(detail));
        }
        if line.starts_with("{\"ev\":\"ok\"") {
            Ok(())
        } else {
            Err(ClientError::Protocol(line))
        }
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("connection closed".to_string()));
        }
        Ok(line.trim_end_matches('\n').to_string())
    }
}

/// A `snapshot` reply: the progress header plus the canonical snapshot
/// line.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// `{"ev":"snapshot","batches":...,"buffered":...,"quarantined":...}`.
    pub header: String,
    /// The tenant's canonical observability snapshot line.
    pub snapshot: String,
}

fn error_detail(line: &str) -> Option<String> {
    line.starts_with("{\"ev\":\"error\"").then(|| line.to_string())
}

fn extract_u64(line: &str, marker: &str) -> Option<u64> {
    let rest = &line[line.find(marker)? + marker.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
