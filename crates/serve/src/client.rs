//! A minimal blocking client for the service wire protocol.
//!
//! Used by the integration tests and the daemon's smoke workloads; it is
//! also the reference for speaking the protocol from other tooling: every
//! method is a thin line-in/line-out wrapper. Beyond the buffered socket
//! the client tracks just enough state to recover: the peer address,
//! tenant binding, a per-connection data-line counter mirroring the
//! server's shed indices, and the shed events collected off the wire.
//!
//! Recovery is deterministic and bounded: [`ServeClient::connect_with_retry`]
//! and [`ServeClient::reconnect`] back off exponentially under a
//! [`RetryPolicy`] through an injectable [`Clock`] (tests assert the
//! exact schedule without sleeping), and
//! [`ServeClient::send_lines_with_shed_retry`] honours the server's
//! `retry_after` hints, re-sending exactly the refused lines.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::{
    format_update_line, json_escape_wire, lookup, lookup_str, parse_flat_object,
};

use crate::backoff::Backoff;
use crate::clock::Clock;
use crate::protocol::END_EVENT;

pub use crate::backoff::RetryPolicy;

/// A parsed `{"ev":"shed",...}` overload refusal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedEvent {
    /// 0-based per-connection index of the refused data line.
    pub line: u64,
    /// The shed reason label (`entry_budget`, `queue_full`).
    pub reason: String,
    /// The server's retry hint.
    pub retry_after: Duration,
}

/// Parses a shed event line; `None` when `line` is any other reply.
#[must_use]
pub fn parse_shed_event(line: &str) -> Option<ShedEvent> {
    if !line.starts_with("{\"ev\":\"shed\"") {
        return None;
    }
    let fields = parse_flat_object(line).ok()?;
    Some(ShedEvent {
        line: lookup(&fields, "line").ok()?.parse().ok()?,
        reason: lookup_str(&fields, "reason").ok()?,
        retry_after: Duration::from_millis(lookup(&fields, "retry_after_ms").ok()?.parse().ok()?),
    })
}

/// Client-side protocol errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server replied `{"ev":"error",...}`.
    Server(String),
    /// The server replied something the client did not expect.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server(detail) => write!(f, "server error: {detail}"),
            ClientError::Protocol(detail) => write!(f, "unexpected reply: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`crate::server::TdServer`].
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: Option<SocketAddr>,
    tenant: Option<String>,
    overrides: Vec<(String, String)>,
    /// Data lines sent on the *current* connection — mirrors the server's
    /// per-connection shed indices.
    data_sent: u64,
    /// The `acked` offset from the latest hello reply.
    acked: u64,
    /// Shed events collected while reading other replies.
    sheds: Vec<ShedEvent>,
}

impl ServeClient {
    /// Connects to the server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr().ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            peer,
            tenant: None,
            overrides: Vec::new(),
            data_sent: 0,
            acked: 0,
            sheds: Vec::new(),
        })
    }

    /// Connects with bounded deterministic retry: up to
    /// `policy.max_attempts` tries, exponential backoff through `clock`.
    ///
    /// # Errors
    ///
    /// The final connect failure after the budget is spent.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Copy,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<Self, ClientError> {
        Backoff::new(*policy).run(clock, || Self::connect(addr).map_err(ClientError::Io))
    }

    /// Binds this connection to `tenant` with the service's session
    /// defaults. Returns the server's `acked` resume offset: the count of
    /// clean lines this tenant has already durably accepted (0 for a new
    /// tenant; survives reconnects and — with a WAL — daemon restarts).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service rejects the session.
    pub fn hello(&mut self, tenant: &str) -> Result<u64, ClientError> {
        self.hello_with(tenant, &[])
    }

    /// Binds this connection to `tenant` with session overrides, e.g.
    /// `[("engine", "dzig"), ("dataset", "dblp")]`. Returns the `acked`
    /// resume offset (see [`ServeClient::hello`]).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service rejects the session.
    pub fn hello_with(
        &mut self,
        tenant: &str,
        overrides: &[(&str, &str)],
    ) -> Result<u64, ClientError> {
        let mut line = format!("{{\"req\":\"hello\",\"tenant\":\"{}\"", json_escape_wire(tenant));
        for (key, value) in overrides {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                json_escape_wire(key),
                json_escape_wire(value)
            ));
        }
        line.push('}');
        self.send_line(&line)?;
        let reply = self.expect_ok_line()?;
        self.tenant = Some(tenant.to_string());
        self.overrides =
            overrides.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect();
        self.acked = extract_u64(&reply, "\"acked\":").unwrap_or(0);
        Ok(self.acked)
    }

    /// The `acked` offset from the latest hello reply.
    #[must_use]
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Data lines sent on the current connection.
    #[must_use]
    pub fn data_lines_sent(&self) -> u64 {
        self.data_sent
    }

    /// Tears the current socket down and reconnects to the same peer with
    /// bounded backoff, re-issuing the stored hello. Returns the fresh
    /// `acked` resume offset — the caller continues sending at that
    /// data-line index.
    ///
    /// # Errors
    ///
    /// The final connect failure, or the hello rejection.
    pub fn reconnect(
        &mut self,
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<u64, ClientError> {
        let peer = self.peer.ok_or_else(|| ClientError::Protocol("no peer address".to_string()))?;
        let tenant = self
            .tenant
            .clone()
            .ok_or_else(|| ClientError::Protocol("no tenant bound".to_string()))?;
        let overrides = self.overrides.clone();
        let stream = Backoff::new(*policy)
            .run(clock, || TcpStream::connect(peer))
            .map_err(ClientError::Io)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        self.data_sent = 0;
        self.sheds.clear();
        let refs: Vec<(&str, &str)> =
            overrides.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        self.hello_with(&tenant, &refs)
    }

    /// Severs the connection abruptly (both directions, no protocol
    /// goodbye) — the fault-injection path for disconnect tests.
    ///
    /// # Errors
    ///
    /// Propagates the socket shutdown failure.
    pub fn sever(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Both)
    }

    /// Sends only the first `keep_bytes` bytes of `line` — **without** a
    /// newline — then severs the connection: a torn write, exactly what a
    /// crash mid-`write` leaves on the wire.
    ///
    /// # Errors
    ///
    /// Socket-level failures.
    pub fn send_torn(&mut self, line: &str, keep_bytes: usize) -> Result<(), ClientError> {
        let cut = keep_bytes.min(line.len());
        self.writer.write_all(&line.as_bytes()[..cut])?;
        self.writer.flush()?;
        self.sever()?;
        Ok(())
    }

    /// Streams one edge update. Un-acked; backpressure arrives as a
    /// blocking write when the tenant queue is full.
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn send_update(&mut self, update: &EdgeUpdate) -> Result<(), ClientError> {
        self.send_line(&format_update_line(update))
    }

    /// Streams one raw line — the fault-injection path for tests that
    /// feed the server corrupt traffic.
    ///
    /// # Errors
    ///
    /// Socket-level failures only.
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        if !line.starts_with("{\"req\":") {
            self.data_sent += 1;
        }
        Ok(())
    }

    /// Drains the shed events collected so far (in arrival order).
    pub fn take_shed_events(&mut self) -> Vec<ShedEvent> {
        std::mem::take(&mut self.sheds)
    }

    /// Sends `lines` as data, then re-sends any the server sheds, waiting
    /// out the server's `retry_after` hint (or the policy backoff,
    /// whichever is longer) between rounds through `clock`. A `flush`
    /// round-trip after each round acts as the barrier that surfaces the
    /// round's shed replies. Returns the number of re-sent lines.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] after `policy.max_attempts` rounds still
    /// leave lines shed, or socket/protocol failures.
    pub fn send_lines_with_shed_retry(
        &mut self,
        lines: &[String],
        policy: &RetryPolicy,
        clock: &dyn Clock,
    ) -> Result<u64, ClientError> {
        // Conn-index → line, so a shed reply can name what to re-send.
        let mut in_flight: HashMap<u64, String> = HashMap::new();
        for line in lines {
            in_flight.insert(self.data_sent, line.clone());
            self.send_line(line)?;
        }
        let mut resent = 0u64;
        let mut backoff = Backoff::new(*policy);
        loop {
            // The flush reply orders after every shed event for lines sent
            // before it on this connection.
            self.flush()?;
            let sheds = self.take_shed_events();
            if sheds.is_empty() {
                return Ok(resent);
            }
            let hint = sheds.iter().map(|s| s.retry_after).max().unwrap_or(Duration::ZERO);
            if !backoff.wait_at_least(hint, clock) {
                return Err(ClientError::Server(format!(
                    "{} line(s) still shed after {} round(s)",
                    sheds.len(),
                    backoff.attempts() + 1
                )));
            }
            for shed in &sheds {
                let Some(line) = in_flight.remove(&shed.line) else {
                    return Err(ClientError::Protocol(format!(
                        "shed reply for unknown line index {}",
                        shed.line
                    )));
                };
                in_flight.insert(self.data_sent, line.clone());
                self.send_line(&line)?;
                resent += 1;
            }
        }
    }

    /// Forces the open batch out; returns how many entries it held.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / [`ClientError::Protocol`] on bad replies.
    pub fn flush(&mut self) -> Result<u64, ClientError> {
        self.send_line("{\"req\":\"flush\"}")?;
        let line = self.read_line()?;
        if let Some(detail) = error_detail(&line) {
            return Err(ClientError::Server(detail));
        }
        extract_u64(&line, "\"flushed\":").ok_or(ClientError::Protocol(line))
    }

    /// Reads the tenant's progress: the header line and the canonical
    /// snapshot line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / [`ClientError::Protocol`] on bad replies.
    pub fn snapshot(&mut self) -> Result<SnapshotReply, ClientError> {
        self.send_line("{\"req\":\"snapshot\"}")?;
        let header = self.read_line()?;
        if let Some(detail) = error_detail(&header) {
            return Err(ClientError::Server(detail));
        }
        let snapshot = self.read_line()?;
        let end = self.read_line()?;
        if end != END_EVENT {
            return Err(ClientError::Protocol(end));
        }
        Ok(SnapshotReply { header, snapshot })
    }

    /// Finishes the tenant and returns every reply line up to (excluding)
    /// the end marker: the report event, the recorded schedule, and the
    /// canonical snapshot — the byte-comparable determinism surface.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] if the service reports a failure.
    pub fn finish(&mut self) -> Result<Vec<String>, ClientError> {
        self.send_line("{\"req\":\"finish\"}")?;
        let first = self.read_line()?;
        if let Some(detail) = error_detail(&first) {
            return Err(ClientError::Server(detail));
        }
        let mut lines = vec![first];
        loop {
            let line = self.read_line()?;
            if line == END_EVENT {
                return Ok(lines);
            }
            lines.push(line);
        }
    }

    /// Asks the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] / socket-level failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send_line("{\"req\":\"shutdown\"}")?;
        self.expect_ok()
    }

    fn expect_ok(&mut self) -> Result<(), ClientError> {
        self.expect_ok_line().map(|_| ())
    }

    fn expect_ok_line(&mut self) -> Result<String, ClientError> {
        let line = self.read_line()?;
        if let Some(detail) = error_detail(&line) {
            return Err(ClientError::Server(detail));
        }
        if line.starts_with("{\"ev\":\"ok\"") {
            Ok(line)
        } else {
            Err(ClientError::Protocol(line))
        }
    }

    /// Reads the next non-shed reply line; shed events are collected into
    /// the [`ServeClient::take_shed_events`] buffer so they never disturb
    /// the framing of flush/snapshot/finish replies.
    fn read_line(&mut self) -> Result<String, ClientError> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("connection closed".to_string()));
            }
            let line = line.trim_end_matches('\n').to_string();
            if let Some(shed) = parse_shed_event(&line) {
                self.sheds.push(shed);
                continue;
            }
            return Ok(line);
        }
    }
}

/// A `snapshot` reply: the progress header plus the canonical snapshot
/// line.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// `{"ev":"snapshot","batches":...,"buffered":...,"quarantined":...}`.
    pub header: String,
    /// The tenant's canonical observability snapshot line.
    pub snapshot: String,
}

fn error_detail(line: &str) -> Option<String> {
    line.starts_with("{\"ev\":\"error\"").then(|| line.to_string())
}

fn extract_u64(line: &str, marker: &str) -> Option<u64> {
    let rest = &line[line.find(marker)? + marker.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(50));
        assert_eq!(policy.backoff(40), Duration::from_millis(50));
    }

    #[test]
    fn shed_events_parse_and_other_lines_do_not() {
        let shed = parse_shed_event(
            "{\"ev\":\"shed\",\"line\":7,\"reason\":\"entry_budget\",\"retry_after_ms\":25}",
        )
        .unwrap();
        assert_eq!(shed.line, 7);
        assert_eq!(shed.reason, "entry_budget");
        assert_eq!(shed.retry_after, Duration::from_millis(25));
        assert!(parse_shed_event("{\"ev\":\"ok\",\"req\":\"hello\",\"acked\":3}").is_none());
        assert!(parse_shed_event("not json").is_none());
    }

    #[test]
    fn connect_retry_follows_the_backoff_schedule_without_sleeping() {
        // Nothing listens on a reserved-then-released port, so every
        // attempt fails fast; the TestClock records the exact schedule.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let clock = TestClock::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_secs(1),
        };
        let err = ServeClient::connect_with_retry(addr, &policy, &clock).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(5), Duration::from_millis(10), Duration::from_millis(20),],
            "3 backoffs between 4 attempts"
        );
    }

    #[test]
    fn hello_parses_the_acked_offset() {
        assert_eq!(
            extract_u64("{\"ev\":\"ok\",\"req\":\"hello\",\"acked\":42}", "\"acked\":"),
            Some(42)
        );
        assert_eq!(extract_u64("{\"ev\":\"ok\",\"req\":\"hello\"}", "\"acked\":"), None);
    }
}
