//! The TCP front end: a listener, one handler thread per connection.
//!
//! Connections are tenant-scoped: the first request must be `hello`,
//! which binds the connection to a tenant (opening it if new, attaching
//! if already open). Data lines then stream into that tenant's bounded
//! queue — a full queue blocks the handler thread, TCP flow control
//! propagates the stall to the client, and backpressure is end-to-end
//! without any unbounded buffer in between.
//!
//! The runtime is plain `std::thread` + blocking I/O; the protocol is
//! connection-per-tenant and the tenant count is bounded by
//! [`crate::config::ServiceConfig::max_tenants`], so a thread per
//! connection is the right size and keeps the daemon dependency-free.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tdgraph_graph::datasets::{Dataset, Sizing};

use crate::config::{AlgoChoice, SessionConfig};
use crate::protocol::{
    parse_client_line, render_error, render_hello_ok, render_ok, render_report, render_shed,
    ClientLine, HelloRequest, END_EVENT,
};
use crate::service::{Admission, Service, TenantReport};

/// Serializes the wire producers of one tenant: a connection must hold
/// the tenant's gate from `hello` until it disconnects, so a
/// reconnecting client's `hello` blocks until the previous connection's
/// handler has drained every byte it received. That ordering is what
/// makes the `acked` resume offset in the hello reply exact — without
/// it, a racing attach could read the offset before the dead
/// connection's tail (including its truncated fragment) was logged.
#[derive(Default)]
struct WriterGate {
    busy: Mutex<bool>,
    cv: Condvar,
}

impl WriterGate {
    /// Waits for the gate, polling the stop flag so shutdown can never
    /// deadlock behind a lingering holder. Returns `false` on stop.
    fn acquire(&self, stop: &AtomicBool) -> bool {
        let mut busy = self.busy.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *busy {
            if stop.load(Ordering::SeqCst) {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(busy, std::time::Duration::from_millis(200))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            busy = guard;
        }
        *busy = true;
        true
    }

    fn release(&self) {
        *self.busy.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = false;
        self.cv.notify_one();
    }
}

/// Releases the held gate when the connection handler exits by any path.
struct GateGuard(Arc<WriterGate>);

impl Drop for GateGuard {
    fn drop(&mut self) {
        self.0.release();
    }
}

type GateMap = Arc<Mutex<HashMap<String, Arc<WriterGate>>>>;

fn gate_for(gates: &GateMap, tenant: &str) -> Arc<WriterGate> {
    let mut map = gates.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(map.entry(tenant.to_string()).or_default())
}

/// A running TCP server over a [`Service`].
pub struct TdServer {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_join: JoinHandle<()>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TdServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(service: Service, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let conn_joins = Arc::new(Mutex::new(Vec::new()));

        let gates: GateMap = Arc::new(Mutex::new(HashMap::new()));
        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conn_joins);
        let accept_join = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // The accept loop only spawns — admission decisions,
                // blocking sends, and slow clients all live in handler
                // threads, so accepting never stalls behind one tenant.
                let service = Arc::clone(&accept_service);
                let conn_stop = Arc::clone(&accept_stop);
                let conn_gates = Arc::clone(&gates);
                let handle = std::thread::spawn(move || {
                    let _ = handle_connection(&service, stream, &conn_stop, &conn_gates);
                });
                if let Ok(mut joins) = accept_conns.lock() {
                    joins.push(handle);
                }
            }
        });

        Ok(Self { service, addr, stop, accept_join, conn_joins })
    }

    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the listener (for in-process inspection, e.g.
    /// reading [`Service::stats`] while clients stream).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Blocks until a client requests `{"req":"shutdown"}`, then performs
    /// the graceful [`TdServer::shutdown`] drain. This is the daemon
    /// binary's main loop.
    pub fn run_until_shutdown(self) -> Vec<TenantReport> {
        while !self.stop.load(Ordering::SeqCst) {
            std::thread::park_timeout(std::time::Duration::from_millis(200));
        }
        self.shutdown()
    }

    /// Graceful shutdown: stop accepting, unblock connection handlers
    /// (bounded reads let them observe the stop flag even under a
    /// lingering client), then drain every still-open tenant and return
    /// the reports.
    pub fn shutdown(self) -> Vec<TenantReport> {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the blocking accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_join.join();
        let joins = match self.conn_joins.lock() {
            Ok(mut joins) => std::mem::take(&mut *joins),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        for join in joins {
            let _ = join.join();
        }
        self.service.shutdown()
    }
}

impl std::fmt::Debug for TdServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdServer").field("addr", &self.addr).finish()
    }
}

/// Resolves a `hello` request against the service's session defaults.
///
/// # Errors
///
/// A bounded reason naming the unparseable field.
pub fn session_from_hello(
    defaults: SessionConfig,
    hello: &HelloRequest,
) -> Result<SessionConfig, String> {
    let mut sc = defaults;
    if let Some(engine) = &hello.engine {
        sc.engine.clone_from(engine);
    }
    if let Some(name) = &hello.dataset {
        sc.dataset = parse_dataset(name)?;
    }
    if let Some(name) = &hello.sizing {
        sc.sizing = parse_sizing(name)?;
    }
    if let Some(name) = &hello.algo {
        sc.algo = parse_algo(name)?;
    }
    Ok(sc)
}

fn parse_dataset(name: &str) -> Result<Dataset, String> {
    let lower = name.to_ascii_lowercase();
    Dataset::ALL
        .iter()
        .find(|d| {
            d.abbrev().eq_ignore_ascii_case(&lower) || format!("{d:?}").eq_ignore_ascii_case(&lower)
        })
        .copied()
        .ok_or_else(|| format!("unknown dataset {name:?}"))
}

fn parse_sizing(name: &str) -> Result<Sizing, String> {
    match name.to_ascii_lowercase().as_str() {
        "tiny" => Ok(Sizing::Tiny),
        "small" => Ok(Sizing::Small),
        "reference" => Ok(Sizing::Reference),
        _ => Err(format!("unknown sizing {name:?}")),
    }
}

fn parse_algo(name: &str) -> Result<AlgoChoice, String> {
    match name.to_ascii_lowercase().as_str() {
        "sssp" => Ok(AlgoChoice::HubSssp),
        "cc" => Ok(AlgoChoice::Fixed(tdgraph_algos::traits::Algo::cc())),
        "pagerank" => Ok(AlgoChoice::Fixed(tdgraph_algos::traits::Algo::pagerank())),
        "adsorption" => Ok(AlgoChoice::Fixed(tdgraph_algos::traits::Algo::adsorption())),
        _ => Err(format!("unknown algo {name:?}")),
    }
}

fn handle_connection(
    service: &Service,
    stream: TcpStream,
    stop: &AtomicBool,
    gates: &GateMap,
) -> std::io::Result<()> {
    // Bounded reads: a handler must notice the stop flag even while its
    // client sits idle, or a lingering connection would block shutdown's
    // join forever. The timeout only paces the stop-flag poll — a slow
    // sender is retried, never dropped.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    if let Some(policy) = &service.config().overload {
        // A slow-reading client errors its own connection out instead of
        // wedging this handler on a blocking reply write.
        stream.set_write_timeout(policy.write_deadline)?;
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut tenant: Option<String> = None;
    let mut gate: Option<GateGuard> = None;
    // 0-based per-connection data-line counter; shed replies name the
    // exact index so the client knows which lines to re-send.
    let mut data_lines: u64 = 0;
    let mut pending = String::new();

    loop {
        // A timeout can interrupt mid-line; `pending` keeps the partial
        // prefix so the retry completes it instead of corrupting framing.
        match reader.read_line(&mut pending) {
            Ok(0) => break,
            // `read_line` returns without a trailing terminator only at
            // EOF: the connection died mid-line (torn write / cut cable).
            Ok(_) if !pending.ends_with('\n') => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) => {
                flush_truncated(service, &tenant, &pending);
                return Err(e);
            }
        }
        let line = std::mem::take(&mut pending);
        let line = line.trim_end_matches('\n');
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match parse_client_line(line) {
            Ok(p) => p,
            Err(detail) => {
                reply(&mut writer, &[render_error(&detail)])?;
                continue;
            }
        };
        match parsed {
            ClientLine::Hello(hello) => {
                match open_or_attach(service, &hello) {
                    Ok(()) => {
                        if tenant.as_deref() != Some(hello.tenant.as_str()) {
                            gate = None; // release any previous binding
                            let tenant_gate = gate_for(gates, &hello.tenant);
                            if !tenant_gate.acquire(stop) {
                                reply(&mut writer, &[render_error("server stopping")])?;
                                break;
                            }
                            gate = Some(GateGuard(tenant_gate));
                            tenant = Some(hello.tenant.clone());
                        }
                        // Read *after* the gate is held: the previous
                        // connection has fully drained, so the offset is
                        // exact.
                        let acked = service.acked(&hello.tenant).unwrap_or(0);
                        reply(&mut writer, &[render_hello_ok(acked)])?;
                    }
                    Err(detail) => reply(&mut writer, &[render_error(&detail)])?,
                }
            }
            ClientLine::Data(raw) => match &tenant {
                // Un-acked when admitted: data lines stream; a full queue
                // blocks here (backpressure) unless an overload policy
                // sheds, in which case the refusal is an explicit reply.
                Some(name) => {
                    let index = data_lines;
                    data_lines += 1;
                    match service.admit_line(name, raw) {
                        Ok(Admission::Accepted) => {}
                        Ok(Admission::Shed(shed)) => {
                            reply(&mut writer, &[render_shed(index, &shed)])?;
                        }
                        Err(e) => reply(&mut writer, &[render_error(&e.to_string())])?,
                    }
                }
                None => reply(&mut writer, &[render_error("no tenant bound; send hello first")])?,
            },
            ClientLine::Flush => match bound(&tenant).and_then(|name| {
                service.flush(name).map_err(|e| e.to_string())
            }) {
                Ok(n) => reply(
                    &mut writer,
                    &[format!("{{\"ev\":\"ok\",\"req\":\"flush\",\"flushed\":{n}}}")],
                )?,
                Err(detail) => reply(&mut writer, &[render_error(&detail)])?,
            },
            ClientLine::Snapshot => match bound(&tenant).and_then(|name| {
                service.snapshot(name).map_err(|e| e.to_string())
            }) {
                Ok(view) => reply(
                    &mut writer,
                    &[
                        format!(
                            "{{\"ev\":\"snapshot\",\"batches\":{},\"buffered\":{},\"quarantined\":{}}}",
                            view.batches_done, view.buffered, view.quarantined
                        ),
                        view.snapshot.canonical_json_line(),
                        END_EVENT.to_string(),
                    ],
                )?,
                Err(detail) => reply(&mut writer, &[render_error(&detail)])?,
            },
            ClientLine::Finish => match bound(&tenant).and_then(|name| {
                service.finish(name).map_err(|e| e.to_string())
            }) {
                Ok(report) => {
                    tenant = None;
                    reply(&mut writer, &render_report(&report))?;
                }
                Err(detail) => reply(&mut writer, &[render_error(&detail)])?,
            },
            ClientLine::Shutdown => {
                stop.store(true, Ordering::SeqCst);
                reply(&mut writer, &[render_ok("shutdown")])?;
                break;
            }
        }
    }
    // The connection is over; anything still pending is a line the wire
    // cut short. Flush it as a quarantined truncated fragment *before*
    // releasing the gate, so the next attach's resume offset orders
    // after it.
    flush_truncated(service, &tenant, &pending);
    drop(gate);
    Ok(())
}

/// Quarantines a partial final line instead of dropping it: the fragment
/// is WAL-logged and rides the batch path into the tenant's quarantine
/// ledger (excluded from the resume offset — the client re-sends the
/// whole line).
fn flush_truncated(service: &Service, tenant: &Option<String>, pending: &str) {
    if let Some(name) = tenant {
        if !pending.trim().is_empty() {
            let _ = service.ingest_truncated(name, pending);
        }
    }
}

fn open_or_attach(service: &Service, hello: &HelloRequest) -> Result<(), String> {
    if service.is_open(&hello.tenant) {
        // Attach: a reconnecting client resumes the existing session.
        return Ok(());
    }
    let sc = session_from_hello(service.session_defaults(), hello)?;
    service.open_tenant_with(&hello.tenant, sc).map_err(|e| e.to_string())
}

fn bound(tenant: &Option<String>) -> Result<&str, String> {
    tenant.as_deref().ok_or_else(|| "no tenant bound; send hello first".to_string())
}

fn reply(writer: &mut BufWriter<TcpStream>, lines: &[String]) -> std::io::Result<()> {
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_and_abbrevs_parse() {
        assert_eq!(parse_dataset("amazon").unwrap(), Dataset::Amazon);
        assert_eq!(parse_dataset("AZ").unwrap(), Dataset::Amazon);
        assert_eq!(parse_dataset("LiveJournal").unwrap(), Dataset::LiveJournal);
        assert!(parse_dataset("snapville").is_err());
    }

    #[test]
    fn hello_overrides_apply_over_defaults() {
        let hello = HelloRequest {
            tenant: "t".to_string(),
            engine: Some("dzig".to_string()),
            dataset: Some("dblp".to_string()),
            sizing: Some("tiny".to_string()),
            algo: Some("cc".to_string()),
        };
        let sc = session_from_hello(SessionConfig::default(), &hello).unwrap();
        assert_eq!(sc.engine, "dzig");
        assert_eq!(sc.dataset, Dataset::Dblp);
        assert_eq!(sc.sizing, Sizing::Tiny);
        assert!(matches!(sc.algo, AlgoChoice::Fixed(_)));
    }

    #[test]
    fn bad_hello_fields_are_reported() {
        let hello = HelloRequest {
            tenant: "t".to_string(),
            algo: Some("warp".to_string()),
            ..HelloRequest::default()
        };
        let err = session_from_hello(SessionConfig::default(), &hello).unwrap_err();
        assert!(err.contains("warp"));
    }
}
