//! Seeded network-fault injection for the wire protocol.
//!
//! PR 4 gave the data plane a deterministic [`tdgraph_graph::fault`]
//! plan; this module extends the same philosophy to the *wire*: a
//! [`WireFaultPlan`] seeded from a `u64` decides, per send step, whether
//! the client connection dies cleanly mid-stream ([`WireFault::Disconnect`])
//! or mid-frame ([`WireFault::TornDisconnect`] — a prefix of the line
//! with no newline, exactly what a crash during `write(2)` leaves
//! behind). [`stream_with_chaos`] is the reference driver: it streams a
//! line list through a [`ServeClient`], consults the plan at every step,
//! and on a fault severs, reconnects with bounded backoff, and resumes
//! at the server's `acked` offset.
//!
//! Faults are keyed by *send step*, not line index: a re-sent line
//! advances the step counter, and every fault is followed by a forced
//! clean window (`min_gap`), so the same line can never be torn forever —
//! the stream always makes progress. Same seed ⇒ same fault schedule ⇒
//! byte-identical finish reply, which is exactly what the network-chaos
//! tests assert.

use tdgraph_graph::prng::Xoshiro256StarStar;

use crate::client::{ClientError, RetryPolicy, ServeClient};
use crate::clock::Clock;

/// One injected wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Sever the connection between frames (clean line boundary).
    Disconnect,
    /// Write only the first `keep_bytes` bytes of the current line — no
    /// newline — then sever: a torn frame the server must quarantine.
    TornDisconnect {
        /// Bytes of the line that make it onto the wire.
        keep_bytes: usize,
    },
}

/// A seeded, deterministic schedule of wire faults.
///
/// Consult [`WireFaultPlan::fault_for`] once per send step, in order.
/// The plan is self-contained state: same seed and same consultation
/// sequence reproduce the same faults.
#[derive(Debug, Clone)]
pub struct WireFaultPlan {
    rng: Xoshiro256StarStar,
    fault_rate: f64,
    min_gap: u32,
    cooldown: u32,
    steps: u64,
    faults: u64,
}

impl WireFaultPlan {
    /// A plan that faults each eligible step with probability
    /// `fault_rate`, then forces at least `min_gap` clean steps so the
    /// stream always progresses.
    #[must_use]
    pub fn new(seed: u64, fault_rate: f64, min_gap: u32) -> Self {
        Self {
            rng: Xoshiro256StarStar::new(seed),
            fault_rate: fault_rate.clamp(0.0, 1.0),
            min_gap: min_gap.max(1),
            cooldown: 0,
            steps: 0,
            faults: 0,
        }
    }

    /// Decides the fault (if any) for the next send step of a line of
    /// `line_len` bytes. Torn writes keep at least one byte and never the
    /// whole line; lines shorter than 2 bytes fall back to a clean
    /// disconnect.
    pub fn fault_for(&mut self, line_len: usize) -> Option<WireFault> {
        self.steps += 1;
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if !self.rng.next_bool(self.fault_rate) {
            return None;
        }
        self.cooldown = self.min_gap;
        self.faults += 1;
        if self.rng.next_bool(0.5) && line_len >= 2 {
            let keep_bytes = 1 + self.rng.next_index(line_len - 1);
            Some(WireFault::TornDisconnect { keep_bytes })
        } else {
            Some(WireFault::Disconnect)
        }
    }

    /// Send steps consulted so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Faults injected so far.
    #[must_use]
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

/// What a chaos-driven stream did on its way to the finish reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Send steps consumed (sends plus faulted attempts).
    pub steps: u64,
    /// Successful reconnect-and-resume cycles.
    pub reconnects: u32,
    /// Torn (mid-frame) writes injected.
    pub torn_writes: u32,
    /// The finish reply lines — the byte-comparable determinism surface.
    pub finish: Vec<String>,
}

/// Streams `lines` through `client` (already bound via hello), injecting
/// faults from `plan`; severed connections are re-established with
/// `policy`-bounded backoff and the stream resumes at the server's
/// `acked` offset. Ends with a finish request and returns the reply.
///
/// # Errors
///
/// Client/socket failures that outlast the retry budget.
pub fn stream_with_chaos(
    client: &mut ServeClient,
    lines: &[String],
    plan: &mut WireFaultPlan,
    policy: &RetryPolicy,
    clock: &dyn Clock,
) -> Result<ChaosOutcome, ClientError> {
    let mut next = usize::try_from(client.acked()).unwrap_or(usize::MAX).min(lines.len());
    let mut reconnects = 0u32;
    let mut torn_writes = 0u32;
    while next < lines.len() {
        let line = &lines[next];
        match plan.fault_for(line.len()) {
            None => {
                client.send_line(line)?;
                next += 1;
            }
            Some(WireFault::Disconnect) => {
                let _ = client.sever();
                let acked = client.reconnect(policy, clock)?;
                reconnects += 1;
                next = usize::try_from(acked).unwrap_or(usize::MAX).min(lines.len());
            }
            Some(WireFault::TornDisconnect { keep_bytes }) => {
                // Best-effort: the socket may already be half-dead.
                let _ = client.send_torn(line, keep_bytes);
                torn_writes += 1;
                let acked = client.reconnect(policy, clock)?;
                reconnects += 1;
                next = usize::try_from(acked).unwrap_or(usize::MAX).min(lines.len());
            }
        }
    }
    let finish = client.finish()?;
    Ok(ChaosOutcome { steps: plan.steps(), reconnects, torn_writes, finish })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fault_schedule() {
        let mut a = WireFaultPlan::new(7, 0.3, 2);
        let mut b = WireFaultPlan::new(7, 0.3, 2);
        let sched_a: Vec<_> = (0..200).map(|_| a.fault_for(40)).collect();
        let sched_b: Vec<_> = (0..200).map(|_| b.fault_for(40)).collect();
        assert_eq!(sched_a, sched_b);
        assert!(a.faults() > 0, "a 30% rate over 200 steps must fault");
    }

    #[test]
    fn faults_respect_the_clean_gap() {
        let mut plan = WireFaultPlan::new(3, 1.0, 3);
        let mut last_fault: Option<usize> = None;
        for step in 0..100 {
            if plan.fault_for(40).is_some() {
                if let Some(prev) = last_fault {
                    assert!(step - prev > 3, "fault at {step} too close to {prev}");
                }
                last_fault = Some(step);
            }
        }
        assert!(last_fault.is_some());
    }

    #[test]
    fn torn_writes_keep_a_strict_prefix() {
        let mut plan = WireFaultPlan::new(11, 1.0, 1);
        let mut saw_torn = false;
        for _ in 0..200 {
            if let Some(WireFault::TornDisconnect { keep_bytes }) = plan.fault_for(40) {
                assert!((1..40).contains(&keep_bytes));
                saw_torn = true;
            }
        }
        assert!(saw_torn);
    }

    #[test]
    fn short_lines_fall_back_to_clean_disconnects() {
        let mut plan = WireFaultPlan::new(5, 1.0, 1);
        for _ in 0..100 {
            if let Some(fault) = plan.fault_for(1) {
                assert_eq!(fault, WireFault::Disconnect);
            }
        }
    }
}
