//! Per-tenant supervision: a panicking engine generation is caught,
//! restarted with its recorded schedule replayed, and the recovered
//! tenant's report is byte-identical to a run that never crashed. A
//! deterministically-poisoned tenant exhausts its restart budget and is
//! abandoned with evidence — while healthy neighbors on the same service
//! never notice either way.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdgraph_engines::registry::EngineRegistry;
use tdgraph_engines::testutil::{FaultMode, FaultyEngine};
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::format_update_line;
use tdgraph_obs::keys;
use tdgraph_serve::{
    render_report, Service, ServiceConfig, SessionConfig, SupervisionConfig, TenantOutcome,
};

fn clean_lines(take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    workload
        .pending
        .iter()
        .take(take)
        .map(|e| format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)))
        .collect()
}

fn base_config() -> ServiceConfig {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(8)
        .with_batch_deadline(Duration::from_secs(600));
    ServiceConfig::new().with_session_defaults(defaults)
}

/// A registry whose `flaky` engine panics on its second batch exactly
/// once across all builds: the rebuilt generation behaves like the
/// clean baseline.
fn registry_with_panic_once() -> EngineRegistry {
    let armed = Arc::new(AtomicBool::new(true));
    let mut registry = EngineRegistry::with_software();
    registry.register("flaky", move || {
        if armed.swap(false, Ordering::SeqCst) {
            Box::new(FaultyEngine::new(FaultMode::PanicOnBatch(1)))
        } else {
            Box::new(FaultyEngine::new(FaultMode::None))
        }
    });
    registry
}

/// A registry whose `flaky` engine never misbehaves — the control for
/// byte-identity comparisons.
fn registry_with_clean_flaky() -> EngineRegistry {
    let mut registry = EngineRegistry::with_software();
    registry.register("flaky", || Box::new(FaultyEngine::new(FaultMode::None)));
    registry
}

#[test]
fn panicking_tenant_recovers_byte_identically_and_neighbors_are_unaffected() {
    let lines = clean_lines(30);

    let service = Service::new(base_config(), registry_with_panic_once()).unwrap();
    service.open_tenant_with("victim", service.session_defaults().with_engine("flaky")).unwrap();
    service.open_tenant("bystander").unwrap();
    for line in &lines {
        service.ingest_line("victim", line.clone()).unwrap();
        service.ingest_line("bystander", line.clone()).unwrap();
    }
    let victim = service.finish("victim").unwrap();
    let bystander = service.finish("bystander").unwrap();

    assert_eq!(victim.outcome, TenantOutcome::Recovered { restarts: 1 }, "{:?}", victim.outcome);
    assert!(victim.result.as_ref().unwrap().verify.is_match());
    assert_eq!(bystander.outcome, TenantOutcome::Completed);
    assert!(bystander.result.as_ref().unwrap().verify.is_match());

    let stats = service.stats();
    assert_eq!(stats.counter(keys::SERVE_SUPERVISION_PANICS), 1);
    assert_eq!(stats.counter(keys::SERVE_SUPERVISION_RESTARTS), 1);
    assert_eq!(stats.counter(keys::SERVE_SUPERVISION_RECOVERED), 1);
    assert_eq!(stats.counter(keys::SERVE_SUPERVISION_ABANDONED), 0);

    // Byte identity: the same tenant on a never-faulty service renders
    // the exact same report, schedule, and snapshot.
    let control_service = Service::new(base_config(), registry_with_clean_flaky()).unwrap();
    control_service
        .open_tenant_with("victim", control_service.session_defaults().with_engine("flaky"))
        .unwrap();
    for line in &lines {
        control_service.ingest_line("victim", line.clone()).unwrap();
    }
    let control = control_service.finish("victim").unwrap();
    assert_eq!(control.outcome, TenantOutcome::Completed);
    assert_eq!(
        render_report(&victim),
        render_report(&control),
        "recovered report must be byte-identical to the uncrashed run"
    );
}

#[test]
fn deterministic_panic_exhausts_the_restart_budget_and_abandons_with_evidence() {
    let lines = clean_lines(30);

    let mut registry = EngineRegistry::with_software();
    registry.register("poison", || Box::new(FaultyEngine::new(FaultMode::PanicOnBatch(1))));
    let cfg = base_config().with_supervision(SupervisionConfig::new().with_max_restarts(1));
    let service = Service::new(cfg, registry).unwrap();
    service.open_tenant_with("doomed", service.session_defaults().with_engine("poison")).unwrap();
    service.open_tenant("bystander").unwrap();
    for line in &lines {
        service.ingest_line("doomed", line.clone()).unwrap();
        service.ingest_line("bystander", line.clone()).unwrap();
    }

    let doomed = service.finish("doomed").unwrap();
    match &doomed.outcome {
        TenantOutcome::Abandoned { restarts, evidence } => {
            assert_eq!(*restarts, 1);
            assert!(evidence.contains("panic"), "evidence: {evidence}");
        }
        other => panic!("expected abandonment, got {other:?}"),
    }
    let detail = doomed.result.as_ref().unwrap_err();
    assert!(detail.contains("abandoned after 1 restart"), "{detail}");

    // The poisoned tenant took nothing else down: its neighbor verifies,
    // and the service keeps accepting new tenants.
    let bystander = service.finish("bystander").unwrap();
    assert_eq!(bystander.outcome, TenantOutcome::Completed);
    assert!(bystander.result.as_ref().unwrap().verify.is_match());
    service.open_tenant("fresh").unwrap();
    let fresh = service.finish("fresh").unwrap();
    assert!(fresh.result.is_ok());

    let stats = service.stats();
    assert_eq!(stats.counter(keys::SERVE_SUPERVISION_ABANDONED), 1);
    assert!(stats.counter(keys::SERVE_SUPERVISION_PANICS) >= 2, "initial + replay panic");
}

#[test]
fn hung_generation_trips_the_watchdog() {
    let lines = clean_lines(20);

    let mut registry = EngineRegistry::with_software();
    registry.register("tarpit", || {
        Box::new(FaultyEngine::new(FaultMode::SleepOnBatch(1, Duration::from_millis(400))))
    });
    let cfg = base_config().with_supervision(
        SupervisionConfig::new()
            .with_max_restarts(0)
            .with_batch_watchdog(Duration::from_millis(50)),
    );
    let service = Service::new(cfg, registry).unwrap();
    service.open_tenant_with("stuck", service.session_defaults().with_engine("tarpit")).unwrap();
    for line in &lines {
        service.ingest_line("stuck", line.clone()).unwrap();
    }

    let report = service.finish("stuck").unwrap();
    match &report.outcome {
        TenantOutcome::Abandoned { restarts, evidence } => {
            assert_eq!(*restarts, 0);
            assert!(evidence.contains("watchdog"), "evidence: {evidence}");
        }
        other => panic!("expected watchdog abandonment, got {other:?}"),
    }
    assert!(service.stats().counter(keys::SERVE_SUPERVISION_WATCHDOG) >= 1);
}
