//! Overload control: admission against the global entry budget sheds
//! with an explicit `retry_after` reply instead of blocking, the shed
//! counters match the exact shed count, and the client's shed-retry
//! helper re-sends exactly the refused lines — with its waits driven by
//! the injectable test clock, never a real sleep.

use std::time::Duration;

use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::format_update_line;
use tdgraph_obs::keys;
use tdgraph_serve::{
    Admission, OverloadPolicy, RetryPolicy, ServeClient, Service, ServiceConfig, SessionConfig,
    ShedReason, TdServer, TestClock,
};

fn clean_lines(take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    workload
        .pending
        .iter()
        .take(take)
        .map(|e| format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)))
        .collect()
}

/// Batches close only on flush (huge size threshold, long deadline), so
/// admitted entries stay outstanding deterministically until the test
/// flushes — admission decisions depend on nothing timing-related.
fn overload_config(entry_budget: usize) -> ServiceConfig {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(10_000)
        .with_batch_deadline(Duration::from_secs(600));
    ServiceConfig::new().with_session_defaults(defaults).with_overload(
        OverloadPolicy::new()
            .with_entry_budget(entry_budget)
            .with_retry_after(Duration::from_millis(25)),
    )
}

#[test]
fn entry_budget_sheds_deterministically_and_counters_match() {
    let service = Service::new(overload_config(4), EngineRegistry::with_software()).unwrap();
    service.open_tenant("t").unwrap();
    let lines = clean_lines(10);

    let mut shed = 0u64;
    for line in &lines {
        match service.admit_line("t", line.clone()).unwrap() {
            Admission::Accepted => {}
            Admission::Shed(reply) => {
                assert_eq!(reply.reason, ShedReason::EntryBudget);
                assert_eq!(reply.retry_after, Duration::from_millis(25));
                shed += 1;
            }
        }
    }
    // Exactly the budget is admitted; everything past it sheds.
    assert_eq!(shed, 6);
    assert_eq!(service.outstanding_entries(), 4);

    // Flushing commits the open batch and returns the budget.
    assert_eq!(service.flush("t").unwrap(), 4);
    assert_eq!(service.outstanding_entries(), 0);
    assert!(matches!(service.admit_line("t", lines[0].clone()).unwrap(), Admission::Accepted));

    let stats = service.stats();
    assert_eq!(stats.counter(keys::SERVE_SHED_LINES), shed);
    assert_eq!(stats.counter(keys::SERVE_SHED_ENTRY_BUDGET), shed);
    assert_eq!(stats.counter(keys::SERVE_SHED_QUEUE_FULL), 0);
    // Shed lines never entered the log: only admitted ones are acked.
    assert_eq!(service.acked("t").unwrap(), 5);

    let report = service.finish("t").unwrap();
    assert!(report.result.is_ok());
}

#[test]
fn wire_sheds_reply_with_line_indices_and_never_block_the_connection() {
    let service = Service::new(overload_config(4), EngineRegistry::with_software()).unwrap();
    let server = TdServer::bind(service, "127.0.0.1:0").unwrap();

    let lines = clean_lines(10);
    let mut client = ServeClient::connect(server.addr()).unwrap();
    assert_eq!(client.hello("t").unwrap(), 0);
    for line in &lines {
        client.send_line(line).unwrap();
    }
    // The flush reply orders after every data line: by the time it
    // arrives, all shed events for the burst are buffered client-side.
    assert_eq!(client.flush().unwrap(), 4);
    let sheds = client.take_shed_events();
    assert_eq!(sheds.len(), 6);
    let indices: Vec<u64> = sheds.iter().map(|s| s.line).collect();
    assert_eq!(indices, vec![4, 5, 6, 7, 8, 9], "0-based per-connection data-line indices");
    for shed in &sheds {
        assert_eq!(shed.reason, "entry_budget");
        assert_eq!(shed.retry_after, Duration::from_millis(25));
    }

    let reports = server.shutdown();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].result.as_ref().unwrap().quarantine.total(), 0);
}

#[test]
fn shed_retry_helper_resends_exactly_the_refused_lines_without_real_sleeps() {
    let service = Service::new(overload_config(4), EngineRegistry::with_software()).unwrap();
    let server = TdServer::bind(service, "127.0.0.1:0").unwrap();

    let lines = clean_lines(6);
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.hello("t").unwrap();

    let clock = TestClock::new();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_secs(1),
    };
    // 6 lines against a budget of 4: round one sheds two, the helper's
    // flush barrier frees the budget, round two lands both.
    let resent = client.send_lines_with_shed_retry(&lines, &policy, &clock).unwrap();
    assert_eq!(resent, 2);
    // One wait, the server's hint (25ms > the 1ms policy backoff).
    assert_eq!(clock.slept(), vec![Duration::from_millis(25)]);

    let report_lines = client.finish().unwrap();
    assert!(report_lines[0].contains("\"status\":\"ok\""), "{}", report_lines[0]);
    // All six updates were eventually recorded.
    let updates = report_lines.iter().filter(|l| l.contains("\"op\":")).count();
    assert_eq!(updates, 6);
    assert!(server.shutdown().is_empty());
}
