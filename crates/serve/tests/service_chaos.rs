//! Service behavior under hostile traffic and operational churn: a
//! corrupted multi-tenant workload drained by graceful shutdown, the
//! bounded-queue backpressure contract, wire-level flush/snapshot, and
//! the tenant-lifecycle error surface.

use std::thread;
use std::time::Duration;

use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::format_update_line;
use tdgraph_obs::keys;
use tdgraph_serve::{ServeClient, ServeError, Service, ServiceConfig, SessionConfig, TdServer};

/// Update lines for `dataset` with raw garbage and out-of-range ids
/// spliced in — every flavor the quarantine path classifies.
fn hostile_lines(dataset: Dataset, take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(dataset, Sizing::Tiny).unwrap();
    let mut lines = Vec::new();
    for (i, e) in workload.pending.iter().take(take).enumerate() {
        match i % 19 {
            3 => lines.push("{\"op\":\"add\",\"src\":".to_string()), // truncated
            9 => lines.push(format!("@@noise {i}@@")),               // raw garbage
            15 => {
                lines.push("{\"op\":\"add\",\"src\":99999999,\"dst\":1,\"weight\":1}".to_string())
            }
            _ => {}
        }
        lines.push(format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)));
    }
    lines
}

#[test]
fn graceful_shutdown_drains_a_corrupted_multi_tenant_workload() {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(80)
        .with_batch_deadline(Duration::from_secs(30));
    let cfg = ServiceConfig::new()
        .with_queue_capacity(128)
        .with_max_tenants(4)
        .with_session_defaults(defaults);
    let service = Service::new(cfg, EngineRegistry::with_software()).unwrap();
    let server = TdServer::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Three tenants on three engines stream hostile traffic, then drop
    // their connections WITHOUT finishing — shutdown must drain them.
    let tenants = [
        ("t-ligra", "ligra-o", Dataset::Amazon),
        ("t-graphbolt", "graphbolt", Dataset::Dblp),
        ("t-dzig", "dzig", Dataset::Amazon),
    ];
    let handles: Vec<_> = tenants
        .iter()
        .map(|&(tenant, engine, dataset)| {
            thread::spawn(move || {
                let lines = hostile_lines(dataset, 300);
                let mut client = ServeClient::connect(addr).unwrap();
                client
                    .hello_with(tenant, &[("engine", engine), ("dataset", dataset.abbrev())])
                    .unwrap();
                for line in &lines {
                    client.send_line(line).unwrap();
                }
                // Connection dropped here, tenant left open.
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut reports = server.shutdown();
    reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    assert_eq!(reports.len(), 3, "shutdown must drain every open tenant");

    for report in &reports {
        // Degraded-or-better: the run completed, verified against the
        // oracle, and carries quarantine evidence for the hostile lines.
        let result = report.result.as_ref().unwrap();
        assert!(result.verify.is_match(), "tenant {}: {:?}", report.tenant, result.verify);
        assert!(
            result.quarantine.total() > 0,
            "tenant {} should have quarantined hostile records",
            report.tenant
        );
        assert!(!report.schedule.is_empty(), "tenant {} recorded no batches", report.tenant);
        assert!(report.schedule.malformed_count() > 0);
    }
}

#[test]
fn service_stats_track_close_reasons_and_drains() {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(50)
        .with_batch_deadline(Duration::from_secs(30));
    let service = Service::new(
        ServiceConfig::new().with_session_defaults(defaults),
        EngineRegistry::with_software(),
    )
    .unwrap();
    service.open_tenant("solo").unwrap();
    for line in hostile_lines(Dataset::Amazon, 200) {
        service.ingest_line("solo", line).unwrap();
    }
    let report = service.finish("solo").unwrap();
    assert!(report.result.is_ok());

    let stats = service.stats();
    assert!(stats.counter(keys::SERVE_BATCHES_SIZE_CLOSED) > 0);
    assert!(stats.counter(keys::SERVE_LINES_MALFORMED) > 0);
    assert!(stats.counter(keys::SERVE_LINES_ACCEPTED) > 0);
    assert_eq!(stats.counter(keys::SERVE_TENANTS_FINISHED), 1);
}

#[test]
fn bounded_queue_backpressure_holds_under_a_firehose() {
    let capacity = 8;
    let defaults = SessionConfig::default()
        .with_batch_max_entries(64)
        .with_batch_deadline(Duration::from_secs(30));
    let service = Service::new(
        ServiceConfig::new().with_queue_capacity(capacity).with_session_defaults(defaults),
        EngineRegistry::with_software(),
    )
    .unwrap();
    service.open_tenant("firehose").unwrap();

    let lines = hostile_lines(Dataset::Amazon, 400);
    let sent = lines.len();
    for line in lines {
        // Blocks whenever the queue is at capacity — never errors, never
        // buffers beyond the bound.
        service.ingest_line("firehose", line).unwrap();
    }
    let report = service.finish("firehose").unwrap();

    // The counted peak can overshoot the structural bound by at most the
    // one message the worker holds between recv and its depth decrement.
    assert!(
        report.queue_peak <= capacity + 1,
        "queue peak {} exceeded bound {capacity}+1",
        report.queue_peak
    );
    let recorded: usize = report.schedule.update_count() + report.schedule.malformed_count();
    assert_eq!(recorded, sent, "every line must be drained into the schedule");
}

#[test]
fn wire_flush_and_snapshot_report_progress() {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(1000)
        .with_batch_deadline(Duration::from_secs(30));
    let service = Service::new(
        ServiceConfig::new().with_session_defaults(defaults),
        EngineRegistry::with_software(),
    )
    .unwrap();
    let server = TdServer::bind(service, "127.0.0.1:0").unwrap();

    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();
    client.hello("progress").unwrap();
    for e in workload.pending.iter().take(5) {
        client.send_update(&EdgeUpdate::addition(e.src, e.dst, e.weight)).unwrap();
    }
    // Below the size threshold and the deadline: only flush closes it.
    assert_eq!(client.flush().unwrap(), 5);
    assert_eq!(client.flush().unwrap(), 0);

    let reply = client.snapshot().unwrap();
    assert!(reply.header.contains("\"batches\":1"), "{}", reply.header);
    assert!(reply.snapshot.starts_with("{\"counters\":{"), "{}", reply.snapshot);

    let report_lines = client.finish().unwrap();
    assert!(report_lines[0].contains("\"tenant\":\"progress\""));
    assert!(server.shutdown().is_empty());
}

#[test]
fn tenant_lifecycle_errors_are_typed() {
    let service =
        Service::new(ServiceConfig::new().with_max_tenants(2), EngineRegistry::with_software())
            .unwrap();

    service.open_tenant("a").unwrap();
    assert_eq!(service.open_tenant("a").unwrap_err(), ServeError::DuplicateTenant("a".to_string()));
    assert_eq!(
        service
            .open_tenant_with("b", SessionConfig::default().with_engine("warp-drive"))
            .unwrap_err(),
        ServeError::UnknownEngine("warp-drive".to_string())
    );
    assert_eq!(
        service.ingest_line("ghost", "x").unwrap_err(),
        ServeError::UnknownTenant("ghost".to_string())
    );

    service.open_tenant("b").unwrap();
    assert_eq!(service.open_tenant("c").unwrap_err(), ServeError::TenantLimit(2));
    assert_eq!(service.tenant_names(), ["a", "b"]);

    let reports = service.shutdown();
    assert_eq!(reports.len(), 2);
    assert!(service.tenant_names().is_empty());
}
