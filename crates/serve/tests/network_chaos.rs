//! Network chaos at the wire: torn frames are quarantined as truncated
//! lines (the zero-byte-read regression), clean disconnects resume at
//! the acked offset with a byte-identical finish, and a seeded
//! [`WireFaultPlan`] drives a reproducible storm of mid-frame faults.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::format_update_line;
use tdgraph_serve::{
    stream_with_chaos, RetryPolicy, ServeClient, Service, ServiceConfig, SessionConfig, TdServer,
    TestClock, WireFaultPlan,
};

fn clean_lines(take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    workload
        .pending
        .iter()
        .take(take)
        .map(|e| format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)))
        .collect()
}

fn server() -> TdServer {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(8)
        .with_batch_deadline(Duration::from_secs(600));
    let cfg = ServiceConfig::new().with_session_defaults(defaults);
    let service = Service::new(cfg, EngineRegistry::with_software()).unwrap();
    TdServer::bind(service, "127.0.0.1:0").unwrap()
}

#[test]
fn partial_final_line_is_flushed_as_truncated_not_dropped() {
    // Satellite regression: a connection that dies mid-frame (zero-byte
    // read with a pending partial line) must surface the fragment as a
    // quarantined truncated line, not silently drop it.
    let server = server();

    // Raw socket: hello, one clean line, then a newline-less fragment
    // and an orderly FIN (write half-close; a full close would RST and
    // discard the server's unread buffer).
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"{\"req\":\"hello\",\"tenant\":\"t\"}\n").unwrap();
    let lines = clean_lines(2);
    raw.write_all(lines[0].as_bytes()).unwrap();
    raw.write_all(b"\n").unwrap();
    raw.write_all(&lines[1].as_bytes()[..10]).unwrap();
    raw.flush().unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    // Drain until the server closes: its handler has then flushed the
    // fragment and released the tenant's writer gate.
    let mut sink = Vec::new();
    let _ = std::io::Read::read_to_end(&mut raw, &mut sink);
    drop(raw);

    // A reconnecting client sees exactly one clean line acked — the
    // fragment is excluded, so the whole line gets re-sent.
    let mut client = ServeClient::connect(server.addr()).unwrap();
    let acked = client.hello("t").unwrap();
    assert_eq!(acked, 1, "fragment must not count as accepted");
    client.send_line(&lines[1]).unwrap();
    let report_lines = client.finish().unwrap();

    assert!(report_lines[0].contains("\"quarantined\":1"), "{}", report_lines[0]);
    let truncated = report_lines.iter().filter(|l| l.contains("\"truncated\":\"")).count();
    assert_eq!(truncated, 1, "fragment missing from {report_lines:?}");
    assert!(server.shutdown().is_empty());
}

#[test]
fn disconnect_and_resume_matches_an_uninterrupted_run() {
    let lines = clean_lines(24);
    let policy = RetryPolicy::default();
    let clock = TestClock::new();

    let interrupted = {
        let server = server();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        assert_eq!(client.hello("t").unwrap(), 0);
        for line in &lines[..10] {
            client.send_line(line).unwrap();
        }
        client.sever().unwrap();
        let acked = client.reconnect(&policy, &clock).unwrap();
        assert_eq!(acked, 10, "all complete lines written before the FIN are durable");
        for line in &lines[acked as usize..] {
            client.send_line(line).unwrap();
        }
        let finish = client.finish().unwrap();
        assert!(server.shutdown().is_empty());
        finish
    };

    let uninterrupted = {
        let server = server();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.hello("t").unwrap();
        for line in &lines {
            client.send_line(line).unwrap();
        }
        let finish = client.finish().unwrap();
        assert!(server.shutdown().is_empty());
        finish
    };

    assert_eq!(interrupted, uninterrupted, "resume must be invisible in the finish reply");
}

#[test]
fn seeded_chaos_storm_is_reproducible() {
    let lines = clean_lines(40);
    let policy = RetryPolicy::default();

    let run = |seed: u64| {
        let server = server();
        let clock = TestClock::new();
        let mut plan = WireFaultPlan::new(seed, 0.25, 2);
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client.hello("t").unwrap();
        let outcome = stream_with_chaos(&mut client, &lines, &mut plan, &policy, &clock).unwrap();
        assert!(server.shutdown().is_empty());
        outcome
    };

    let a = run(42);
    let b = run(42);
    assert!(a.reconnects > 0, "the storm must actually disconnect");
    assert!(a.torn_writes > 0, "the storm must actually tear frames");
    assert_eq!(a, b, "same seed, same faults, byte-identical finish");

    // A different seed faults differently but still converges; its
    // clean-line content is the same workload.
    let c = run(7);
    assert!(c.finish[0].contains("\"status\":\"ok\""), "{}", c.finish[0]);
}
