//! Crash recovery through the ingest WAL: a service that dies without
//! warning (simulated by [`Service::abort`]) is rebuilt from the WAL
//! directory, resumes at the durable `acked` offset, and — fed the rest
//! of the stream — produces a finish report byte-identical to a run
//! that never crashed. Corrupt tails are dropped and counted, and a
//! clean finish removes the tenant's log.

use std::path::{Path, PathBuf};
use std::time::Duration;

use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::format_update_line;
use tdgraph_obs::keys;
use tdgraph_serve::{render_report, Service, ServiceConfig, SessionConfig, TenantReport};

fn hostile_lines(take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(Dataset::Amazon, Sizing::Tiny).unwrap();
    let mut lines = Vec::new();
    for (i, e) in workload.pending.iter().take(take).enumerate() {
        if i % 11 == 7 {
            lines.push(format!("@@noise {i}@@"));
        }
        lines.push(format_update_line(&EdgeUpdate::addition(e.src, e.dst, e.weight)));
    }
    lines
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tdg-walrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(wal_dir: &Path) -> ServiceConfig {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(8)
        .with_batch_deadline(Duration::from_secs(600));
    ServiceConfig::new().with_session_defaults(defaults).with_wal_dir(wal_dir)
}

fn run_uninterrupted(wal_dir: &Path, lines: &[String]) -> TenantReport {
    let service = Service::new(config(wal_dir), EngineRegistry::with_software()).unwrap();
    service.open_tenant("t").unwrap();
    for line in lines {
        service.ingest_line("t", line.clone()).unwrap();
    }
    service.finish("t").unwrap()
}

#[test]
fn crash_recovery_resumes_at_acked_and_finishes_byte_identically() {
    let lines = hostile_lines(30);
    let split = 20;
    let dir = temp_dir("crash");

    // Phase 1: stream part of the workload, then die without warning.
    let service = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    service.open_tenant("t").unwrap();
    for line in &lines[..split] {
        service.ingest_line("t", line.clone()).unwrap();
    }
    assert_eq!(service.acked("t").unwrap(), split as u64);
    service.abort();

    // Phase 2: a fresh service over the same WAL directory recovers the
    // tenant, resumes at the durable offset, and takes the rest.
    let recovered = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    assert_eq!(recovered.recover_tenants().unwrap(), vec!["t".to_string()]);
    assert_eq!(recovered.acked("t").unwrap(), split as u64, "acked survives the crash");
    for line in &lines[split..] {
        recovered.ingest_line("t", line.clone()).unwrap();
    }
    let report = recovered.finish("t").unwrap();
    assert!(report.result.as_ref().unwrap().verify.is_match());
    // Replay accounting is stamped by the supervisor thread; finish has
    // joined it, so the counters are settled.
    let stats = recovered.stats();
    assert!(stats.counter(keys::SERVE_WAL_REPLAYED_BATCHES) > 0, "committed batches must replay");
    assert!(
        stats.counter(keys::SERVE_WAL_TAIL_ENTRIES) > 0,
        "unmarked tail must re-enter the former"
    );

    // A clean finish retires the log: nothing left to recover.
    let leftover: Vec<_> = std::fs::read_dir(&dir)
        .map(|d| d.filter_map(Result::ok).map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(leftover.is_empty(), "finish must remove the WAL file: {leftover:?}");

    // Byte identity: same stream, never crashed, fresh WAL dir.
    let control_dir = temp_dir("control");
    let control = run_uninterrupted(&control_dir, &lines);
    assert_eq!(
        render_report(&report),
        render_report(&control),
        "recovered finish must be byte-identical to the uncrashed run"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

#[test]
fn torn_wal_tail_is_dropped_counted_and_resumed_before_it() {
    let lines = hostile_lines(20);
    let dir = temp_dir("torn");

    let service = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    service.open_tenant("t").unwrap();
    for line in &lines {
        service.ingest_line("t", line.clone()).unwrap();
    }
    let acked = service.acked("t").unwrap();
    service.abort();

    // Simulate a crash mid-append: a torn, newline-less record fragment
    // at the end of the log.
    let wal_path = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes.extend_from_slice(b"{\"wal\":\"line\",\"raw\":\"half-writ");
    std::fs::write(&wal_path, &bytes).unwrap();

    let recovered = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    assert_eq!(recovered.recover_tenants().unwrap(), vec!["t".to_string()]);
    // The fragment never counts: recovery resumes at the last complete
    // record, and the drop is surfaced in the stats.
    assert_eq!(recovered.acked("t").unwrap(), acked);
    assert_eq!(recovered.stats().counter(keys::SERVE_WAL_TORN_DROPPED), 1);
    let report = recovered.finish("t").unwrap();
    assert!(report.result.as_ref().unwrap().verify.is_match());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_wal_head_skips_the_tenant_but_not_its_neighbors() {
    let dir = temp_dir("damaged");
    let service = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    service.open_tenant("alpha").unwrap();
    service.open_tenant("beta").unwrap();
    for line in hostile_lines(10) {
        service.ingest_line("alpha", line.clone()).unwrap();
        service.ingest_line("beta", line).unwrap();
    }
    service.abort();

    // Destroy alpha's head record entirely.
    let alpha_path = dir.join("alpha.wal");
    std::fs::write(&alpha_path, b"\x00\x01garbage, no head\n").unwrap();

    let recovered = Service::new(config(&dir), EngineRegistry::with_software()).unwrap();
    assert_eq!(recovered.recover_tenants().unwrap(), vec!["beta".to_string()]);
    assert_eq!(recovered.stats().counter(keys::SERVE_WAL_IO_ERRORS), 1);
    let report = recovered.finish("beta").unwrap();
    assert!(report.result.is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
