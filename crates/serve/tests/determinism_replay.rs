//! The service determinism contract, end to end over TCP.
//!
//! Two tenants stream corrupted edge traffic (deterministically damaged
//! updates plus raw garbage lines) through the daemon. Each tenant's
//! finish reply — report event, recorded schedule, canonical snapshot —
//! must be byte-identical to rendering an *offline* replay of that
//! schedule through `RunSource::Recorded`. Arrival timing may move batch
//! boundaries, but the boundaries are recorded, so the replay reproduces
//! the run exactly.

use std::thread;

use tdgraph_engines::config::{RunConfig, RunSource};
use tdgraph_engines::registry::EngineRegistry;
use tdgraph_graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph_graph::fault::FaultPlan;
use tdgraph_graph::quarantine::IngestMode;
use tdgraph_graph::update::EdgeUpdate;
use tdgraph_graph::wire::{format_update_line, RecordedSchedule};
use tdgraph_obs::MemoryRecorder;
use tdgraph_serve::{
    render_report, ServeClient, Service, ServiceConfig, SessionConfig, TdServer, TenantReport,
};

/// Deterministically corrupted wire lines for one tenant: the pending
/// edges of its workload, damaged by a seeded fault plan, with raw
/// garbage spliced in at fixed positions.
fn corrupted_lines(dataset: Dataset, seed: u64, take: usize) -> Vec<String> {
    let workload = StreamingWorkload::try_prepare(dataset, Sizing::Tiny).unwrap();
    let n = workload.graph.vertex_count();
    let updates: Vec<EdgeUpdate> = workload
        .pending
        .iter()
        .take(take)
        .map(|e| EdgeUpdate::addition(e.src, e.dst, e.weight))
        .collect();
    let plan = FaultPlan::seeded(seed)
        .with_nan_weights(0.02)
        .with_out_of_range_ids(0.02)
        .with_absent_deletions(0.5);
    let corrupted = plan.corrupt_updates(0, &updates, n);
    let mut lines = Vec::with_capacity(corrupted.len() + corrupted.len() / 23 + 1);
    for (i, u) in corrupted.iter().enumerate() {
        if i % 23 == 7 {
            lines.push(format!("%%garbage line {i}%%"));
        }
        lines.push(format_update_line(u));
    }
    lines
}

fn stream_tenant(
    addr: std::net::SocketAddr,
    tenant: &str,
    overrides: &[(&str, &str)],
    lines: &[String],
) -> Vec<String> {
    let mut client = ServeClient::connect(addr).unwrap();
    client.hello_with(tenant, overrides).unwrap();
    for line in lines {
        client.send_line(line).unwrap();
    }
    client.finish().unwrap()
}

/// Replays the schedule embedded in a finish reply offline and renders it
/// through the same `render_report`; returns the rendered lines minus the
/// trailing end marker (which `ServeClient::finish` strips).
fn offline_render(
    finish_lines: &[String],
    tenant: &str,
    engine_key: &str,
    dataset: Dataset,
) -> Vec<String> {
    assert!(finish_lines.len() >= 2, "finish reply too short: {finish_lines:?}");
    let schedule_jsonl = finish_lines[1..finish_lines.len() - 1].join("\n");
    let schedule = RecordedSchedule::from_jsonl(&schedule_jsonl).unwrap();

    let workload = StreamingWorkload::try_prepare(dataset, Sizing::Tiny).unwrap();
    let algo = tdgraph_algos::traits::Algo::sssp(workload.hub_vertex());
    let cfg = RunConfig::small().with_ingest(IngestMode::Lenient);
    let mut engine = EngineRegistry::with_software().try_build(engine_key).unwrap();
    let mut recorder = MemoryRecorder::default();
    let result = cfg
        .run_observed(
            engine.as_mut(),
            algo,
            RunSource::Recorded { workload, schedule: schedule.clone() },
            &mut recorder,
        )
        .unwrap();

    let report = TenantReport {
        tenant: tenant.to_string(),
        engine: engine_key.to_string(),
        algo: algo.name().to_string(),
        result: Ok(result),
        schedule,
        snapshot: recorder.into_snapshot(),
        queue_peak: 0,
        outcome: tdgraph_serve::TenantOutcome::Completed,
    };
    let mut lines = render_report(&report);
    lines.pop(); // end marker
    lines
}

#[test]
fn two_tenant_corrupted_workload_replays_byte_identically() {
    let defaults = SessionConfig::default()
        .with_batch_max_entries(96)
        .with_batch_deadline(std::time::Duration::from_secs(30));
    let cfg = ServiceConfig::new().with_queue_capacity(64).with_session_defaults(defaults);
    let service = Service::new(cfg, EngineRegistry::with_software()).unwrap();
    let server = TdServer::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let alpha_lines = corrupted_lines(Dataset::Amazon, 11, 500);
    let beta_lines = corrupted_lines(Dataset::Dblp, 23, 400);

    let alpha = thread::spawn({
        let lines = alpha_lines.clone();
        move || {
            stream_tenant(addr, "alpha", &[("engine", "ligra-o"), ("dataset", "amazon")], &lines)
        }
    });
    let beta = thread::spawn({
        let lines = beta_lines.clone();
        move || stream_tenant(addr, "beta", &[("engine", "dzig"), ("dataset", "dblp")], &lines)
    });
    let alpha_reply = alpha.join().unwrap();
    let beta_reply = beta.join().unwrap();

    // Live report == offline replay, byte for byte, for both tenants.
    let alpha_offline = offline_render(&alpha_reply, "alpha", "ligra-o", Dataset::Amazon);
    assert_eq!(alpha_reply, alpha_offline);
    let beta_offline = offline_render(&beta_reply, "beta", "dzig", Dataset::Dblp);
    assert_eq!(beta_reply, beta_offline);

    // The corruption left quarantine evidence in both reports.
    for reply in [&alpha_reply, &beta_reply] {
        let report_line = &reply[0];
        assert!(report_line.contains("\"status\":\"ok\""), "{report_line}");
        assert!(report_line.contains("\"verify\":\"match\""), "{report_line}");
        let quarantined: u64 = report_line
            .split("\"quarantined\":")
            .nth(1)
            .and_then(|s| {
                s.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
            })
            .unwrap();
        assert!(quarantined > 0, "expected quarantine evidence in {report_line}");
    }

    // Both tenants finished over the wire; shutdown drains nothing more.
    let leftovers = server.shutdown();
    assert!(leftovers.is_empty());
}

#[test]
fn replaying_the_same_schedule_twice_is_stable() {
    // The offline half alone must also be self-deterministic: same
    // schedule, same bytes — this pins the replay side of the contract
    // without any live timing in the loop.
    let lines = corrupted_lines(Dataset::Amazon, 7, 200);
    let service = Service::new(
        ServiceConfig::new()
            .with_session_defaults(SessionConfig::default().with_batch_max_entries(64)),
        EngineRegistry::with_software(),
    )
    .unwrap();
    service.open_tenant("solo").unwrap();
    for line in &lines {
        service.ingest_line("solo", line.as_str()).unwrap();
    }
    let report = service.finish("solo").unwrap();
    let rendered = render_report(&report);

    let a = offline_render(&rendered[..rendered.len() - 1], "solo", "ligra-o", Dataset::Amazon);
    let b = offline_render(&rendered[..rendered.len() - 1], "solo", "ligra-o", Dataset::Amazon);
    assert_eq!(a, b);
    assert_eq!(&rendered[..rendered.len() - 1], a.as_slice());
}
