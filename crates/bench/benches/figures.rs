//! Criterion benches: one benchmark per reproducible table/figure, running
//! the corresponding experiment at Quick scope, plus micro-benchmarks of
//! the hot substrate paths (cache access, CSR build, propagation kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use tdgraph::graph::csr::Csr;
use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::graph::generate::{Rmat, RmatConfig};
use tdgraph::{EngineKind, Experiment};
use tdgraph_bench::{run_experiment, ExperimentId, Scope};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    // The full multi-dataset sweeps are exercised once per iteration at the
    // Quick scope; the heaviest ones get fewer, documented, samples.
    for id in [
        ExperimentId::Table2,
        ExperimentId::Fig04,
        ExperimentId::Fig14,
        ExperimentId::Fig21,
        ExperimentId::Fig22,
    ] {
        group.bench_function(id.cli_name(), |b| {
            b.iter(|| run_experiment(id, Scope::Quick));
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines_sssp_tiny");
    group.sample_size(10);
    for kind in [
        EngineKind::LigraO,
        EngineKind::GraphBolt,
        EngineKind::KickStarter,
        EngineKind::Dzig,
        EngineKind::Hats,
        EngineKind::Minnow,
        EngineKind::Phi,
        EngineKind::DepGraph,
        EngineKind::JetStream,
        EngineKind::TdGraphS,
        EngineKind::TdGraphH,
    ] {
        let label = format!("{kind:?}");
        group.bench_function(&label, |b| {
            let experiment =
                Experiment::new(Dataset::Amazon).sizing(Sizing::Tiny).tune(|o| o.batches = 1);
            b.iter(|| {
                let res = experiment.run(kind);
                assert!(res.verify.is_match());
                res.metrics.cycles
            });
        });
    }
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    let edges = Rmat::new(RmatConfig::new(12, 8).with_seed(3)).edges();
    group.bench_function("csr_build_32k_edges", |b| {
        b.iter(|| Csr::from_edges(1 << 12, &edges));
    });
    let csr = Csr::from_edges(1 << 12, &edges);
    group.bench_function("csr_transpose", |b| b.iter(|| csr.transpose()));

    use tdgraph::sim::address::{AddressSpace, Region};
    use tdgraph::sim::machine::Machine;
    use tdgraph::sim::stats::Actor;
    use tdgraph::sim::SimConfig;
    group.bench_function("machine_1k_accesses", |b| {
        let layout = AddressSpace::layout(4096, 32768, 32);
        let mut machine = Machine::new(SimConfig::small_test(), layout);
        let mut i = 0u64;
        b.iter(|| {
            for _ in 0..1000 {
                i = (i * 1664525 + 1013904223) % 4096;
                machine.access(
                    (i % 4) as usize,
                    Actor::Core,
                    Region::VertexStates,
                    i,
                    i.is_multiple_of(7),
                );
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_substrate, bench_engines, bench_experiments);
criterion_main!(benches);
