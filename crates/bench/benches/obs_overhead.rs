//! Overhead smoke for the observability layer.
//!
//! Two claims are checked here, one reported and one asserted:
//!
//! * **Reported** (criterion group `obs_overhead`): end-to-end harness runs
//!   on the untraced path (internal `NullRecorder`) next to runs streaming
//!   into a live `MemoryRecorder`, so a regression in either path shows up
//!   in the bench log.
//! * **Asserted** (`assert_disabled_emission_is_free`): the hot-path cost
//!   of a *disabled* `RecorderHandle` — what every `BatchCtx` counter
//!   write pays when no recorder is attached — stays within 2% of the
//!   same loop without any emission call.
//!
//! Tolerance approach: wall-clock micro-benchmarks are noisy, so the
//! assertion compares the *minimum* of many interleaved samples (the
//! minimum is the most schedule-robust location statistic for a CPU-bound
//! loop: noise only ever adds time). Samples of the two variants are
//! interleaved so frequency scaling and migration hit both equally, and
//! the check retries before failing so a single descheduled sample cannot
//! fail CI. A true regression — a disabled handle that really does work
//! per call — is deterministic and survives every retry.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tdgraph::engines::metrics::UpdateCounters;
use tdgraph::graph::datasets::{Dataset, Sizing};
use tdgraph::obs::{keys, MemoryRecorder, RecorderHandle};
use tdgraph::{EngineKind, RunConfig};

fn tiny_options() -> RunConfig {
    RunConfig { sim: tdgraph::sim::SimConfig::small_test(), batches: 1, ..RunConfig::default() }
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("harness_null_recorder", |b| {
        let opts = tiny_options();
        b.iter(|| {
            let mut engine = EngineKind::LigraO.try_build().unwrap();
            let res = opts
                .run(
                    engine.as_mut(),
                    tdgraph::algos::traits::Algo::pagerank(),
                    (Dataset::Amazon, Sizing::Tiny),
                )
                .unwrap();
            res.metrics.cycles
        });
    });
    group.bench_function("harness_memory_recorder", |b| {
        let opts = tiny_options();
        b.iter(|| {
            let mut engine = EngineKind::LigraO.try_build().unwrap();
            let mut recorder = MemoryRecorder::new();
            let res = opts
                .run_observed(
                    engine.as_mut(),
                    tdgraph::algos::traits::Algo::pagerank(),
                    (Dataset::Amazon, Sizing::Tiny),
                    &mut recorder,
                )
                .unwrap();
            (res.metrics.cycles, recorder.into_snapshot().counter(keys::EDGES_PROCESSED))
        });
    });
    group.finish();
}

const LOOP_WRITES: u64 = 2_000_000;

/// The hot-path loop without observability: the dense accumulator only.
fn baseline_loop(counters: &mut UpdateCounters) -> Duration {
    let start = Instant::now();
    for v in 0..LOOP_WRITES {
        counters.record_write(black_box((v % 64) as u32));
    }
    start.elapsed()
}

/// The same loop as [`BatchCtx::note_state_write`] performs it when no
/// recorder is attached: accumulator write plus a disabled-handle emission.
fn disabled_loop(counters: &mut UpdateCounters) -> Duration {
    let mut obs = RecorderHandle::disabled();
    let start = Instant::now();
    for v in 0..LOOP_WRITES {
        counters.record_write(black_box((v % 64) as u32));
        obs.counter(keys::STATE_WRITES, 1);
    }
    start.elapsed()
}

/// Minimum-of-samples timing of both variants, interleaved.
fn measure(samples: usize) -> (Duration, Duration) {
    let mut counters = UpdateCounters::new(64);
    // Warm-up (untimed).
    let _ = baseline_loop(&mut counters);
    let _ = disabled_loop(&mut counters);
    let mut base_min = Duration::MAX;
    let mut obs_min = Duration::MAX;
    for _ in 0..samples {
        base_min = base_min.min(baseline_loop(&mut counters));
        obs_min = obs_min.min(disabled_loop(&mut counters));
    }
    black_box(&counters);
    (base_min, obs_min)
}

fn assert_disabled_emission_is_free(_c: &mut Criterion) {
    const TOLERANCE: f64 = 1.02;
    const ATTEMPTS: usize = 3;
    let mut last = (Duration::ZERO, Duration::ZERO);
    for attempt in 1..=ATTEMPTS {
        let (base, obs) = measure(15);
        let ratio = obs.as_secs_f64() / base.as_secs_f64().max(f64::EPSILON);
        eprintln!(
            "obs_overhead/disabled_emission attempt {attempt}: \
             baseline {base:?}, with-disabled-handle {obs:?}, ratio {ratio:.4}"
        );
        if ratio <= TOLERANCE {
            return;
        }
        last = (base, obs);
    }
    panic!(
        "disabled RecorderHandle emission exceeded the {:.0}% overhead budget \
         after {ATTEMPTS} attempts: baseline {:?}, instrumented {:?}",
        (TOLERANCE - 1.0) * 100.0,
        last.0,
        last.1,
    );
}

criterion_group!(benches, bench_end_to_end, assert_disabled_emission_is_free);
criterion_main!(benches);
