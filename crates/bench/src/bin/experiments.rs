//! Experiments CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p tdgraph-bench --release --bin experiments -- all
//! cargo run -p tdgraph-bench --release --bin experiments -- fig10 fig15
//! cargo run -p tdgraph-bench --release --bin experiments -- all --quick
//! cargo run -p tdgraph-bench --release --bin experiments -- all --out results.md
//! ```

use std::io::Write as _;

use tdgraph_bench::{fleet_worker_entry, run_experiment, ExperimentId, Scope};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The scale-out bench re-executes this binary as a fleet worker.
    if fleet_worker_entry(&args) {
        return;
    }
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    let scope = if args.iter().any(|a| a == "--quick") { Scope::Quick } else { Scope::Full };
    let out_path = args.iter().position(|a| a == "--out").and_then(|i| args.get(i + 1).cloned());

    let mut ids: Vec<ExperimentId> = Vec::new();
    for a in args.iter().filter(|a| !a.starts_with("--")) {
        if a == "all" {
            ids = ExperimentId::ALL.to_vec();
            break;
        }
        match ExperimentId::from_cli_name(a) {
            Some(id) => ids.push(id),
            None => {
                if Some(a.as_str()) != out_path.as_deref() {
                    eprintln!("unknown experiment: {a}");
                    print_usage();
                    std::process::exit(2);
                }
            }
        }
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut report = String::new();
    for id in ids {
        eprintln!("running {} ...", id.cli_name());
        let start = std::time::Instant::now();
        let output = run_experiment(id, scope);
        let rendered = output.render();
        println!("{rendered}");
        report.push_str(&rendered);
        report.push('\n');
        eprintln!("  {} done in {:.1}s", id.cli_name(), start.elapsed().as_secs_f64());
    }
    if let Some(path) = out_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(report.as_bytes()).expect("write report");
        eprintln!("wrote {path}");
    }
}

fn print_usage() {
    eprintln!("usage: experiments <all | id...> [--quick] [--out FILE]");
    eprintln!("ids:");
    for id in ExperimentId::ALL {
        eprintln!("  {}", id.cli_name());
    }
}
