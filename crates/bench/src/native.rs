//! Native (host) execution of the software engines — no simulator.
//!
//! Fig 14 runs the software-only systems on a real 64-core machine to show
//! TDGraph-S-without beats Ligra-o in pure software. Here the same
//! comparison runs natively on the build host: both engines execute the
//! real algorithms on the real data structures and are wall-clock timed.

use std::time::{Duration, Instant};

use tdgraph::algos::incremental::{seed_after_batch, AlgoState};
use tdgraph::algos::scratch::{out_mass, solve};
use tdgraph::algos::tap::NullTap;
use tdgraph::algos::traits::{Algo, AlgorithmKind};
use tdgraph::algos::verify::compare;
use tdgraph::graph::csr::Csr;
use tdgraph::graph::datasets::{Dataset, Sizing, StreamingWorkload};
use tdgraph::graph::types::VertexId;
use tdgraph::graph::update::BatchComposer;

/// Which native engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeEngine {
    /// Synchronous push rounds (Ligra-o's schedule).
    LigraO,
    /// Software topology-driven execution (TDGraph-S-without: tracking +
    /// gated propagation, no coalescing — coalescing has no host analog).
    TdGraphSWithout,
}

impl NativeEngine {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NativeEngine::LigraO => "Ligra-o (native)",
            NativeEngine::TdGraphSWithout => "TDGraph-S-without (native)",
        }
    }
}

/// Result of a native run.
#[derive(Debug, Clone)]
pub struct NativeRun {
    /// Engine that ran.
    pub engine: NativeEngine,
    /// Wall-clock time spent in incremental processing (seeding excluded).
    pub propagation_time: Duration,
    /// State updates performed.
    pub updates: u64,
    /// Whether the final states matched the oracle.
    pub verified: bool,
}

/// Runs `engine` natively over `batches` update batches of the dataset.
#[must_use]
pub fn run_native(
    engine: NativeEngine,
    algo_sel: Option<Algo>,
    dataset: Dataset,
    sizing: Sizing,
    batches: usize,
) -> NativeRun {
    let StreamingWorkload { mut graph, pending, .. } = StreamingWorkload::prepare(dataset, sizing);
    let snapshot = graph.snapshot();
    let hub =
        (0..snapshot.vertex_count() as VertexId).max_by_key(|&v| snapshot.degree(v)).unwrap_or(0);
    let algo = algo_sel.unwrap_or(Algo::sssp(hub));
    let mut state = AlgoState::from_solution(solve(&algo, &snapshot), snapshot.vertex_count());

    let batch_size = (graph.edge_count() / 16).max(64);
    let mut composer = BatchComposer::new(pending, 0.75, 42);
    let mut propagation_time = Duration::ZERO;
    let mut updates = 0u64;
    let mut final_snapshot = snapshot;

    for _ in 0..batches {
        let present = graph.edges_vec();
        let Some(batch) = composer.next_batch(batch_size, &present) else { break };
        let applied = graph.apply_batch(&batch).expect("valid batch");
        let snapshot = graph.snapshot();
        let transpose = snapshot.transpose();
        let affected =
            seed_after_batch(&algo, &snapshot, &transpose, &mut state, &applied, &mut NullTap);
        let start = Instant::now();
        updates += match engine {
            NativeEngine::LigraO => sync_push(&algo, &snapshot, &mut state, &affected),
            NativeEngine::TdGraphSWithout => {
                topology_driven(&algo, &snapshot, &mut state, &affected)
            }
        };
        propagation_time += start.elapsed();
        final_snapshot = snapshot;
    }

    let oracle = solve(&algo, &final_snapshot);
    let verified = compare(&algo, &state.states, &oracle.states).is_match();
    NativeRun { engine, propagation_time, updates, verified }
}

/// Ligra-style synchronous push rounds. Returns the update count.
fn sync_push(algo: &Algo, graph: &Csr, state: &mut AlgoState, affected: &[VertexId]) -> u64 {
    let n = graph.vertex_count();
    let mass = out_mass(algo, graph);
    let eps = algo.epsilon();
    let mut updates = 0u64;
    let mut frontier: Vec<VertexId> = affected.to_vec();
    let mut queued = vec![false; n];
    while !frontier.is_empty() {
        let mut next: Vec<VertexId> = Vec::new();
        for v in frontier.drain(..) {
            queued[v as usize] = false;
            match algo.kind() {
                AlgorithmKind::Monotonic => {
                    let s = state.states[v as usize];
                    if !s.is_finite() {
                        continue;
                    }
                    for (nbr, w) in graph.out_edges(v) {
                        let cand = algo.mono_propagate(s, w);
                        if algo.mono_better(cand, state.states[nbr as usize]) {
                            state.states[nbr as usize] = cand;
                            state.parents[nbr as usize] = v;
                            updates += 1;
                            if !queued[nbr as usize] {
                                queued[nbr as usize] = true;
                                next.push(nbr);
                            }
                        }
                    }
                }
                AlgorithmKind::Accumulative => {
                    let r = state.residuals[v as usize];
                    if r.abs() < eps {
                        continue;
                    }
                    state.residuals[v as usize] = 0.0;
                    state.states[v as usize] += r;
                    updates += 1;
                    if mass[v as usize] <= 0.0 {
                        continue;
                    }
                    for (nbr, w) in graph.out_edges(v) {
                        let push = algo.acc_scale(r, w, mass[v as usize]);
                        state.residuals[nbr as usize] += push;
                        if state.residuals[nbr as usize].abs() >= eps && !queued[nbr as usize] {
                            queued[nbr as usize] = true;
                            next.push(nbr);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    updates
}

/// Software topology-driven execution: DFS tracking (discovery-ordered
/// counters) followed by gated propagation — the TDGraph-S algorithm
/// without any hardware support.
fn topology_driven(algo: &Algo, graph: &Csr, state: &mut AlgoState, affected: &[VertexId]) -> u64 {
    let n = graph.vertex_count();
    let mass = out_mass(algo, graph);
    let eps = algo.epsilon();
    let mut updates = 0u64;

    // Tracking: discovery-ordered in-degree counters over the reachable
    // subgraph.
    let mut topology = vec![0u32; n];
    let mut discover = vec![0u32; n];
    let mut stamp = 0u32;
    let mut is_seed = vec![false; n];
    for &v in affected {
        is_seed[v as usize] = true;
    }
    let mut stack: Vec<VertexId> = Vec::new();
    for &root in affected {
        if discover[root as usize] == 0 {
            stamp += 1;
            discover[root as usize] = stamp;
            stack.push(root);
        }
        while let Some(v) = stack.pop() {
            for (nbr, _w) in graph.out_edges(v) {
                let fresh = discover[nbr as usize] == 0;
                if fresh {
                    stamp += 1;
                    discover[nbr as usize] = stamp;
                }
                if fresh || discover[nbr as usize] > discover[v as usize] {
                    topology[nbr as usize] += 1;
                    if fresh && !is_seed[nbr as usize] {
                        stack.push(nbr);
                    }
                }
            }
        }
    }

    // Gated propagation.
    let mut ready: Vec<VertexId> = Vec::new();
    let mut active = vec![false; n];
    for &v in affected {
        active[v as usize] = true;
        if topology[v as usize] == 0 {
            ready.push(v);
        }
    }
    let mut pending: Vec<VertexId> = Vec::new();
    loop {
        let v = match ready.pop() {
            Some(v) => v,
            None => {
                pending.retain(|&p| active[p as usize]);
                match pending.pop() {
                    Some(p) => p,
                    None => break,
                }
            }
        };
        if !active[v as usize] && topology[v as usize] != 0 {
            continue;
        }
        active[v as usize] = false;
        let carry = match algo.kind() {
            AlgorithmKind::Monotonic => state.states[v as usize],
            AlgorithmKind::Accumulative => {
                let r = state.residuals[v as usize];
                if r.abs() >= eps {
                    state.residuals[v as usize] = 0.0;
                    state.states[v as usize] += r;
                    updates += 1;
                    r
                } else {
                    0.0
                }
            }
        };
        for (nbr, w) in graph.out_edges(v) {
            let forward = discover[nbr as usize] == 0
                || discover[v as usize] == 0
                || discover[nbr as usize] > discover[v as usize];
            let transitioned = if forward {
                let b = topology[nbr as usize];
                topology[nbr as usize] = b.saturating_sub(1);
                b == 1
            } else {
                false
            };
            let improved = match algo.kind() {
                AlgorithmKind::Monotonic => {
                    if !carry.is_finite() {
                        false
                    } else {
                        let cand = algo.mono_propagate(carry, w);
                        if algo.mono_better(cand, state.states[nbr as usize]) {
                            state.states[nbr as usize] = cand;
                            state.parents[nbr as usize] = v;
                            updates += 1;
                            true
                        } else {
                            false
                        }
                    }
                }
                AlgorithmKind::Accumulative => {
                    if carry != 0.0 && mass[v as usize] > 0.0 {
                        let push = algo.acc_scale(carry, w, mass[v as usize]);
                        state.residuals[nbr as usize] += push;
                        state.residuals[nbr as usize].abs() >= eps
                    } else {
                        false
                    }
                }
            };
            if transitioned {
                active[nbr as usize] = true;
                ready.push(nbr);
            } else if improved && !active[nbr as usize] {
                active[nbr as usize] = true;
                pending.push(nbr);
            }
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_ligra_verifies() {
        let run = run_native(NativeEngine::LigraO, None, Dataset::Amazon, Sizing::Tiny, 2);
        assert!(run.verified);
    }

    #[test]
    fn native_tdgraph_s_verifies_on_all_algorithms() {
        for algo in [None, Some(Algo::cc()), Some(Algo::pagerank()), Some(Algo::adsorption())] {
            let run =
                run_native(NativeEngine::TdGraphSWithout, algo, Dataset::Amazon, Sizing::Tiny, 2);
            assert!(run.verified, "native TDGraph-S diverged for {algo:?}");
        }
    }

    #[test]
    fn both_native_engines_count_updates() {
        let a = run_native(NativeEngine::LigraO, None, Dataset::Dblp, Sizing::Tiny, 1);
        let b = run_native(NativeEngine::TdGraphSWithout, None, Dataset::Dblp, Sizing::Tiny, 1);
        assert!(a.updates > 0 && b.updates > 0);
    }
}
