//! Fig 15: TDGraph-H against the four comparator accelerators (HATS,
//! Minnow, PHI, DepGraph) — speedups and Perf/Watt normalized to HATS,
//! plus the LLC miss rates §4.3 quotes.

use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

const ENGINES: [EngineKind; 5] = [
    EngineKind::Hats,
    EngineKind::Minnow,
    EngineKind::Phi,
    EngineKind::DepGraph,
    EngineKind::TdGraphH,
];

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<11} {:<4} {:<12} {:>11} {:>12} {:>11} {:>9}",
        "algo", "ds", "engine", "cycles", "speedup(HA)", "perf/W(HA)", "llcmiss%"
    )];
    let algos: [(&str, Option<Algo>); 4] = [
        ("PageRank", Some(Algo::pagerank())),
        ("Adsorption", Some(Algo::adsorption())),
        ("SSSP", None),
        ("CC", Some(Algo::cc())),
    ];
    let mut miss_sums = vec![(0.0f64, 0u32); ENGINES.len()];
    for (name, algo) in algos {
        for ds in Dataset::ALL {
            let mut experiment =
                Experiment::new(ds).sizing(scope.sweep_sizing()).options(scope.options());
            if let Some(a) = algo {
                experiment = experiment.algorithm(a);
            }
            let results = experiment.run_all(&ENGINES);
            let hats = results[0].1.metrics.clone();
            for (i, (kind, res)) in results.iter().enumerate() {
                assert!(
                    res.verify.is_match(),
                    "{kind:?} {name} on {ds:?} diverged: {:?}",
                    res.verify
                );
                let m = &res.metrics;
                miss_sums[i].0 += m.llc_miss_rate;
                miss_sums[i].1 += 1;
                lines.push(format!(
                    "{:<11} {:<4} {:<12} {:>11} {:>11.2}x {:>10.2}x {:>8.1}%",
                    name,
                    ds.abbrev(),
                    m.engine,
                    m.cycles,
                    m.speedup_over(&hats),
                    m.perf_per_watt_over(&hats),
                    100.0 * m.llc_miss_rate,
                ));
            }
        }
    }
    lines.push(String::new());
    let labels = ["HATS", "Minnow", "PHI", "DepGraph", "TDGraph-H"];
    let avg: Vec<String> = labels
        .iter()
        .zip(&miss_sums)
        .map(|(l, (s, c))| format!("{l} {:.1}%", 100.0 * s / f64::from((*c).max(1))))
        .collect();
    lines.push(format!("average LLC miss rates: {}", avg.join(", ")));
    lines.push(
        "paper: TDGraph-H 4.6~12.7x over HATS, 3.2~8.6x Minnow, 3.8~9.7x PHI, \
         2.3~6.1x DepGraph; LLC miss rates 68.5/75.7/63.2/72.1/24.3%"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig15,
        title: "Speedups and Perf/Watt of the accelerators, normalized to HATS".into(),
        lines,
    }
}
