//! Fig 22: impact of the hot-vertex fraction α on SSSP over FR.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};
use tdgraph_accel::tdgraph::TdGraphConfig;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let experiment =
        Experiment::new(Dataset::Friendster).sizing(scope.focus_sizing()).options(scope.options());
    let mut lines =
        vec![format!("{:<8} {:>11} {:>12} {:>9}", "alpha", "cycles", "norm(0.5%)", "useful%")];
    let mut at_default = 0u64;
    let mut rows = Vec::new();
    for alpha in [0.0005f64, 0.001, 0.0025, 0.005, 0.01, 0.02, 0.05] {
        let cfg = TdGraphConfig { alpha, ..TdGraphConfig::default() };
        let res = experiment.clone().tune(|o| o.alpha = alpha).run(EngineKind::TdGraphCustom(cfg));
        assert!(res.verify.is_match(), "alpha {alpha} diverged");
        if (alpha - 0.005).abs() < 1e-12 {
            at_default = res.metrics.cycles.max(1);
        }
        rows.push((alpha, res.metrics.cycles, res.metrics.useful_state_ratio));
    }
    for (alpha, cycles, useful) in rows {
        lines.push(format!(
            "{:<8} {:>11} {:>12.3} {:>8.1}%",
            format!("{:.2}%", 100.0 * alpha),
            cycles,
            cycles as f64 / at_default as f64,
            100.0 * useful,
        ));
    }
    lines.push(String::new());
    lines.push(
        "paper: α is a trade-off — too few hot vertices leave accesses uncoalesced, too \
         many add overhead; 0.5% is the default"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig22, title: "Impact of α on SSSP over FR".into(), lines
    }
}
