//! Fig 20: sensitivity to memory bandwidth (DDR4 channel count) on SSSP
//! over FR.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<9} {:<12} {:>11} {:>10} {:>8}",
        "channels", "engine", "cycles", "norm(12ch)", "bw util"
    )];
    let engines = [EngineKind::LigraO, EngineKind::DepGraph, EngineKind::TdGraphH];
    // Baseline cycles at the default 12 channels, per engine.
    let mut base = [0u64; 3];
    for channels in [1usize, 2, 3, 6, 12, 24] {
        let experiment = Experiment::new(Dataset::Friendster)
            .sizing(scope.focus_sizing())
            .options(scope.options())
            .tune(|o| o.sim.memory.channels = channels);
        for (i, &kind) in engines.iter().enumerate() {
            let res = experiment.run(kind);
            assert!(res.verify.is_match(), "{kind:?} @ {channels}ch diverged");
            if channels == 12 {
                base[i] = res.metrics.cycles.max(1);
            }
            let peak = channels as f64 * 10.24;
            let util = res.metrics.dram_bytes as f64 / (res.metrics.cycles.max(1) as f64 * peak);
            lines.push(format!(
                "{:<9} {:<12} {:>11} {:>10} {:>7.1}%",
                channels,
                res.metrics.engine,
                res.metrics.cycles,
                if base[i] > 0 {
                    format!("{:.3}", res.metrics.cycles as f64 / base[i] as f64)
                } else {
                    "-".into()
                },
                100.0 * util,
            ));
        }
    }
    lines.push(String::new());
    lines.push(
        "paper: TDGraph-H always outperforms the other schemes thanks to higher \
         bandwidth utilization"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig20,
        title: "Sensitivity to memory bandwidth on SSSP over FR".into(),
        lines,
    }
}
