//! Tables 1–3 of the paper.

use tdgraph::graph::datasets::{Dataset, StreamingWorkload};
use tdgraph::SweepRunner;
use tdgraph_accel::area;
use tdgraph_sim::SimConfig;

use super::{ExperimentId, ExperimentOutput, Scope};

/// Table 1: the simulated system configuration.
#[must_use]
pub fn table1() -> ExperimentOutput {
    let c = SimConfig::table1();
    let s = SimConfig::scaled_reference();
    let lines = vec![
        format!("{:<22} {}", "Cores", format!("{} cores, x86-64-like, {} GHz, OOO cost model", c.cores, c.freq_ghz)),
        format!("{:<22} {} KB per-core, {}-way, {}-cycle latency", "L1 Data Cache", c.l1d.size_bytes / 1024, c.l1d.ways, c.l1d.latency),
        format!("{:<22} {} KB private per-core, {}-way, {}-cycle latency", "L2 cache", c.l2.size_bytes / 1024, c.l2.ways, c.l2.latency),
        format!("{:<22} {} MB shared, {}-way, {}-cycle bank latency, DRRIP", "L3 cache", c.llc.size_bytes / (1024 * 1024), c.llc.ways, c.llc.latency),
        format!("{:<22} {}x{} mesh, X-Y routing, {} cycles/hop", "Global NoC", c.mesh_dim, c.mesh_dim, c.hop_cycles),
        format!("{:<22} directory-based invalidation, 64 B lines", "Coherence"),
        format!("{:<22} {}-channel DDR4-3200-class, {:.1} B/cycle peak", "Memory", c.memory.channels, c.memory.peak_bytes_per_cycle()),
        String::new(),
        format!(
            "scaled_reference (used with the scaled datasets, DESIGN.md §3): L1 {} KB, L2 {} KB, LLC {} KB",
            s.l1d.size_bytes / 1024,
            s.l2.size_bytes / 1024,
            s.llc.size_bytes / 1024
        ),
    ];
    ExperimentOutput {
        id: ExperimentId::Table1,
        title: "Configuration of the simulated system".into(),
        lines,
    }
}

/// Table 2: paper dataset statistics next to the generated stand-ins.
#[must_use]
pub fn table2(scope: Scope) -> ExperimentOutput {
    let sizing = scope.sweep_sizing();
    let mut lines = vec![format!(
        "{:<14} {:>11} {:>13} {:>4} {:>4} | {:>9} {:>10} {:>5} {:>5} {:>6} {:>8}",
        "dataset",
        "paper |V|",
        "paper |E|",
        "d",
        "Dbar",
        "gen |V|",
        "gen |E|",
        "d",
        "Dbar",
        "gini",
        "top0.5%"
    )];
    // Each dataset's statistics are independent, so they are computed
    // across the runner's worker pool; `map` keeps the rows in
    // `Dataset::ALL` order.
    lines.extend(SweepRunner::new().map(&Dataset::ALL, |_, &d| {
        let p = d.paper_stats();
        let w = StreamingWorkload::prepare(d, sizing);
        // Statistics of the full generated graph (loaded + pending).
        let mut g = w.graph.clone();
        g.insert_edges(w.pending.iter().copied()).expect("pending edges are in bounds");
        let snap = g.snapshot();
        let skew = tdgraph::graph::stats::degree_stats(&snap);
        format!(
            "{:<14} {:>11} {:>13} {:>4} {:>4} | {:>9} {:>10} {:>5} {:>5.1} {:>6.2} {:>7.1}%",
            format!("{} ({})", p.name, d.abbrev()),
            p.vertices,
            p.edges,
            p.diameter,
            p.avg_degree,
            snap.vertex_count(),
            snap.edge_count(),
            snap.approximate_diameter(),
            snap.average_degree(),
            skew.gini,
            100.0 * skew.top_half_pct_edge_share,
        )
    }));
    lines.push(String::new());
    lines.push(format!(
        "generated at {sizing:?} sizing; relative size/density/diameter ordering tracks the paper"
    ));
    ExperimentOutput {
        id: ExperimentId::Table2,
        title: "Characteristic statistics of datasets (paper vs generated)".into(),
        lines,
    }
}

/// Table 3: power and area cost of the accelerators.
#[must_use]
pub fn table3() -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<10} {:>10} {:>8} {:>11} {:>8} | {:>10} {:>11}",
        "engine", "power mW", "%TDP", "area mm^2", "%core", "paper mW", "paper mm^2"
    )];
    for (budget, paper) in area::table3() {
        lines.push(format!(
            "{:<10} {:>10.0} {:>7.2}% {:>11.4} {:>7.2}% | {:>10.0} {:>11.3}",
            budget.name,
            budget.power_mw(),
            100.0 * budget.tdp_fraction(),
            budget.area_mm2(),
            100.0 * budget.core_fraction(),
            paper.power_mw,
            paper.area_mm2,
        ));
    }
    lines.push(String::new());
    lines.push(format!(
        "component model: {:.4} mm^2/Kbit, {:.4} mm^2/Kgate, {:.1} mW/Kbit, {:.1} mW/Kgate",
        area::MM2_PER_KBIT,
        area::MM2_PER_KGATE,
        area::MW_PER_KBIT,
        area::MW_PER_KGATE
    ));
    ExperimentOutput {
        id: ExperimentId::Table3,
        title: "Power and area cost of different accelerators".into(),
        lines,
    }
}
