//! Fig 23: impact of LLC capacity and replacement policy on SSSP over FR.
//!
//! The paper sweeps 16–128 MB on the full-size machine; the scaled machine
//! sweeps the proportional 128 KB–2 MB (DESIGN.md §3 scaling) across LRU,
//! DRRIP, P-OPT, and GRASP for both Ligra-o and TDGraph-H.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};
use tdgraph_sim::policy::PolicyKind;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<8} {:<7} {:<12} {:>11} {:>9}",
        "llc", "policy", "engine", "cycles", "llcmiss%"
    )];
    for size_kb in [128usize, 256, 512, 1024, 2048] {
        for policy in [PolicyKind::Lru, PolicyKind::Drrip, PolicyKind::Popt, PolicyKind::Grasp] {
            let experiment = Experiment::new(Dataset::Friendster)
                .sizing(scope.focus_sizing())
                .options(scope.options())
                .tune(|o| {
                    o.sim.llc.size_bytes = size_kb * 1024;
                    o.sim.llc.policy = policy;
                });
            // Sweep TDGraph-H at every point; Ligra-o at the default size
            // for reference.
            let res = experiment.run(EngineKind::TdGraphH);
            assert!(res.verify.is_match(), "{size_kb}KB/{policy:?} diverged");
            lines.push(format!(
                "{:<8} {:<7} {:<12} {:>11} {:>8.1}%",
                format!("{size_kb}KB"),
                format!("{policy:?}"),
                res.metrics.engine,
                res.metrics.cycles,
                100.0 * res.metrics.llc_miss_rate,
            ));
            if size_kb == 512 {
                let base = experiment.run(EngineKind::LigraO);
                assert!(base.verify.is_match());
                lines.push(format!(
                    "{:<8} {:<7} {:<12} {:>11} {:>8.1}%",
                    format!("{size_kb}KB"),
                    format!("{policy:?}"),
                    base.metrics.engine,
                    base.metrics.cycles,
                    100.0 * base.metrics.llc_miss_rate,
                ));
            }
        }
    }
    lines.push(String::new());
    lines.push(
        "paper: TDGraph-H wins at every LLC size and does best under GRASP, which \
         protects the coalesced hot states from thrashing"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig23,
        title: "Impact of LLC capacity and policy on SSSP over FR".into(),
        lines,
    }
}
