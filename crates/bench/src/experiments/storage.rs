//! Graph-storage backend bench: batch-apply throughput (updates/sec) of
//! the CSR-substrate store vs the degree-adaptive hybrid store across
//! add-fractions, on the most hub-skewed reference workload.
//!
//! Both stores consume the *same* composed update stream (the composer
//! samples deletions from each store's own present-edge pool, which the
//! [`GraphStore`] contract keeps in identical buffer order), and the bench
//! asserts the final edge sets and quarantine records are identical — a
//! divergence aborts the run, so the numbers are guaranteed to price the
//! same work. Only the `apply` calls are timed; composing batches and
//! re-reading the edge pool cost the same on either backend and are kept
//! outside the clock. Results land in `BENCH_storage.json` (override the
//! path with the `BENCH_STORAGE_OUT` environment variable).

use std::time::{Duration, Instant};

use tdgraph::prelude::*;

use super::{ExperimentId, ExperimentOutput, Scope};

/// Friendster generates the largest, most hub-skewed synthetic workload —
/// the degree-adaptive tiers only differentiate themselves when high-degree
/// rows exist.
const DATASET: Dataset = Dataset::Friendster;

/// Mixed add/delete ratios, from pure insertion to delete-heavy.
const ADD_FRACTIONS: [f64; 3] = [1.0, 0.7, 0.4];

/// One timed storage backend under one add-fraction.
struct StorageSample {
    kind: StorageKind,
    apply_secs: f64,
    updates: u64,
    batches: u64,
    stats: StorageStats,
}

impl StorageSample {
    fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.apply_secs.max(1e-9)
    }
}

/// Streams composed batches into a fresh store of `kind`, timing only the
/// lenient apply calls. Returns the sample plus the final edge pool and
/// quarantine record for the cross-backend divergence gate.
fn run_store(
    kind: StorageKind,
    workload: &StreamingWorkload,
    add_fraction: f64,
    batch_size: usize,
    max_batches: u64,
) -> (StorageSample, Vec<Edge>, QuarantineReport) {
    let mut store = AnyStore::from_streaming(kind, workload.graph.clone());
    let mut composer = BatchComposer::new(workload.pending.clone(), add_fraction, 42);
    let mut quarantine = QuarantineReport::default();
    let mut wall = Duration::ZERO;
    let mut updates = 0u64;
    let mut batches = 0u64;
    while batches < max_batches {
        let present = store.edges_vec();
        let Some(batch) = composer.next_batch(batch_size, &present) else { break };
        updates += batch.len() as u64;
        batches += 1;
        let start = Instant::now();
        store.apply_batch_lenient(&batch, &mut quarantine);
        wall += start.elapsed();
    }
    let sample = StorageSample {
        kind,
        apply_secs: wall.as_secs_f64(),
        updates,
        batches,
        stats: store.stats(),
    };
    (sample, store.edges_vec(), quarantine)
}

pub fn run(scope: Scope) -> ExperimentOutput {
    let sizing = scope.sweep_sizing();
    let workload =
        StreamingWorkload::try_prepare(DATASET, sizing).expect("reference workload generates");
    let batch_size = workload.default_batch_size();
    let max_batches: u64 = if scope == Scope::Quick { 40 } else { 400 };

    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut lines = vec![
        format!(
            "host cpus: {host_cpus} (single-threaded apply loop; wall numbers are host-dependent \
             and not part of any deterministic surface)"
        ),
        format!(
            "{:<9} {:>8} {:>8} {:>12} {:>12} {:>14} {:>14} {:>8}",
            "add-frac",
            "batches",
            "updates",
            "csr(s)",
            "hybrid(s)",
            "csr up/s",
            "hybrid up/s",
            "ratio"
        ),
    ];
    let mut rows: Vec<(f64, StorageSample, StorageSample)> = Vec::new();
    for &add_fraction in &ADD_FRACTIONS {
        let (csr, csr_edges, csr_q) =
            run_store(StorageKind::Csr, &workload, add_fraction, batch_size, max_batches);
        let (hybrid, hybrid_edges, hybrid_q) =
            run_store(StorageKind::Hybrid, &workload, add_fraction, batch_size, max_batches);
        // The divergence gate: same stream, same final graph, same
        // quarantine — in the same buffer order.
        assert_eq!(csr_edges, hybrid_edges, "stores diverged at add_fraction {add_fraction}");
        assert_eq!(csr_q, hybrid_q, "quarantine diverged at add_fraction {add_fraction}");
        assert_eq!(csr.updates, hybrid.updates, "composed streams diverged");
        lines.push(format!(
            "{:<9.2} {:>8} {:>8} {:>12.6} {:>12.6} {:>14.0} {:>14.0} {:>7.2}x",
            add_fraction,
            csr.batches,
            csr.updates,
            csr.apply_secs,
            hybrid.apply_secs,
            csr.updates_per_sec(),
            hybrid.updates_per_sec(),
            hybrid.updates_per_sec() / csr.updates_per_sec().max(1e-9),
        ));
        rows.push((add_fraction, csr, hybrid));
    }

    // Update-heavy = the mixed add/delete rows (add_fraction < 1.0): the
    // hybrid store's hash-indexed hubs pay off on membership checks and
    // deletions. Pure insertion streams have less to gain.
    let update_heavy_wins = rows
        .iter()
        .filter(|(f, _, _)| *f < 1.0)
        .any(|(_, csr, hybrid)| hybrid.updates_per_sec() >= csr.updates_per_sec());
    let note = if update_heavy_wins {
        "hybrid batch-apply throughput >= csr on at least one update-heavy add-fraction".to_string()
    } else {
        format!(
            "hybrid did not beat csr on this host at sizing {sizing:?}: the workload's rows are \
             small enough that linear scans stay cache-resident; the hybrid tiers pay off as \
             degrees grow (run with --full for larger rows)"
        )
    };
    lines.push(String::new());
    lines.push(note.clone());
    if let Some((_, _, hybrid)) = rows.last() {
        let s = hybrid.stats;
        lines.push(format!(
            "hybrid tiers after the delete-heavy run: {} inline / {} linear / {} indexed, \
             {} promotions, {} demotions",
            s.inline_vertices, s.linear_vertices, s.indexed_vertices, s.promotions, s.demotions
        ));
    }

    let json = render_json(scope, sizing, batch_size, &rows, &note);
    let out_path =
        std::env::var("BENCH_STORAGE_OUT").unwrap_or_else(|_| "BENCH_storage.json".to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => lines.push(format!("wrote {out_path}")),
        Err(e) => lines.push(format!("could not write {out_path}: {e}")),
    }

    ExperimentOutput {
        id: ExperimentId::Storage,
        title: "Graph-storage backends: batch-apply throughput, CSR vs degree-adaptive hybrid"
            .into(),
        lines,
    }
}

fn render_sample(s: &StorageSample) -> String {
    format!(
        "{{\"storage\": \"{}\", \"apply_secs\": {:.6}, \"updates\": {}, \"batches\": {}, \
         \"updates_per_sec\": {:.1}, \"tiers\": {{\"inline\": {}, \"linear\": {}, \
         \"indexed\": {}, \"promotions\": {}, \"demotions\": {}}}}}",
        s.kind,
        s.apply_secs,
        s.updates,
        s.batches,
        s.updates_per_sec(),
        s.stats.inline_vertices,
        s.stats.linear_vertices,
        s.stats.indexed_vertices,
        s.stats.promotions,
        s.stats.demotions,
    )
}

fn render_json(
    scope: Scope,
    sizing: Sizing,
    batch_size: usize,
    rows: &[(f64, StorageSample, StorageSample)],
    note: &str,
) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"storage\",\n");
    s.push_str(&format!(
        "  \"scope\": \"{}\",\n",
        if scope == Scope::Quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"dataset\": \"{}\",\n", DATASET.abbrev()));
    s.push_str(&format!("  \"sizing\": \"{sizing:?}\",\n"));
    s.push_str(&format!("  \"batch_size\": {batch_size},\n"));
    s.push_str(&format!("  \"note\": \"{note}\",\n"));
    s.push_str("  \"add_fractions\": [\n");
    for (i, (frac, csr, hybrid)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"add_fraction\": {frac}, \"diverged\": false, \"speedup\": {:.4},\n",
            hybrid.updates_per_sec() / csr.updates_per_sec().max(1e-9)
        ));
        s.push_str(&format!("     \"csr\": {},\n", render_sample(csr)));
        s.push_str(&format!(
            "     \"hybrid\": {}}}{}\n",
            render_sample(hybrid),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
