//! Ablation of the reproduction's own design decisions (DESIGN.md §5):
//! discovery-order DAG-ification of the synchronization counters and
//! deferred re-activation batching. Not a paper figure — it justifies the
//! two mechanisms this implementation adds where the paper is silent about
//! cycle handling.

use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};
use tdgraph_accel::tdgraph::TdGraphConfig;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<10} {:<26} {:>11} {:>10} {:>10}",
        "algo", "configuration", "cycles", "norm", "updates"
    )];
    let configs: [(&str, TdGraphConfig); 4] = [
        ("full (dagify + defer)", TdGraphConfig::default()),
        ("no dagify", TdGraphConfig { dagify: false, ..TdGraphConfig::default() }),
        ("no defer", TdGraphConfig { defer_reactivations: false, ..TdGraphConfig::default() }),
        (
            "neither",
            TdGraphConfig { dagify: false, defer_reactivations: false, ..TdGraphConfig::default() },
        ),
    ];
    for (name, algo) in [("SSSP", None), ("PageRank", Some(Algo::pagerank()))] {
        let mut experiment = Experiment::new(Dataset::Friendster)
            .sizing(scope.focus_sizing())
            .options(scope.options());
        if let Some(a) = algo {
            experiment = experiment.algorithm(a);
        }
        let mut base = 0u64;
        for (label, cfg) in configs {
            let res = experiment.run(EngineKind::TdGraphCustom(cfg));
            assert!(res.verify.is_match(), "{label} diverged: {:?}", res.verify);
            if base == 0 {
                base = res.metrics.cycles.max(1);
            }
            lines.push(format!(
                "{:<10} {:<26} {:>11} {:>10.3} {:>10}",
                name,
                label,
                res.metrics.cycles,
                res.metrics.cycles as f64 / base as f64,
                res.metrics.state_updates,
            ));
        }
    }
    lines.push(String::new());
    lines.push(
        "correctness holds in every configuration (the fallback alone is live); the \
         knobs trade deadlock-fallback churn for gating coverage"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Ablation,
        title: "Ablation of the cycle-handling design decisions (DESIGN.md §5)".into(),
        lines,
    }
}
