//! Fig 19: energy breakdown (core / cache / NoC / DRAM) over FR,
//! normalized to HATS.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let experiment =
        Experiment::new(Dataset::Friendster).sizing(scope.focus_sizing()).options(scope.options());
    let results = experiment.run_all(&[
        EngineKind::Hats,
        EngineKind::Minnow,
        EngineKind::Phi,
        EngineKind::DepGraph,
        EngineKind::TdGraphH,
    ]);
    let hats_total = results[0].1.metrics.energy.total_nj().max(1e-12);
    let mut lines = vec![format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "engine", "core", "cache", "noc", "dram", "total(HA)"
    )];
    for (kind, res) in &results {
        assert!(res.verify.is_match(), "{kind:?} diverged");
        let e = &res.metrics.energy;
        lines.push(format!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>10.3}",
            res.metrics.engine,
            e.core_nj / hats_total,
            e.cache_nj / hats_total,
            e.noc_nj / hats_total,
            e.dram_nj / hats_total,
            e.total_nj() / hats_total,
        ));
    }
    lines.push(String::new());
    lines.push(
        "components normalized to HATS's total; paper: TDGraph-H needs much less energy \
         due to fewer updates and less memory traffic"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig19,
        title: "Energy breakdown over FR (SSSP), normalized to HATS".into(),
        lines,
    }
}
