//! Multi-process scale-out bench: sweep throughput (cells/sec) of the
//! fault-tolerant fleet executor at 1, 2, and 4 worker processes against
//! the single-process serial runner, over a 20-cell reference grid.
//!
//! Every fleet run is gated on byte-identity: canonical report lines and
//! the merged observability snapshot must equal the serial run's exactly,
//! or the bench aborts — the emitted numbers always price identical work.
//! Results land in `BENCH_scaleout.json` (override the path with the
//! `BENCH_SCALEOUT_OUT` environment variable).
//!
//! The fleet spawns workers by re-executing the current binary; the
//! hidden `--fleet-worker` mode (see [`worker_entry`]) turns a spawned
//! `experiments` process into a sweep worker for the same grid.

use std::time::{Duration, Instant};

use tdgraph::prelude::*;
use tdgraph::{run_fleet, run_worker, FleetConfig, SelfExecSpawner, SweepReport};

use super::{ExperimentId, ExperimentOutput, Scope};

/// The scale-out grid: 2 datasets × 2 engines × 5 seeds = 20 cells.
fn spec(scope: Scope) -> SweepSpec {
    let sizing = scope.sweep_sizing();
    SweepSpec::new()
        .datasets([Dataset::Amazon, Dataset::Dblp])
        .sizing(sizing)
        .engines([EngineKind::LigraO, EngineKind::TdGraphH])
        .seeds([1, 2, 3, 4, 5])
        .options(scope.options())
}

fn scope_flag(scope: Scope) -> &'static str {
    match scope {
        Scope::Quick => "--quick",
        Scope::Full => "--full-scope",
    }
}

/// Hidden worker mode: when the `experiments` binary is re-executed by
/// the fleet coordinator it lands here instead of the CLI. Returns true
/// when the process was a fleet worker (main should exit).
pub fn worker_entry(args: &[String]) -> bool {
    if !args.iter().any(|a| a == "--fleet-worker") {
        return false;
    }
    let scope = if args.iter().any(|a| a == "--quick") { Scope::Quick } else { Scope::Full };
    let value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let Some(connect) = value("--connect") else {
        eprintln!("--fleet-worker requires --connect");
        std::process::exit(2);
    };
    let worker_id: u32 = value("--worker-id").and_then(|v| v.parse().ok()).unwrap_or(0);
    let heartbeat = value("--heartbeat-ms")
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(25), Duration::from_millis);
    if let Err(e) =
        run_worker(&spec(scope), &connect, worker_id, heartbeat, tdgraph::WorkerDirective::Clean)
    {
        eprintln!("fleet worker {worker_id}: {e}");
        std::process::exit(1);
    }
    true
}

/// The byte-compared determinism surface of a report.
fn surface(report: &SweepReport) -> String {
    let mut s = report.canonical_lines();
    if let Some(obs) = &report.obs {
        s.push_str(&obs.canonical_json_line());
        s.push('\n');
    }
    s
}

struct FleetSample {
    workers: u32,
    secs: f64,
    cells_per_sec: f64,
    remote: u64,
    inline: u64,
    respawns: u64,
}

pub fn run(scope: Scope) -> ExperimentOutput {
    let spec = spec(scope);
    let cells = spec.cell_count();
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);

    let start = Instant::now();
    let serial = SweepRunner::new().threads(1).observe(true).run(&spec);
    let serial_secs = start.elapsed().as_secs_f64();
    serial.assert_all_verified();
    let control = surface(&serial);
    let serial_cps = cells as f64 / serial_secs.max(1e-9);

    let mut lines = vec![
        format!(
            "host cpus: {host_cpus} (cells/sec counts wall-clock on this host; \
             worker processes beyond the core count cannot add throughput)"
        ),
        format!(
            "{:<10} {:>9} {:>12} {:>9} {:>8} {:>8}",
            "executor", "wall(s)", "cells/sec", "speedup", "remote", "inline"
        ),
        format!(
            "{:<10} {:>9.3} {:>12.2} {:>8.2}x {:>8} {:>8}",
            "serial", serial_secs, serial_cps, 1.0, "-", "-"
        ),
    ];

    let mut samples = Vec::new();
    for workers in [1u32, 2, 4] {
        let cfg =
            FleetConfig::default().workers(workers).observe(true).lease_ttl(Duration::from_secs(5));
        let mut spawner =
            SelfExecSpawner::new(vec!["--fleet-worker".into(), scope_flag(scope).into()]);
        let start = Instant::now();
        let outcome =
            run_fleet(&spec, &cfg, &mut spawner).expect("scale-out fleet must coordinate");
        let secs = start.elapsed().as_secs_f64();
        // The divergence gate: a fleet of any size must reproduce the
        // serial bytes exactly.
        assert_eq!(
            surface(&outcome.report),
            control,
            "fleet of {workers} diverged from the serial run"
        );
        let cells_per_sec = cells as f64 / secs.max(1e-9);
        lines.push(format!(
            "{:<10} {:>9.3} {:>12.2} {:>8.2}x {:>8} {:>8}",
            format!("fleet-{workers}"),
            secs,
            cells_per_sec,
            serial_secs / secs.max(1e-9),
            outcome.stats.cells_remote,
            outcome.stats.cells_inline,
        ));
        samples.push(FleetSample {
            workers,
            secs,
            cells_per_sec,
            remote: outcome.stats.cells_remote,
            inline: outcome.stats.cells_inline,
            respawns: outcome.stats.respawns,
        });
    }
    lines.push(String::new());
    lines.push(format!(
        "divergence gate: all {} fleet runs byte-identical to serial ({} cells each)",
        samples.len(),
        cells
    ));

    let json = render_json(scope, cells, host_cpus, serial_secs, serial_cps, &samples);
    let out_path =
        std::env::var("BENCH_SCALEOUT_OUT").unwrap_or_else(|_| "BENCH_scaleout.json".to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => lines.push(format!("wrote {out_path}")),
        Err(e) => lines.push(format!("could not write {out_path}: {e}")),
    }

    ExperimentOutput {
        id: ExperimentId::Scaleout,
        title: "Multi-process scale-out: fleet sweep throughput vs the serial runner".into(),
        lines,
    }
}

fn render_json(
    scope: Scope,
    cells: usize,
    host_cpus: usize,
    serial_secs: f64,
    serial_cps: f64,
    samples: &[FleetSample],
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"scaleout\",\n");
    s.push_str(&format!(
        "  \"scope\": \"{}\",\n",
        if scope == Scope::Quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"cells\": {cells},\n"));
    s.push_str(&format!(
        "  \"serial\": {{\"wall_secs\": {serial_secs:.4}, \"cells_per_sec\": {serial_cps:.4}}},\n"
    ));
    s.push_str("  \"fleet\": [\n");
    for (i, f) in samples.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"wall_secs\": {:.4}, \"cells_per_sec\": {:.4}, \
             \"speedup_vs_serial\": {:.4}, \"cells_remote\": {}, \"cells_inline\": {}, \
             \"respawns\": {}, \"diverged\": false}}{}\n",
            f.workers,
            f.secs,
            f.cells_per_sec,
            serial_secs / f.secs.max(1e-9),
            f.remote,
            f.inline,
            f.respawns,
            if i + 1 == samples.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
