//! Fig 13: VSCU ablation — TDGraph-H-without (TDTU only) vs full TDGraph-H,
//! normalized to Ligra-o.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, SweepRunner, SweepSpec};

use super::{ExperimentId, ExperimentOutput, Scope};

const ENGINES: [EngineKind; 3] =
    [EngineKind::LigraO, EngineKind::TdGraphHWithout, EngineKind::TdGraphH];

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<4} {:<18} {:>11} {:>12} {:>10}",
        "ds", "engine", "cycles", "speedup(LO)", "vscu gain"
    )];
    // One chunk of |ENGINES| cells per dataset: Ligra-o (the speedup
    // base), then TDTU-only, then the full design.
    let spec = SweepSpec::new()
        .datasets(Dataset::ALL)
        .sizing(scope.sweep_sizing())
        .engines(ENGINES)
        .options(scope.options());
    let report = SweepRunner::new().run(&spec);
    report.assert_all_verified();
    for group in report.cells.chunks(ENGINES.len()) {
        // `assert_all_verified` above guarantees every cell completed.
        let base = group[0].metrics().expect("cell completed").cycles.max(1);
        let without = group[1].metrics().expect("cell completed").cycles.max(1);
        for c in group {
            let m = c.metrics().expect("cell completed");
            let vscu_gain = if c.cell.engine.key() == EngineKind::TdGraphH.key() {
                format!("{:>9.2}x", without as f64 / m.cycles.max(1) as f64)
            } else {
                format!("{:>10}", "-")
            };
            lines.push(format!(
                "{:<4} {:<18} {:>11} {:>11.2}x {}",
                c.cell.dataset.abbrev(),
                m.engine,
                m.cycles,
                base as f64 / m.cycles.max(1) as f64,
                vscu_gain,
            ));
        }
    }
    lines.push(String::new());
    lines.push("paper: TDTU alone gives 5.3~10.8x over Ligra-o; VSCU adds another 1.5~1.9x".into());
    ExperimentOutput {
        id: ExperimentId::Fig13,
        title: "Speedups of TDGraph-H-without (TDTU only) and full TDGraph-H".into(),
        lines,
    }
}
