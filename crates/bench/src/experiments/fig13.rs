//! Fig 13: VSCU ablation — TDGraph-H-without (TDTU only) vs full TDGraph-H,
//! normalized to Ligra-o.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<4} {:<18} {:>11} {:>12} {:>10}",
        "ds", "engine", "cycles", "speedup(LO)", "vscu gain"
    )];
    for ds in Dataset::ALL {
        let experiment = Experiment::new(ds)
            .sizing(scope.sweep_sizing())
            .options(scope.options());
        let results = experiment.run_all(&[
            EngineKind::LigraO,
            EngineKind::TdGraphHWithout,
            EngineKind::TdGraphH,
        ]);
        let base = results[0].1.metrics.cycles.max(1);
        let without = results[1].1.metrics.cycles.max(1);
        for (kind, res) in &results {
            assert!(res.verify.is_match(), "{kind:?} diverged on {ds:?}");
            let m = &res.metrics;
            let vscu_gain = if *kind == EngineKind::TdGraphH {
                format!("{:>9.2}x", without as f64 / m.cycles.max(1) as f64)
            } else {
                format!("{:>10}", "-")
            };
            lines.push(format!(
                "{:<4} {:<18} {:>11} {:>11.2}x {}",
                ds.abbrev(),
                m.engine,
                m.cycles,
                base as f64 / m.cycles.max(1) as f64,
                vscu_gain,
            ));
        }
    }
    lines.push(String::new());
    lines.push(
        "paper: TDTU alone gives 5.3~10.8x over Ligra-o; VSCU adds another 1.5~1.9x".into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig13,
        title: "Speedups of TDGraph-H-without (TDTU only) and full TDGraph-H".into(),
        lines,
    }
}
