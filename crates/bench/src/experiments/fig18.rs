//! Fig 18: interaction with GRASP cache management over FR — Ligra-o under
//! a GRASP LLC, TDGraph-H-GRASP (TDTU + GRASP LLC, no VSCU), and full
//! TDGraph-H.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};
use tdgraph_sim::policy::PolicyKind;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let base_exp =
        Experiment::new(Dataset::Friendster).sizing(scope.focus_sizing()).options(scope.options());
    let grasp_exp = base_exp.clone().tune(|o| o.sim.llc.policy = PolicyKind::Grasp);

    let rows = [
        ("GRASP (Ligra-o + GRASP LLC)", grasp_exp.run(EngineKind::LigraO)),
        ("TDGraph-H-GRASP (TDTU + GRASP LLC)", grasp_exp.run(EngineKind::TdGraphHWithout)),
        ("TDGraph-H (full, DRRIP LLC)", base_exp.run(EngineKind::TdGraphH)),
        ("TDGraph-H (full, GRASP LLC)", grasp_exp.run(EngineKind::TdGraphH)),
    ];
    let base = rows[0].1.metrics.cycles.max(1);
    let mut lines = vec![format!(
        "{:<36} {:>11} {:>10} {:>9}",
        "configuration", "cycles", "norm.time", "llcmiss%"
    )];
    for (label, res) in &rows {
        assert!(res.verify.is_match(), "{label} diverged: {:?}", res.verify);
        lines.push(format!(
            "{:<36} {:>11} {:>10.3} {:>8.1}%",
            label,
            res.metrics.cycles,
            res.metrics.cycles as f64 / base as f64,
            100.0 * res.metrics.llc_miss_rate,
        ));
    }
    lines.push(String::new());
    lines.push(
        "paper: TDGraph-H outperforms GRASP; GRASP management further protects the \
         coalesced hot states (Fig 23)"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig18,
        title: "Execution time with GRASP cache management over FR (SSSP)".into(),
        lines,
    }
}
