//! Fig 3: the problems of the existing software solutions on SSSP —
//! (a) execution-time breakdown normalized to GraphBolt, (b) useless-update
//! ratio, (c) useful fetched-state ratio.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<4} {:<12} {:>11} {:>10} {:>7} {:>9} {:>9}",
        "ds", "engine", "cycles", "norm(GB)", "prop%", "useless%", "useful%"
    )];
    for ds in Dataset::ALL {
        let experiment = Experiment::new(ds).sizing(scope.sweep_sizing()).options(scope.options());
        let results = experiment.run_all(&EngineKind::SOFTWARE);
        let graphbolt_cycles = results[0].1.metrics.cycles.max(1);
        for (kind, res) in &results {
            assert!(res.verify.is_match(), "{kind:?} on {ds:?} diverged: {:?}", res.verify);
            let m = &res.metrics;
            lines.push(format!(
                "{:<4} {:<12} {:>11} {:>10.3} {:>6.1}% {:>8.1}% {:>8.1}%",
                ds.abbrev(),
                m.engine,
                m.cycles,
                m.cycles as f64 / graphbolt_cycles as f64,
                100.0 * m.propagation_cycles as f64 / m.cycles.max(1) as f64,
                100.0 * m.useless_update_ratio(),
                100.0 * m.useful_state_ratio,
            ));
        }
    }
    lines.push(String::new());
    lines.push(
        "paper: propagation >93.7% of Ligra-o time; >83.7% useless updates; \
         most fetched states unused"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig03,
        title: "Performance of SSSP by the existing software solutions".into(),
        lines,
    }
}
