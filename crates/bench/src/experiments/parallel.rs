//! Host-parallel sharded execution bench: intra-cell wall-clock speedup
//! of `ExecMode::Sharded` over `Serial` on the reference fig10-style cell
//! (largest synthetic dataset, TDGraph plus two baselines), sweep
//! throughput in cells/sec, and the record/replay merge overhead.
//!
//! Every sharded run is checked against its serial twin — metrics and
//! oracle verdict must agree byte-for-byte, and a divergence aborts the
//! bench — so the emitted numbers are guaranteed to price identical work.
//! Results land in `BENCH_parallel.json` (override the path with the
//! `BENCH_PARALLEL_OUT` environment variable).

use std::time::Instant;

use tdgraph::prelude::*;

use super::{ExperimentId, ExperimentOutput, Scope};

/// Fig 10's engine trio: the TDGraph accelerator and two baselines.
const ENGINES: [EngineKind; 3] = [EngineKind::TdGraphH, EngineKind::LigraO, EngineKind::TdGraphS];

/// Friendster is the largest dataset of Table 2 and generates the largest
/// synthetic workload at every sizing.
const DATASET: Dataset = Dataset::Friendster;

struct EngineRow {
    engine: &'static str,
    serial_secs: f64,
    sharded1_secs: f64,
    sharded4_secs: f64,
}

impl EngineRow {
    fn speedup4(&self) -> f64 {
        self.serial_secs / self.sharded4_secs.max(1e-9)
    }

    /// Cost of recording + replaying the boundary-event stream with no
    /// parallelism to pay for it: `Sharded(1)` wall over serial wall.
    fn merge_overhead(&self) -> f64 {
        self.sharded1_secs / self.serial_secs.max(1e-9) - 1.0
    }
}

/// One timed cell. Panics (failing the bench run and the CI smoke job) if
/// the sharded result diverges from the serial one.
fn timed_run(
    kind: &EngineKind,
    workload: &StreamingWorkload,
    opts: &RunConfig,
    exec: ExecMode,
) -> (f64, String) {
    let mut engine = (*kind).try_build().expect("fig10 engines are registered");
    let opts = RunConfig { exec, ..opts.clone() };
    let start = Instant::now();
    let res = opts
        .run(engine.as_mut(), Algo::pagerank(), workload.clone())
        .expect("reference cell runs clean");
    let wall = start.elapsed().as_secs_f64();
    assert!(res.verify.is_match(), "{} under {} failed the oracle", kind.key(), exec.label());
    (wall, format!("{:?} {:?}", res.metrics, res.verify))
}

pub fn run(scope: Scope) -> ExperimentOutput {
    let sizing = scope.sweep_sizing();
    let opts = scope.options();
    let workload =
        StreamingWorkload::try_prepare(DATASET, sizing).expect("reference workload generates");

    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut lines = vec![
        format!("host cpus: {host_cpus} (wall-clock speedup is bounded by available parallelism)"),
        format!(
            "{:<12} {:>10} {:>11} {:>11} {:>9} {:>9}",
            "engine", "serial(s)", "sharded1(s)", "sharded4(s)", "x4 speed", "merge ovh"
        ),
    ];
    let mut rows = Vec::new();
    for kind in &ENGINES {
        let (serial_secs, serial_out) = timed_run(kind, &workload, &opts, ExecMode::Serial);
        let (sharded1_secs, sharded1_out) = timed_run(kind, &workload, &opts, ExecMode::Sharded(1));
        let (sharded4_secs, sharded4_out) = timed_run(kind, &workload, &opts, ExecMode::Sharded(4));
        // The divergence gate: sharded output must be byte-identical.
        assert_eq!(serial_out, sharded1_out, "{} diverged under Sharded(1)", kind.key());
        assert_eq!(serial_out, sharded4_out, "{} diverged under Sharded(4)", kind.key());
        let row = EngineRow { engine: kind.key(), serial_secs, sharded1_secs, sharded4_secs };
        lines.push(format!(
            "{:<12} {:>10.3} {:>11.3} {:>11.3} {:>8.2}x {:>8.1}%",
            row.engine,
            row.serial_secs,
            row.sharded1_secs,
            row.sharded4_secs,
            row.speedup4(),
            100.0 * row.merge_overhead(),
        ));
        rows.push(row);
    }

    // Sweep throughput: the same trio over all four algorithms, run by the
    // parallel sweep runner with sharded cells.
    let spec = SweepSpec::new()
        .algo(Algo::pagerank())
        .algo(Algo::adsorption())
        .hub_sssp()
        .algo(Algo::cc())
        .dataset(DATASET)
        .sizing(sizing)
        .engines(ENGINES)
        .options(RunConfig { exec: ExecMode::Sharded(4), ..opts.clone() });
    let cells = spec.cell_count();
    let start = Instant::now();
    let report = SweepRunner::new().threads(4).run(&spec);
    let sweep_secs = start.elapsed().as_secs_f64();
    report.assert_all_verified();
    let cells_per_sec = cells as f64 / sweep_secs.max(1e-9);
    lines.push(String::new());
    lines.push(format!(
        "sweep: {cells} sharded cells in {sweep_secs:.2}s at 4 host threads = {cells_per_sec:.2} cells/sec"
    ));

    let json = render_json(scope, sizing, &rows, cells, sweep_secs, cells_per_sec);
    let out_path =
        std::env::var("BENCH_PARALLEL_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => lines.push(format!("wrote {out_path}")),
        Err(e) => lines.push(format!("could not write {out_path}: {e}")),
    }

    ExperimentOutput {
        id: ExperimentId::Parallel,
        title: "Host-parallel sharded execution: intra-cell speedup and sweep throughput".into(),
        lines,
    }
}

fn render_json(
    scope: Scope,
    sizing: Sizing,
    rows: &[EngineRow],
    cells: usize,
    sweep_secs: f64,
    cells_per_sec: f64,
) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"parallel\",\n");
    s.push_str(&format!(
        "  \"scope\": \"{}\",\n",
        if scope == Scope::Quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"dataset\": \"{}\",\n", DATASET.abbrev()));
    s.push_str(&format!("  \"sizing\": \"{sizing:?}\",\n"));
    s.push_str("  \"reference_cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"serial_secs\": {:.6}, \"sharded1_secs\": {:.6}, \
             \"sharded4_secs\": {:.6}, \"speedup_4_threads\": {:.4}, \
             \"merge_overhead\": {:.4}, \"diverged\": false}}{}\n",
            r.engine,
            r.serial_secs,
            r.sharded1_secs,
            r.sharded4_secs,
            r.speedup4(),
            r.merge_overhead(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"sweep\": {{\"cells\": {cells}, \"host_threads\": 4, \"wall_secs\": {sweep_secs:.4}, \
         \"cells_per_sec\": {cells_per_sec:.4}}}\n"
    ));
    s.push_str("}\n");
    s
}
