//! Host-parallel sharded execution bench: intra-cell wall-clock speedup
//! of sharded [`ExecConfig`]s over serial on the reference fig10-style
//! cell (largest synthetic dataset, TDGraph plus two baselines), sweep
//! throughput in cells/sec, the record/replay merge overhead, and the
//! boundary-event volumes under both event encodings.
//!
//! Every sharded run is checked against its serial twin — metrics and
//! oracle verdict must agree byte-for-byte, and a divergence aborts the
//! bench — so the emitted numbers are guaranteed to price identical work.
//! Results land in `BENCH_parallel.json` (override the path with the
//! `BENCH_PARALLEL_OUT` environment variable).

use std::time::Instant;

use tdgraph::prelude::*;

use super::{ExperimentId, ExperimentOutput, Scope};

/// Fig 10's engine trio: the TDGraph accelerator and two baselines.
const ENGINES: [EngineKind; 3] = [EngineKind::TdGraphH, EngineKind::LigraO, EngineKind::TdGraphS];

/// Friendster is the largest dataset of Table 2 and generates the largest
/// synthetic workload at every sizing.
const DATASET: Dataset = Dataset::Friendster;

/// One timed sharded configuration of a reference cell.
struct ExecSample {
    label: String,
    secs: f64,
    setup_secs: f64,
    reduce_secs: Vec<f64>,
    reduce_lanes: usize,
    encoding: &'static str,
    touch_bytes_raw: u64,
    touch_bytes_encoded: u64,
    fill_bytes: u64,
}

struct EngineRow {
    engine: &'static str,
    serial_secs: f64,
    samples: Vec<ExecSample>,
}

impl EngineRow {
    fn sample(&self, label: &str) -> &ExecSample {
        self.samples
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("no {label} sample"))
    }

    fn speedup4(&self) -> f64 {
        self.serial_secs / self.sample("sharded4").secs.max(1e-9)
    }

    /// Cost of recording + replaying the boundary-event stream with no
    /// parallelism to pay for it: `sharded1` wall over serial wall, with
    /// the one-time pipeline setup (thread spawn + shard-plan cache
    /// hand-off) excluded — setup is paid once per run, not per batch, so
    /// folding it in overstated the steady-state overhead.
    fn merge_overhead(&self) -> f64 {
        let s1 = self.sample("sharded1");
        (s1.secs - s1.setup_secs) / self.serial_secs.max(1e-9) - 1.0
    }
}

/// One timed cell. Panics (failing the bench run and the CI smoke job) if
/// the run diverges from the oracle.
fn timed_run(
    kind: &EngineKind,
    workload: &StreamingWorkload,
    opts: &RunConfig,
    exec: ExecConfig,
) -> (f64, String, Option<ExecPipelineReport>) {
    let mut engine = (*kind).try_build().expect("fig10 engines are registered");
    let opts = RunConfig { exec, ..opts.clone() };
    let start = Instant::now();
    let res = opts
        .run(engine.as_mut(), Algo::pagerank(), workload.clone())
        .expect("reference cell runs clean");
    let wall = start.elapsed().as_secs_f64();
    assert!(res.verify.is_match(), "{} under {} failed the oracle", kind.key(), exec.label());
    (wall, format!("{:?} {:?}", res.metrics, res.verify), res.exec)
}

fn sample(
    kind: &EngineKind,
    workload: &StreamingWorkload,
    opts: &RunConfig,
    exec: ExecConfig,
    serial_out: &str,
) -> ExecSample {
    let (secs, out, report) = timed_run(kind, workload, opts, exec);
    // The divergence gate: sharded output must be byte-identical.
    assert_eq!(serial_out, out, "{} diverged under {}", kind.key(), exec.label());
    let report = report.expect("sharded runs carry a pipeline report");
    ExecSample {
        label: exec.label(),
        secs,
        setup_secs: report.setup.as_secs_f64(),
        reduce_secs: report.reduce_wall.iter().map(std::time::Duration::as_secs_f64).collect(),
        reduce_lanes: report.reduce_lanes,
        encoding: report.encoding.label(),
        touch_bytes_raw: report.touch_bytes_raw,
        touch_bytes_encoded: report.touch_bytes_encoded,
        fill_bytes: report.fill_bytes,
    }
}

pub fn run(scope: Scope) -> ExperimentOutput {
    let sizing = scope.sweep_sizing();
    let opts = scope.options();
    let workload =
        StreamingWorkload::try_prepare(DATASET, sizing).expect("reference workload generates");

    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let configs = [
        ExecConfig::serial().shards(1),
        ExecConfig::serial().shards(4),
        ExecConfig::serial().shards(4).reduce_lanes(4),
        ExecConfig::serial().shards(4).reduce_lanes(4).event_encoding(EventEncoding::RunLength),
    ];
    let mut lines = vec![
        format!("host cpus: {host_cpus} (wall-clock speedup is bounded by available parallelism)"),
        format!(
            "{:<12} {:>10} {:>11} {:>11} {:>13} {:>9} {:>9} {:>9}",
            "engine",
            "serial(s)",
            "sharded1(s)",
            "sharded4(s)",
            "sharded4x4(s)",
            "x4 speed",
            "merge ovh",
            "rle ratio"
        ),
    ];
    let mut rows = Vec::new();
    for kind in &ENGINES {
        let (serial_secs, serial_out, _) = timed_run(kind, &workload, &opts, ExecConfig::serial());
        let samples: Vec<ExecSample> =
            configs.iter().map(|&exec| sample(kind, &workload, &opts, exec, &serial_out)).collect();
        let row = EngineRow { engine: kind.key(), serial_secs, samples };
        let rle = row.sample("sharded4x4-rle");
        let rle_ratio = rle.touch_bytes_encoded as f64 / rle.touch_bytes_raw.max(1) as f64;
        lines.push(format!(
            "{:<12} {:>10.3} {:>11.3} {:>11.3} {:>13.3} {:>8.2}x {:>8.1}% {:>9.3}",
            row.engine,
            row.serial_secs,
            row.sample("sharded1").secs,
            row.sample("sharded4").secs,
            row.sample("sharded4x4").secs,
            row.speedup4(),
            100.0 * row.merge_overhead(),
            rle_ratio,
        ));
        rows.push(row);
    }

    // Sweep throughput: the same trio over all four algorithms, run by the
    // parallel sweep runner with laned sharded cells via the exec axis.
    let sweep_exec = ExecConfig::serial().shards(4).reduce_lanes(2);
    let spec = SweepSpec::new()
        .algo(Algo::pagerank())
        .algo(Algo::adsorption())
        .hub_sssp()
        .algo(Algo::cc())
        .dataset(DATASET)
        .sizing(sizing)
        .engines(ENGINES)
        .options(opts.clone())
        .exec_configs([sweep_exec]);
    let cells = spec.cell_count();
    let start = Instant::now();
    let report = SweepRunner::new().threads(4).run(&spec);
    let sweep_secs = start.elapsed().as_secs_f64();
    report.assert_all_verified();
    let cells_per_sec = cells as f64 / sweep_secs.max(1e-9);
    lines.push(String::new());
    lines.push(format!(
        "sweep: {cells} {} cells in {sweep_secs:.2}s at 4 host threads = {cells_per_sec:.2} cells/sec",
        sweep_exec.label()
    ));

    let json = render_json(scope, sizing, &rows, &sweep_exec, cells, sweep_secs, cells_per_sec);
    let out_path =
        std::env::var("BENCH_PARALLEL_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    match std::fs::write(&out_path, &json) {
        Ok(()) => lines.push(format!("wrote {out_path}")),
        Err(e) => lines.push(format!("could not write {out_path}: {e}")),
    }

    ExperimentOutput {
        id: ExperimentId::Parallel,
        title: "Host-parallel sharded execution: intra-cell speedup and sweep throughput".into(),
        lines,
    }
}

fn render_sample(s: &ExecSample) -> String {
    let reduce = s.reduce_secs.iter().map(|t| format!("{t:.6}")).collect::<Vec<_>>().join(", ");
    format!(
        "{{\"config\": \"{}\", \"secs\": {:.6}, \"setup_secs\": {:.6}, \
         \"reduce_lanes\": {}, \"reduce_secs\": [{}], \"event_encoding\": \"{}\", \
         \"touch_bytes_raw\": {}, \"touch_bytes_encoded\": {}, \"fill_bytes\": {}}}",
        s.label,
        s.secs,
        s.setup_secs,
        s.reduce_lanes,
        reduce,
        s.encoding,
        s.touch_bytes_raw,
        s.touch_bytes_encoded,
        s.fill_bytes,
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scope: Scope,
    sizing: Sizing,
    rows: &[EngineRow],
    sweep_exec: &ExecConfig,
    cells: usize,
    sweep_secs: f64,
    cells_per_sec: f64,
) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"parallel\",\n");
    s.push_str(&format!(
        "  \"scope\": \"{}\",\n",
        if scope == Scope::Quick { "quick" } else { "full" }
    ));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"dataset\": \"{}\",\n", DATASET.abbrev()));
    s.push_str(&format!("  \"sizing\": \"{sizing:?}\",\n"));
    s.push_str("  \"reference_cells\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"engine\": \"{}\", \"serial_secs\": {:.6}, \"speedup_4_threads\": {:.4}, \
             \"merge_overhead\": {:.4}, \"diverged\": false, \"exec\": [\n",
            r.engine,
            r.serial_secs,
            r.speedup4(),
            r.merge_overhead(),
        ));
        for (j, sm) in r.samples.iter().enumerate() {
            s.push_str(&format!(
                "      {}{}\n",
                render_sample(sm),
                if j + 1 == r.samples.len() { "" } else { "," }
            ));
        }
        s.push_str(&format!("    ]}}{}\n", if i + 1 == rows.len() { "" } else { "," }));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"sweep\": {{\"cells\": {cells}, \"exec_config\": \"{}\", \"host_threads\": 4, \
         \"wall_secs\": {sweep_secs:.4}, \"cells_per_sec\": {cells_per_sec:.4}}}\n",
        sweep_exec.label()
    ));
    s.push_str("}\n");
    s
}
