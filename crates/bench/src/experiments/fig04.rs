//! Fig 4: the two observations behind TDGraph —
//! (a) propagations from multiple affected vertices visit largely
//! overlapping vertex sets, and (b) most state accesses refer to a small
//! set of hot vertices.

use std::collections::HashMap;

use tdgraph::algos::incremental::{seed_after_batch, AlgoState};
use tdgraph::algos::scratch::solve;
use tdgraph::algos::tap::AccessTap;
use tdgraph::algos::tap::{NullTap, StateTraceTap};
use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::{Dataset, StreamingWorkload};
use tdgraph::graph::types::VertexId;
use tdgraph::graph::update::BatchComposer;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<4} {:>9} {:>10} {:>9} | {:>8} {:>8} {:>8} {:>8}",
        "ds", "roots", "overlap%", "visited", "a=0.1%", "a=0.2%", "a=0.5%", "a=1.0%"
    )];
    for ds in Dataset::ALL {
        let (overlap, visited, roots, skew) = analyze(ds, scope);
        lines.push(format!(
            "{:<4} {:>9} {:>9.1}% {:>9} | {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            ds.abbrev(),
            roots,
            100.0 * overlap,
            visited,
            100.0 * skew[0],
            100.0 * skew[1],
            100.0 * skew[2],
            100.0 * skew[3],
        ));
    }
    lines.push(String::new());
    lines.push(
        "paper: overlap >73.3% of visited vertices; >69.3% of accesses hit the top 0.5%".into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig04,
        title: "Statistical studies on the characteristics of Ligra-o on SSSP".into(),
        lines,
    }
}

/// Returns (overlap fraction, visited vertices, root count, top-α access
/// shares for α ∈ {0.1, 0.2, 0.5, 1.0}%).
fn analyze(ds: Dataset, scope: Scope) -> (f64, usize, usize, [f64; 4]) {
    let StreamingWorkload { mut graph, pending, .. } =
        StreamingWorkload::prepare(ds, scope.sweep_sizing());
    let snapshot = graph.snapshot();
    let hub =
        (0..snapshot.vertex_count() as VertexId).max_by_key(|&v| snapshot.degree(v)).unwrap_or(0);
    let algo = Algo::sssp(hub);
    let mut state = AlgoState::from_solution(solve(&algo, &snapshot), snapshot.vertex_count());

    let mut composer = BatchComposer::new(pending, 0.75, 42);
    let present = graph.edges_vec();
    let batch_size = (graph.edge_count() / 16).max(64);
    let batch = composer.next_batch(batch_size, &present).expect("workload has updates");
    let applied = graph.apply_batch(&batch).expect("valid batch");
    let snapshot = graph.snapshot();
    let transpose = snapshot.transpose();
    let affected =
        seed_after_batch(&algo, &snapshot, &transpose, &mut state, &applied, &mut NullTap);

    // (a) Per-root reachability: how many visited vertices are shared by
    // two or more roots' propagation paths.
    let mut visit_count: HashMap<VertexId, u32> = HashMap::new();
    for &root in affected.iter().take(64) {
        let mut seen = vec![false; snapshot.vertex_count()];
        let mut stack = vec![root];
        seen[root as usize] = true;
        while let Some(v) = stack.pop() {
            *visit_count.entry(v).or_insert(0) += 1;
            for n in snapshot.neighbors(v) {
                if !seen[*n as usize] {
                    seen[*n as usize] = true;
                    stack.push(*n);
                }
            }
        }
    }
    let visited = visit_count.len().max(1);
    let shared = visit_count.values().filter(|&&c| c >= 2).count();
    let overlap = shared as f64 / visited as f64;

    // (b) State-access skew during the propagation from the affected set.
    let mut tap = StateTraceTap::default();
    for &v in &affected {
        tap.touch(tdgraph::algos::tap::AccessEvent::ReadState(v));
    }
    let mut queue: Vec<VertexId> = affected.clone();
    while let Some(v) = queue.pop() {
        let s = state.states[v as usize];
        if !s.is_finite() {
            continue;
        }
        for (i, (n, w)) in snapshot.out_edges(v).enumerate() {
            let _ = i;
            tap.touch(tdgraph::algos::tap::AccessEvent::ReadState(n));
            let cand = algo.mono_propagate(s, w);
            if algo.mono_better(cand, state.states[n as usize]) {
                tap.touch(tdgraph::algos::tap::AccessEvent::WriteState(n));
                state.states[n as usize] = cand;
                queue.push(n);
            }
        }
    }
    let mut per_vertex: HashMap<VertexId, u64> = HashMap::new();
    for &v in &tap.trace {
        *per_vertex.entry(v).or_insert(0) += 1;
    }
    let mut counts: Vec<u64> = per_vertex.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum::<u64>().max(1);
    let n = snapshot.vertex_count();
    let share = |alpha: f64| -> f64 {
        let k = ((n as f64 * alpha).ceil() as usize).max(1);
        counts.iter().take(k).sum::<u64>() as f64 / total as f64
    };
    (
        overlap,
        visited,
        affected.len().min(64),
        [share(0.001), share(0.002), share(0.005), share(0.01)],
    )
}
