//! Figs 10–12: Ligra-o vs TDGraph-S vs TDGraph-H over all four algorithms
//! and six datasets — execution time with its propagation/other breakdown
//! (Fig 10), vertex-state updates normalized to Ligra-o (Fig 11), and the
//! useful fetched-state ratio (Fig 12).

use tdgraph::algos::traits::Algo;
use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, SweepRunner, SweepSpec};

use super::{ExperimentId, ExperimentOutput, Scope};

const ENGINES: [EngineKind; 3] = [EngineKind::LigraO, EngineKind::TdGraphS, EngineKind::TdGraphH];

pub fn run(scope: Scope) -> ExperimentOutput {
    let mut lines = vec![format!(
        "{:<11} {:<4} {:<12} {:>11} {:>9} {:>7} {:>9} {:>9} {:>9}",
        "algo", "ds", "engine", "cycles", "norm(LO)", "prop%", "norm.upd", "useless%", "useful%"
    )];
    // Expansion order (algorithms → datasets → engines) matches the old
    // serial loops, so each consecutive chunk of |ENGINES| cells is one
    // (algo, dataset) group with Ligra-o first as the normalization base.
    let spec = SweepSpec::new()
        .algo(Algo::pagerank())
        .algo(Algo::adsorption())
        .hub_sssp()
        .algo(Algo::cc())
        .datasets(Dataset::ALL)
        .sizing(scope.sweep_sizing())
        .engines(ENGINES)
        .options(scope.options());
    let report = SweepRunner::new().run(&spec);
    report.assert_all_verified();
    for group in report.cells.chunks(ENGINES.len()) {
        // `assert_all_verified` above guarantees every cell completed.
        let base = group[0].metrics().expect("cell completed");
        let (base_cycles, base_updates) = (base.cycles.max(1), base.state_updates.max(1));
        for c in group {
            let m = c.metrics().expect("cell completed");
            lines.push(format!(
                "{:<11} {:<4} {:<12} {:>11} {:>9.3} {:>6.1}% {:>9.3} {:>8.1}% {:>8.1}%",
                c.cell.algo.label(),
                c.cell.dataset.abbrev(),
                m.engine,
                m.cycles,
                m.cycles as f64 / base_cycles as f64,
                100.0 * m.propagation_cycles as f64 / m.cycles.max(1) as f64,
                m.state_updates as f64 / base_updates as f64,
                100.0 * m.useless_update_ratio(),
                100.0 * m.useful_state_ratio,
            ));
        }
    }
    lines.push(String::new());
    lines.push(
        "paper: TDGraph-H 7.1~21.4x over Ligra-o and 3.6~10.8x over TDGraph-S; \
         TDGraph-H updates 7.8~22.1% of Ligra-o; TDGraph-S 'other' time 85.2~94.7%"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig10,
        title: "Execution time / updates / useful data: Ligra-o vs TDGraph-S vs TDGraph-H".into(),
        lines,
    }
}
