//! Fig 21: sensitivity to the TDTU traversal-stack depth on SSSP over FR.

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};
use tdgraph_accel::tdgraph::TdGraphConfig;

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let experiment =
        Experiment::new(Dataset::Friendster).sizing(scope.focus_sizing()).options(scope.options());
    let mut lines = vec![format!("{:<7} {:>11} {:>11}", "depth", "cycles", "norm(d=10)")];
    let mut at_ten = 0u64;
    let mut rows = Vec::new();
    for depth in [2usize, 4, 6, 8, 10, 12, 16, 32] {
        let cfg = TdGraphConfig { stack_depth: depth, ..TdGraphConfig::default() };
        let res = experiment.run(EngineKind::TdGraphCustom(cfg));
        assert!(res.verify.is_match(), "depth {depth} diverged");
        if depth == 10 {
            at_ten = res.metrics.cycles.max(1);
        }
        rows.push((depth, res.metrics.cycles));
    }
    for (depth, cycles) in rows {
        lines.push(format!("{:<7} {:>11} {:>11.3}", depth, cycles, cycles as f64 / at_ten as f64));
    }
    lines.push(String::new());
    lines.push(
        "paper: performance is insensitive to depths beyond ten, so a fixed depth-10 \
         stack suffices"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig21,
        title: "Sensitivity to the depth of the stack on SSSP over FR".into(),
        lines,
    }
}
