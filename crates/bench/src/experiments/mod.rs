//! Experiment runners, one per table/figure of the paper (see the
//! per-experiment index in DESIGN.md §4).

mod ablation;
mod fig03;
mod fig04;
mod fig10;
mod fig13;
mod fig14;
mod fig15;
mod fig16;
mod fig18;
mod fig19;
mod fig20;
mod fig21;
mod fig22;
mod fig23;
mod fig24;
mod parallel;
mod scaleout;
mod storage;
mod tables;

pub use scaleout::worker_entry as fleet_worker_entry;

use tdgraph::graph::datasets::Sizing;
use tdgraph::RunConfig;
use tdgraph_sim::SimConfig;

/// Identifier of a reproducible table or figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1: simulated system configuration.
    Table1,
    /// Table 2: dataset statistics, paper vs generated.
    Table2,
    /// Table 3: accelerator power and area.
    Table3,
    /// Fig 3: software systems — breakdown, useless updates, useful data.
    Fig03,
    /// Fig 4: the two observations (propagation overlap, access skew).
    Fig04,
    /// Figs 10–12: Ligra-o vs TDGraph-S vs TDGraph-H across all benchmarks
    /// (execution time + breakdown, update counts, useful-state ratios).
    Fig10,
    /// Fig 13: VSCU ablation (TDGraph-H-without vs TDGraph-H).
    Fig13,
    /// Fig 14: native (host) software-only run.
    Fig14,
    /// Fig 15: comparison with HATS, Minnow, PHI, DepGraph (+Perf/Watt).
    Fig15,
    /// Figs 16–17: JetStream comparison (traffic and time).
    Fig16,
    /// Fig 18: GRASP interaction.
    Fig18,
    /// Fig 19: energy breakdown.
    Fig19,
    /// Fig 20: memory-bandwidth sensitivity.
    Fig20,
    /// Fig 21: stack-depth sensitivity.
    Fig21,
    /// Fig 22: α sensitivity.
    Fig22,
    /// Fig 23: LLC size × replacement policy.
    Fig23,
    /// Fig 24: batch size and composition sensitivity.
    Fig24,
    /// Ablation of this reproduction's cycle-handling decisions.
    Ablation,
    /// Host-parallel sharded execution: intra-cell speedup, cells/sec,
    /// merge overhead (emits `BENCH_parallel.json`).
    Parallel,
    /// Multi-process scale-out: fleet sweep throughput at 1/2/4 worker
    /// processes with a byte-identity divergence gate (emits
    /// `BENCH_scaleout.json`).
    Scaleout,
    /// Graph-storage backends: batch-apply throughput of CSR vs the
    /// degree-adaptive hybrid store across add-fractions, with a
    /// same-final-graph divergence gate (emits `BENCH_storage.json`).
    Storage,
}

impl ExperimentId {
    /// Every experiment, in paper order.
    pub const ALL: [ExperimentId; 21] = [
        ExperimentId::Table1,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Fig03,
        ExperimentId::Fig04,
        ExperimentId::Fig10,
        ExperimentId::Fig13,
        ExperimentId::Fig14,
        ExperimentId::Fig15,
        ExperimentId::Fig16,
        ExperimentId::Fig18,
        ExperimentId::Fig19,
        ExperimentId::Fig20,
        ExperimentId::Fig21,
        ExperimentId::Fig22,
        ExperimentId::Fig23,
        ExperimentId::Fig24,
        ExperimentId::Ablation,
        ExperimentId::Parallel,
        ExperimentId::Scaleout,
        ExperimentId::Storage,
    ];

    /// CLI name (e.g. `fig10`, `table2`).
    #[must_use]
    pub fn cli_name(self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig03 => "fig03",
            ExperimentId::Fig04 => "fig04",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig13 => "fig13",
            ExperimentId::Fig14 => "fig14",
            ExperimentId::Fig15 => "fig15",
            ExperimentId::Fig16 => "fig16",
            ExperimentId::Fig18 => "fig18",
            ExperimentId::Fig19 => "fig19",
            ExperimentId::Fig20 => "fig20",
            ExperimentId::Fig21 => "fig21",
            ExperimentId::Fig22 => "fig22",
            ExperimentId::Fig23 => "fig23",
            ExperimentId::Fig24 => "fig24",
            ExperimentId::Ablation => "ablation",
            ExperimentId::Parallel => "parallel",
            ExperimentId::Scaleout => "scaleout",
            ExperimentId::Storage => "storage",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_cli_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|id| id.cli_name() == name)
    }
}

/// How big the runs should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Small sizing, 2 batches — minutes for the full suite.
    Quick,
    /// Reference sizing for the single-dataset studies, Small for the
    /// 6-dataset sweeps — the numbers recorded in EXPERIMENTS.md.
    Full,
}

impl Scope {
    /// Sizing for sweeps across all six datasets.
    #[must_use]
    pub fn sweep_sizing(self) -> Sizing {
        match self {
            Scope::Quick => Sizing::Tiny,
            Scope::Full => Sizing::Small,
        }
    }

    /// Sizing for the single-dataset (FR) studies.
    #[must_use]
    pub fn focus_sizing(self) -> Sizing {
        match self {
            Scope::Quick => Sizing::Tiny,
            Scope::Full => Sizing::Small,
        }
    }

    /// Default run options at this scope.
    #[must_use]
    pub fn options(self) -> RunConfig {
        RunConfig { sim: SimConfig::scaled_reference(), batches: 2, ..RunConfig::default() }
    }
}

/// Output of one experiment: ready-to-print lines plus the title.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentOutput {
    /// Which experiment this is.
    pub id: ExperimentId,
    /// Human title (paper reference).
    pub title: String,
    /// Pre-formatted report lines.
    pub lines: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the output as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!("### {} — {}\n", self.id.cli_name(), self.title);
        for l in &self.lines {
            s.push_str(l);
            s.push('\n');
        }
        s
    }
}

/// Runs one experiment at the given scope.
#[must_use]
pub fn run_experiment(id: ExperimentId, scope: Scope) -> ExperimentOutput {
    match id {
        ExperimentId::Table1 => tables::table1(),
        ExperimentId::Table2 => tables::table2(scope),
        ExperimentId::Table3 => tables::table3(),
        ExperimentId::Fig03 => fig03::run(scope),
        ExperimentId::Fig04 => fig04::run(scope),
        ExperimentId::Fig10 => fig10::run(scope),
        ExperimentId::Fig13 => fig13::run(scope),
        ExperimentId::Fig14 => fig14::run(scope),
        ExperimentId::Fig15 => fig15::run(scope),
        ExperimentId::Fig16 => fig16::run(scope),
        ExperimentId::Fig18 => fig18::run(scope),
        ExperimentId::Fig19 => fig19::run(scope),
        ExperimentId::Fig20 => fig20::run(scope),
        ExperimentId::Fig21 => fig21::run(scope),
        ExperimentId::Fig22 => fig22::run(scope),
        ExperimentId::Fig23 => fig23::run(scope),
        ExperimentId::Fig24 => fig24::run(scope),
        ExperimentId::Ablation => ablation::run(scope),
        ExperimentId::Parallel => parallel::run(scope),
        ExperimentId::Scaleout => scaleout::run(scope),
        ExperimentId::Storage => storage::run(scope),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_names_roundtrip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_cli_name(id.cli_name()), Some(id));
        }
        assert_eq!(ExperimentId::from_cli_name("nope"), None);
    }

    #[test]
    fn tables_render_without_running_simulations() {
        let t1 = run_experiment(ExperimentId::Table1, Scope::Quick);
        assert!(t1.render().contains("64"));
        let t3 = run_experiment(ExperimentId::Table3, Scope::Quick);
        assert!(t3.render().contains("TDGraph"));
    }
}
