//! Figs 16–17: comparison with the event-driven accelerators over FR —
//! off-chip transfer volume split into useful/useless (Fig 16) and
//! execution time of JetStream, JetStream-with, GraphPulse, and TDGraph-H
//! (Fig 17).

use tdgraph::graph::datasets::Dataset;
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let experiment =
        Experiment::new(Dataset::Friendster).sizing(scope.focus_sizing()).options(scope.options());
    let results = experiment.run_all(&[
        EngineKind::JetStream,
        EngineKind::JetStreamWith,
        EngineKind::GraphPulse,
        EngineKind::TdGraphH,
    ]);
    let mut lines = vec![format!(
        "{:<15} {:>11} {:>12} {:>12} {:>12} {:>9}",
        "engine", "cycles", "dram bytes", "useful B", "useless B", "useful%"
    )];
    let base = results[0].1.metrics.cycles.max(1);
    for (kind, res) in &results {
        assert!(res.verify.is_match(), "{kind:?} diverged: {:?}", res.verify);
        let m = &res.metrics;
        let useful = (m.dram_bytes as f64 * m.useful_state_ratio) as u64;
        lines.push(format!(
            "{:<15} {:>11} {:>12} {:>12} {:>12} {:>8.1}%",
            m.engine,
            m.cycles,
            m.dram_bytes,
            useful,
            m.dram_bytes - useful,
            100.0 * m.useful_state_ratio,
        ));
    }
    lines.push(String::new());
    for (_, res) in &results[..3] {
        lines.push(format!(
            "TDGraph-H vs {}: {:.2}x faster",
            res.metrics.engine,
            res.metrics.cycles as f64 / results[3].1.metrics.cycles.max(1) as f64
        ));
    }
    let _ = base;
    lines.push(
        "paper: JetStream prefetches more useless data than TDGraph-H; GraphPulse needs \
         far more memory accesses; TDGraph-H outperforms both JetStream variants"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig16,
        title: "Off-chip traffic and execution time vs event-driven accelerators (FR)".into(),
        lines,
    }
}
