//! Fig 14: software-only comparison on a real platform (the build host
//! substitutes for the paper's Xeon Phi 7210; DESIGN.md §3).

use tdgraph::graph::datasets::Dataset;
use tdgraph::SweepRunner;

use crate::native::{run_native, NativeEngine};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let sizing = scope.focus_sizing();
    // Host-native runs are not simulator cells, so they go through the
    // runner's index-stable map rather than a sweep spec — serially,
    // because both runs are wall-clock timed and concurrent execution
    // would let them contend for the host cores and skew the ratio.
    let engines = [NativeEngine::LigraO, NativeEngine::TdGraphSWithout];
    let results = SweepRunner::new()
        .threads(1)
        .map(&engines, |_, &e| run_native(e, None, Dataset::Friendster, sizing, 3));
    let (ligra, tdg) = (&results[0], &results[1]);
    assert!(ligra.verified && tdg.verified, "native runs diverged from oracle");
    let lines = vec![
        format!("{:<28} {:>12} {:>10}", "engine", "time (us)", "updates"),
        format!(
            "{:<28} {:>12} {:>10}",
            ligra.engine.name(),
            ligra.propagation_time.as_micros(),
            ligra.updates
        ),
        format!(
            "{:<28} {:>12} {:>10}",
            tdg.engine.name(),
            tdg.propagation_time.as_micros(),
            tdg.updates
        ),
        String::new(),
        format!(
            "TDGraph-S-without / Ligra-o time ratio: {:.2} (updates ratio {:.2})",
            tdg.propagation_time.as_secs_f64() / ligra.propagation_time.as_secs_f64().max(1e-12),
            tdg.updates as f64 / ligra.updates.max(1) as f64
        ),
        "paper: TDGraph-S-without also outperforms Ligra-o on a real 64-core Xeon Phi".into(),
    ];
    ExperimentOutput {
        id: ExperimentId::Fig14,
        title: "Execution time over FR on a real platform (host-native, SSSP)".into(),
        lines,
    }
}
