//! Fig 24: impact of (a) batch size and (b) batch composition
//! (additions : deletions) on SSSP over FR.

use tdgraph::graph::datasets::{Dataset, StreamingWorkload};
use tdgraph::{EngineKind, Experiment};

use super::{ExperimentId, ExperimentOutput, Scope};

pub fn run(scope: Scope) -> ExperimentOutput {
    let sizing = scope.focus_sizing();
    let default_batch =
        StreamingWorkload::prepare(Dataset::Friendster, sizing).default_batch_size();
    let mut lines = vec![
        "(a) batch size sweep".to_string(),
        format!("{:<10} {:<12} {:>11} {:>12}", "batch", "engine", "cycles", "speedup(LO)"),
    ];
    for factor in [4usize, 2, 1] {
        let batch = (default_batch / factor).max(64);
        let experiment = Experiment::new(Dataset::Friendster)
            .sizing(sizing)
            .options(scope.options())
            .tune(|o| o.batch_size = Some(batch));
        let base = experiment.run(EngineKind::LigraO);
        let tdg = experiment.run(EngineKind::TdGraphH);
        assert!(base.verify.is_match() && tdg.verify.is_match());
        lines.push(format!(
            "{:<10} {:<12} {:>11} {:>12}",
            batch, base.metrics.engine, base.metrics.cycles, "1.00x"
        ));
        lines.push(format!(
            "{:<10} {:<12} {:>11} {:>11.2}x",
            batch,
            tdg.metrics.engine,
            tdg.metrics.cycles,
            tdg.metrics.speedup_over(&base.metrics),
        ));
    }

    lines.push(String::new());
    lines.push("(b) batch composition sweep (additions : deletions)".to_string());
    lines
        .push(format!("{:<10} {:<12} {:>11} {:>12}", "add:del", "engine", "cycles", "speedup(LO)"));
    for add_fraction in [1.0f64, 0.75, 0.5, 0.25] {
        let experiment = Experiment::new(Dataset::Friendster)
            .sizing(sizing)
            .options(scope.options())
            .tune(|o| o.add_fraction = add_fraction);
        let base = experiment.run(EngineKind::LigraO);
        let tdg = experiment.run(EngineKind::TdGraphH);
        assert!(base.verify.is_match() && tdg.verify.is_match());
        let label = format!("{:.0}:{:.0}", add_fraction * 100.0, (1.0 - add_fraction) * 100.0);
        lines.push(format!(
            "{:<10} {:<12} {:>11} {:>12}",
            label, base.metrics.engine, base.metrics.cycles, "1.00x"
        ));
        lines.push(format!(
            "{:<10} {:<12} {:>11} {:>11.2}x",
            label,
            tdg.metrics.engine,
            tdg.metrics.cycles,
            tdg.metrics.speedup_over(&base.metrics),
        ));
    }
    lines.push(String::new());
    lines.push(
        "paper: TDGraph-H gains grow with batch size (more propagations to regularize) \
         and it wins under every composition"
            .into(),
    );
    ExperimentOutput {
        id: ExperimentId::Fig24,
        title: "Impact of batch size and composition on SSSP over FR".into(),
        lines,
    }
}
