//! Benchmark harness regenerating every table and figure of the TDGraph
//! paper's evaluation (§4).
//!
//! Each experiment lives in [`experiments`] as a runner that builds the
//! workload, executes the relevant engines on the simulated machine, and
//! returns the same rows/series the paper reports. The `experiments` binary
//! drives them (`cargo run -p tdgraph-bench --release --bin experiments --
//! all`), and `benches/figures.rs` wraps them in Criterion for `cargo
//! bench`.

pub mod experiments;
pub mod native;

pub use experiments::{fleet_worker_entry, run_experiment, ExperimentId, ExperimentOutput, Scope};
