//! Deterministic pseudo-random number generators.
//!
//! The reproduction needs byte-for-byte reproducible datasets and update
//! streams across platforms, so we implement two small, well-known PRNGs
//! instead of depending on `rand` (whose output can change across major
//! versions): SplitMix64 for seeding and Xoshiro256** for bulk generation.

/// SplitMix64: a tiny, high-quality 64-bit mixer. Primarily used to expand a
/// single `u64` seed into the 256-bit state of [`Xoshiro256StarStar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: fast, statistically strong PRNG used for all workload
/// generation (R-MAT recursion, batch sampling, weight draws).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator, expanding `seed` through SplitMix64 as the
    /// reference implementation recommends.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Multiply-shift bounded generation (Lemire). A slight modulo bias
        // is irrelevant for workload generation but this avoids it anyway
        // for bounds far below 2^64.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the public-domain
        // splitmix64.c implementation.
        let mut g = SplitMix64::new(1234567);
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), a);
        assert_eq!(h.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = Xoshiro256StarStar::new(9);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::new(1).next_below(0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut g = Xoshiro256StarStar::new(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[g.next_index(8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256StarStar::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }
}
