//! Compressed Sparse Row graph snapshots.
//!
//! The paper stores each graph snapshot in CSR (§3.3.1): `Offset_Array`
//! records, per vertex, the begin/end offsets of its outgoing neighbors in
//! `Neighbor_Array`. [`Csr`] is exactly that pair plus a parallel weight
//! array. The address layout of these arrays is what the simulator maps into
//! its address space, so the field order here is load-bearing for the memory
//! model.

use crate::types::{Edge, EdgeCount, VertexCount, VertexId, Weight};

/// An immutable CSR snapshot of a directed, weighted graph.
///
/// Built from an edge list via [`Csr::from_edges`] or materialized from a
/// [`crate::streaming::StreamingGraph`]. Neighbor lists are sorted by
/// destination id, which the paper's depth-first traversal relies on for
/// deterministic visit order.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`weights` for vertex `v`.
    offsets: Vec<u64>,
    /// Outgoing neighbor ids, grouped by source and sorted within a group.
    neighbors: Vec<VertexId>,
    /// Weight of the edge to the neighbor at the same index.
    weights: Vec<Weight>,
}

impl Csr {
    /// Builds a CSR from `vertex_count` and an edge list.
    ///
    /// Duplicate `(src, dst)` pairs are kept (multigraph semantics are left
    /// to the caller; [`crate::streaming::StreamingGraph`] deduplicates).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint id is `>= vertex_count`.
    #[must_use]
    pub fn from_edges(vertex_count: VertexCount, edges: &[Edge]) -> Self {
        let mut degrees = vec![0u64; vertex_count];
        for e in edges {
            assert!(
                (e.src as usize) < vertex_count && (e.dst as usize) < vertex_count,
                "edge ({}, {}) out of bounds for {vertex_count} vertices",
                e.src,
                e.dst
            );
            degrees[e.src as usize] += 1;
        }
        let mut offsets = vec![0u64; vertex_count + 1];
        for v in 0..vertex_count {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let mut neighbors = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0.0 as Weight; edges.len()];
        let mut cursor = offsets.clone();
        for e in edges {
            let at = cursor[e.src as usize] as usize;
            neighbors[at] = e.dst;
            weights[at] = e.weight;
            cursor[e.src as usize] += 1;
        }
        // Sort each neighbor run by destination id for deterministic
        // traversal order.
        let mut csr = Self { offsets, neighbors, weights };
        csr.sort_neighbor_runs();
        csr
    }

    fn sort_neighbor_runs(&mut self) {
        for v in 0..self.vertex_count() {
            let (lo, hi) = self.neighbor_range(v as VertexId);
            let mut run: Vec<(VertexId, Weight)> =
                (lo..hi).map(|i| (self.neighbors[i], self.weights[i])).collect();
            run.sort_by_key(|&(n, _)| n);
            for (k, (n, w)) in run.into_iter().enumerate() {
                self.neighbors[lo + k] = n;
                self.weights[lo + k] = w;
            }
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> VertexCount {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> EdgeCount {
        self.neighbors.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        let (lo, hi) = self.neighbor_range(v);
        hi - lo
    }

    /// Begin/end index of `v`'s neighbor run (the paper's
    /// `Offset_Array[v]` / `Offset_Array[v+1]` pair).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn neighbor_range(&self, v: VertexId) -> (usize, usize) {
        let v = v as usize;
        (self.offsets[v] as usize, self.offsets[v + 1] as usize)
    }

    /// Outgoing neighbors of `v`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = self.neighbor_range(v);
        &self.neighbors[lo..hi]
    }

    /// Weights parallel to [`Csr::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        let (lo, hi) = self.neighbor_range(v);
        &self.weights[lo..hi]
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) = self.neighbor_range(v);
        self.neighbors[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// The neighbor/weight stored at flat edge index `i` (used by the
    /// simulator to translate edge indexes into `Neighbor_Array` addresses).
    ///
    /// # Panics
    ///
    /// Panics if `i >= edge_count()`.
    #[must_use]
    pub fn edge_at(&self, i: usize) -> (VertexId, Weight) {
        (self.neighbors[i], self.weights[i])
    }

    /// Iterates all edges as [`Edge`] values.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.vertex_count() as VertexId)
            .flat_map(move |v| self.out_edges(v).map(move |(n, w)| Edge::new(v, n, w)))
    }

    /// Returns the transposed graph (every edge reversed). Monotonic
    /// deletion handling gathers over incoming edges, which needs this.
    #[must_use]
    pub fn transpose(&self) -> Csr {
        let edges: Vec<Edge> = self.iter_edges().map(Edge::reversed).collect();
        Csr::from_edges(self.vertex_count(), &edges)
    }

    /// Raw offsets array.
    ///
    /// **CSR-only fast path** — this leaks the flat `Offset_Array` layout
    /// of this backend. No in-tree caller remains (the simulator sizes its
    /// regions from counts, not from these slices); it is kept only for
    /// layout-aware external tooling. Storage-agnostic code must go
    /// through [`crate::store::GraphStore`] iteration instead; other
    /// backends (e.g. [`crate::hybrid::HybridStore`]) have no such array.
    #[must_use]
    pub fn offsets_raw(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw neighbors array.
    ///
    /// **CSR-only fast path** — leaks the flat `Neighbor_Array` layout,
    /// same caveat as [`Csr::offsets_raw`]: no in-tree caller remains, and
    /// storage-agnostic callers must use [`crate::store::GraphStore`]
    /// iteration ([`Csr::neighbors`] / [`Csr::out_edges`] for indexed
    /// access within this backend).
    #[must_use]
    pub fn neighbors_raw(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Average out-degree.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.vertex_count() as f64
        }
    }

    /// Approximate diameter via double-sweep BFS over the *undirected* view
    /// of the graph, starting from the highest-degree vertex (standard
    /// lower-bound heuristic; used only for the Table 2 dataset statistics,
    /// which SNAP also reports on the undirected view).
    #[must_use]
    pub fn approximate_diameter(&self) -> usize {
        if self.vertex_count() == 0 || self.edge_count() == 0 {
            return 0;
        }
        let transpose = self.transpose();
        let start = (0..self.vertex_count() as VertexId)
            .max_by_key(|&v| self.degree(v) + transpose.degree(v))
            .unwrap_or(0);
        let (far, _) = self.bfs_farthest_undirected(&transpose, start);
        let (_, dist) = self.bfs_farthest_undirected(&transpose, far);
        dist
    }

    fn bfs_farthest_undirected(&self, transpose: &Csr, start: VertexId) -> (VertexId, usize) {
        let mut dist = vec![usize::MAX; self.vertex_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[start as usize] = 0;
        queue.push_back(start);
        let mut far = (start, 0usize);
        while let Some(v) = queue.pop_front() {
            let d = dist[v as usize];
            if d > far.1 {
                far = (v, d);
            }
            for n in self.neighbors(v).iter().chain(transpose.neighbors(v)) {
                if dist[*n as usize] == usize::MAX {
                    dist[*n as usize] = d + 1;
                    queue.push_back(*n);
                }
            }
        }
        far
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(
            4,
            &[
                Edge::new(0, 2, 2.0),
                Edge::new(0, 1, 1.0),
                Edge::new(1, 3, 3.0),
                Edge::new(2, 3, 4.0),
            ],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn neighbor_runs_are_sorted() {
        let g = diamond();
        assert_eq!(g.neighbors(0), &[1, 2]);
        // Weights move with their neighbor during the sort.
        assert_eq!(g.weights(0), &[1.0, 2.0]);
    }

    #[test]
    fn out_edges_pairs_neighbors_with_weights() {
        let g = diamond();
        let pairs: Vec<_> = g.out_edges(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.edge_count(), g.edge_count());
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        // Transposing twice recovers the original.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn iter_edges_roundtrip() {
        let g = diamond();
        let edges: Vec<Edge> = g.iter_edges().collect();
        let rebuilt = Csr::from_edges(4, &edges);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.approximate_diameter(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = Csr::from_edges(2, &[Edge::new(0, 5, 1.0)]);
    }

    #[test]
    fn diameter_of_path_graph() {
        let edges: Vec<Edge> = (0..9).map(|i| Edge::new(i, i + 1, 1.0)).collect();
        let g = Csr::from_edges(10, &edges);
        assert_eq!(g.approximate_diameter(), 9);
    }

    #[test]
    fn edge_at_flat_indexing() {
        let g = diamond();
        let (lo, _) = g.neighbor_range(1);
        assert_eq!(g.edge_at(lo), (3, 3.0));
    }
}
