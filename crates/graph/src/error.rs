//! Crate-wide error umbrella.
//!
//! The substrate's fallible operations each have a focused error type —
//! [`LoadError`](crate::io::LoadError) for edge-list files,
//! [`BatchError`](crate::update::BatchError) for update-batch validation,
//! [`ApplyError`](crate::streaming::ApplyError) for applying batches to a
//! [`StreamingGraph`](crate::streaming::StreamingGraph). [`GraphError`]
//! unifies them so higher layers (the engine harness, the sweep runner) can
//! carry "something in the graph layer failed" as one typed value.

use std::error::Error;
use std::fmt;

use crate::io::LoadError;
use crate::streaming::ApplyError;
use crate::update::BatchError;

/// Any error produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// Loading or parsing an edge-list file failed.
    Load(LoadError),
    /// An update batch failed validation.
    Batch(BatchError),
    /// Applying a batch (or bulk-inserting edges) failed.
    Apply(ApplyError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Load(e) => write!(f, "edge-list load failed: {e}"),
            GraphError::Batch(e) => write!(f, "update batch invalid: {e}"),
            GraphError::Apply(e) => write!(f, "batch application failed: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Load(e) => Some(e),
            GraphError::Batch(e) => Some(e),
            GraphError::Apply(e) => Some(e),
        }
    }
}

impl From<LoadError> for GraphError {
    fn from(e: LoadError) -> Self {
        GraphError::Load(e)
    }
}

impl From<BatchError> for GraphError {
    fn from(e: BatchError) -> Self {
        GraphError::Batch(e)
    }
}

impl From<ApplyError> for GraphError {
    fn from(e: ApplyError) -> Self {
        GraphError::Apply(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: GraphError = ApplyError::MissingEdge { src: 1, dst: 2 }.into();
        assert!(matches!(e, GraphError::Apply(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("absent edge"));

        let e: GraphError = BatchError::SelfLoop { vertex: 7 }.into();
        assert!(e.to_string().contains("self-loop"));

        let e: GraphError = LoadError::Parse { line: 3, content: "x".into() }.into();
        assert!(e.to_string().contains("line 3"));
    }
}
