//! GraphTango-style degree-adaptive hybrid adjacency store.
//!
//! [`HybridStore`] keeps each vertex's adjacency in one of three tiers
//! sized by its current degree (GraphTango, PAPERS.md):
//!
//! * **Inline** (`degree ≤ 4`): neighbors live inside the per-vertex row
//!   header — one cache line holds the tag, the length, and the
//!   payload, so low-degree updates touch a single line.
//! * **Linear** (`4 < degree ≤ 16`): a growable buffer scanned
//!   sequentially; medium-degree rows stay cheap to walk and append to.
//! * **Indexed** (`degree > 16`): the same linear buffer plus an
//!   open-addressed hash index `dst → buffer position` (multiply hash,
//!   linear probing, backward-shift deletion, grown at ~0.7 load), so
//!   containment and deletion on high-degree rows are O(1) probes
//!   instead of O(degree) scans.
//!
//! Tier transitions apply **hysteresis** — promote at `> 4` / `> 16`,
//! demote at `≤ 2` / `< 8` — so a row oscillating around a boundary does
//! not thrash between representations.
//!
//! # Order contract
//!
//! Every tier stores the neighbor payload in *push / swap-remove buffer
//! order*, exactly like [`StreamingGraph`]'s `Vec` rows, and every tier
//! transition preserves that order (the index tier indexes the buffer,
//! it does not replace it). Given the same operation sequence the two
//! stores therefore report byte-identical [`GraphStore::edges_vec`]
//! orders — which the seeded `BatchComposer` samples deletions from —
//! and byte-identical [`Csr`] snapshots. This is the property that
//! makes CSR-vs-hybrid runs agree on every algorithm fixpoint, and the
//! equivalence property suite asserts it directly.
//!
//! [`StreamingGraph`]: crate::streaming::StreamingGraph
//! [`GraphStore::edges_vec`]: crate::store::GraphStore::edges_vec
//! [`Csr`]: crate::csr::Csr

use crate::csr::Csr;
use crate::quarantine::{QuarantineReason, QuarantineReport};
use crate::store::{
    GraphStore, StorageKind, StorageRegion, StorageStats, StorageTouch, TOUCH_ROW_STRIDE,
};
use crate::streaming::{AppliedBatch, ApplyError};
use crate::types::{Edge, EdgeCount, VertexCount, VertexId, Weight};
use crate::update::{UpdateBatch, UpdateKind};

/// Inline-tier capacity: rows at or below this degree live in the header.
pub const TIER_INLINE_CAP: usize = 4;
/// Promote linear → indexed when the degree exceeds this.
pub const TIER_HASH_PROMOTE: usize = 16;
/// Demote indexed → linear when the degree falls below this (hysteresis:
/// strictly less than the promotion threshold).
pub const TIER_HASH_DEMOTE: usize = 8;
/// Demote linear → inline when the degree falls to this or below
/// (hysteresis: strictly less than the inline capacity).
pub const TIER_INLINE_DEMOTE: usize = 2;

/// Synthetic per-vertex address stride for buffer-slot touches (see
/// [`TOUCH_ROW_STRIDE`]).
const ROW_STRIDE: u64 = TOUCH_ROW_STRIDE;

/// Open-addressed `dst → buffer position` index of one high-degree row.
///
/// Power-of-two capacity, multiply hashing, linear probing, and
/// backward-shift deletion (no tombstones, so probe chains never decay).
#[derive(Debug, Clone)]
struct HashIndex {
    /// `EMPTY`, or `(dst << 32) | position`.
    slots: Vec<u64>,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

impl HashIndex {
    /// An index sized for `len` entries at below ~0.5 load.
    fn with_capacity_for(len: usize) -> Self {
        let cap = (len.max(4) * 2).next_power_of_two();
        Self { slots: vec![EMPTY; cap], len: 0 }
    }

    fn home(&self, dst: VertexId) -> usize {
        let h = (u64::from(dst) ^ 0x9E37_79B9).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.slots.len() - 1)
    }

    /// The buffer position of `dst`, with the probe path (slots examined)
    /// appended to `probes` when requested.
    fn get(&self, dst: VertexId, probes: Option<&mut Vec<usize>>) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(dst);
        let mut path = probes;
        loop {
            if let Some(p) = path.as_deref_mut() {
                p.push(i);
            }
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if (s >> 32) as u32 == dst {
                return Some((s & 0xFFFF_FFFF) as usize);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a fresh `dst → pos` mapping (caller guarantees absence).
    fn insert(&mut self, dst: VertexId, pos: usize) {
        if self.len * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(dst);
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = (u64::from(dst) << 32) | pos as u64;
        self.len += 1;
    }

    /// Rewrites the buffer position of an existing entry.
    fn update_pos(&mut self, dst: VertexId, pos: usize) {
        let mask = self.slots.len() - 1;
        let mut i = self.home(dst);
        loop {
            let s = self.slots[i];
            debug_assert!(s != EMPTY, "update_pos of absent dst {dst}");
            if s != EMPTY && (s >> 32) as u32 == dst {
                self.slots[i] = (u64::from(dst) << 32) | pos as u64;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `dst`, returning its buffer position. Backward-shift: the
    /// cluster after the hole is compacted so lookups never need
    /// tombstones.
    fn remove(&mut self, dst: VertexId) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = self.home(dst);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if (s >> 32) as u32 == dst {
                break;
            }
            i = (i + 1) & mask;
        }
        let pos = (self.slots[i] & 0xFFFF_FFFF) as usize;
        let mut hole = i;
        let mut next = (hole + 1) & mask;
        while self.slots[next] != EMPTY {
            let d = (self.slots[next] >> 32) as u32;
            let dist = next.wrapping_sub(self.home(d)) & mask;
            let gap = next.wrapping_sub(hole) & mask;
            if dist >= gap {
                self.slots[hole] = self.slots[next];
                hole = next;
            }
            next = (next + 1) & mask;
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
        Some(pos)
    }

    fn grow(&mut self) {
        let doubled = vec![EMPTY; self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        self.len = 0;
        for s in old {
            if s != EMPTY {
                self.insert((s >> 32) as u32, (s & 0xFFFF_FFFF) as usize);
            }
        }
    }
}

/// One vertex's adjacency, in its current tier.
#[derive(Debug, Clone)]
enum Row {
    /// `degree ≤ TIER_INLINE_CAP`: payload inside the header.
    Inline { len: u8, slots: [(VertexId, Weight); TIER_INLINE_CAP] },
    /// Medium degree: a growable, sequentially scanned buffer.
    Linear(Vec<(VertexId, Weight)>),
    /// High degree: the buffer plus a hash index over it.
    Indexed { edges: Vec<(VertexId, Weight)>, index: HashIndex },
}

impl Default for Row {
    fn default() -> Self {
        Row::Inline { len: 0, slots: [(0, 0.0); TIER_INLINE_CAP] }
    }
}

impl Row {
    fn len(&self) -> usize {
        match self {
            Row::Inline { len, .. } => *len as usize,
            Row::Linear(v) => v.len(),
            Row::Indexed { edges, .. } => edges.len(),
        }
    }

    #[cfg(test)]
    fn tier(&self) -> usize {
        match self {
            Row::Inline { .. } => 0,
            Row::Linear(_) => 1,
            Row::Indexed { .. } => 2,
        }
    }

    fn get(&self, pos: usize) -> (VertexId, Weight) {
        match self {
            Row::Inline { slots, .. } => slots[pos],
            Row::Linear(v) => v[pos],
            Row::Indexed { edges, .. } => edges[pos],
        }
    }
}

/// The degree-adaptive hybrid store (see the module docs for the tier
/// model and the order contract).
#[derive(Debug, Clone, Default)]
pub struct HybridStore {
    rows: Vec<Row>,
    edge_count: EdgeCount,
    promotions: u64,
    demotions: u64,
    /// Vertices per tier, maintained incrementally.
    tier_counts: [u64; 3],
    /// `Some` when update-touch tracing is enabled.
    trace: Option<Vec<StorageTouch>>,
}

impl HybridStore {
    /// Creates an empty store with `vertex_count` vertices (all inline).
    #[must_use]
    pub fn with_capacity(vertex_count: VertexCount) -> Self {
        Self {
            rows: vec![Row::default(); vertex_count],
            edge_count: 0,
            promotions: 0,
            demotions: 0,
            tier_counts: [vertex_count as u64, 0, 0],
            trace: None,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> VertexCount {
        self.rows.len()
    }

    /// Number of directed edges currently present.
    #[must_use]
    pub fn edge_count(&self) -> EdgeCount {
        self.edge_count
    }

    fn check_bounds(&self, v: VertexId) -> Result<(), ApplyError> {
        if (v as usize) < self.rows.len() {
            Ok(())
        } else {
            Err(ApplyError::VertexOutOfBounds { vertex: v, vertex_count: self.rows.len() })
        }
    }

    fn touch(&mut self, vertex: VertexId, region: StorageRegion, index: u64, is_write: bool) {
        if let Some(trace) = &mut self.trace {
            trace.push(StorageTouch { vertex, region, index, is_write });
        }
    }

    fn touch_slot(&mut self, vertex: VertexId, pos: usize, is_write: bool) {
        let index = u64::from(vertex) * ROW_STRIDE + pos as u64;
        self.touch(vertex, StorageRegion::NeighborSlot, index, is_write);
        self.touch(vertex, StorageRegion::WeightSlot, index, is_write);
    }

    /// The buffer position of `dst` in `src`'s row, recording the probe
    /// work when tracing. Inline rows charge only the header line (the
    /// payload shares it); linear rows charge one slot read per scanned
    /// position; indexed rows charge the hash probe path.
    fn find(&mut self, src: VertexId, dst: VertexId) -> Option<usize> {
        self.touch(src, StorageRegion::RowHeader, u64::from(src), false);
        let tracing = self.trace.is_some();
        match &self.rows[src as usize] {
            Row::Inline { len, slots } => (0..*len as usize).find(|&i| slots[i].0 == dst),
            Row::Linear(v) => {
                let scanned = v.iter().position(|&(n, _)| n == dst);
                if tracing {
                    let upto = scanned.map_or(v.len(), |p| p + 1);
                    for pos in 0..upto {
                        let index = u64::from(src) * ROW_STRIDE + pos as u64;
                        self.touch(src, StorageRegion::NeighborSlot, index, false);
                    }
                }
                scanned
            }
            Row::Indexed { index, .. } => {
                if tracing {
                    let mut probes = Vec::new();
                    let found = index.get(dst, Some(&mut probes));
                    for slot in probes {
                        let addr = u64::from(src) * ROW_STRIDE + slot as u64;
                        self.touch(src, StorageRegion::HashSlot, addr, false);
                    }
                    found
                } else {
                    index.get(dst, None)
                }
            }
        }
    }

    /// Whether edge `(src, dst)` is present.
    #[must_use]
    pub fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// The weight of edge `(src, dst)`, when present.
    #[must_use]
    pub fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        let row = self.rows.get(src as usize)?;
        let pos = match row {
            Row::Inline { len, slots } => {
                slots[..*len as usize].iter().position(|&(n, _)| n == dst)?
            }
            Row::Linear(v) => v.iter().position(|&(n, _)| n == dst)?,
            Row::Indexed { index, .. } => index.get(dst, None)?,
        };
        Some(row.get(pos).1)
    }

    /// Out-degree of `v` (0 for out-of-range ids).
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        self.rows.get(v as usize).map_or(0, Row::len)
    }

    /// Grows the vertex set so `vertex` is addressable.
    pub fn ensure_vertex(&mut self, vertex: VertexId) {
        if (vertex as usize) >= self.rows.len() {
            let grow = vertex as usize + 1 - self.rows.len();
            self.rows.resize_with(vertex as usize + 1, Row::default);
            self.tier_counts[0] += grow as u64;
        }
    }

    fn note_transition(&mut self, from: usize, to: usize, promoted: bool) {
        self.tier_counts[from] -= 1;
        self.tier_counts[to] += 1;
        if promoted {
            self.promotions += 1;
        } else {
            self.demotions += 1;
        }
    }

    /// Inserts or overwrites; returns the previous weight if the edge
    /// already existed. Mirrors `StreamingGraph::insert_edge_unchecked`
    /// exactly (append at the end on fresh insert).
    pub(crate) fn insert_edge(&mut self, e: Edge) -> Option<Weight> {
        if let Some(pos) = self.find(e.src, e.dst) {
            let old = match &mut self.rows[e.src as usize] {
                Row::Inline { slots, .. } => {
                    let old = slots[pos].1;
                    slots[pos].1 = e.weight;
                    old
                }
                Row::Linear(v) => {
                    let old = v[pos].1;
                    v[pos].1 = e.weight;
                    old
                }
                Row::Indexed { edges, .. } => {
                    let old = edges[pos].1;
                    edges[pos].1 = e.weight;
                    old
                }
            };
            self.touch_slot(e.src, pos, true);
            return Some(old);
        }
        // Fresh insert: append, promoting the tier when the new length
        // exceeds its capacity threshold.
        let row = &mut self.rows[e.src as usize];
        let mut transition: Option<(usize, usize)> = None;
        let appended_at = match row {
            Row::Inline { len, slots } => {
                if (*len as usize) < TIER_INLINE_CAP {
                    slots[*len as usize] = (e.dst, e.weight);
                    *len += 1;
                    *len as usize - 1
                } else {
                    // Inline → linear, preserving slot order.
                    let mut v: Vec<(VertexId, Weight)> = slots[..].to_vec();
                    v.push((e.dst, e.weight));
                    let at = v.len() - 1;
                    *row = Row::Linear(v);
                    transition = Some((0, 1));
                    at
                }
            }
            Row::Linear(v) => {
                v.push((e.dst, e.weight));
                let at = v.len() - 1;
                if v.len() > TIER_HASH_PROMOTE {
                    // Linear → indexed: build the index over the buffer
                    // as-is; the buffer (and its order) is untouched.
                    let mut index = HashIndex::with_capacity_for(v.len());
                    for (pos, &(n, _)) in v.iter().enumerate() {
                        index.insert(n, pos);
                    }
                    let edges = std::mem::take(v);
                    *row = Row::Indexed { edges, index };
                    transition = Some((1, 2));
                }
                at
            }
            Row::Indexed { edges, index } => {
                edges.push((e.dst, e.weight));
                index.insert(e.dst, edges.len() - 1);
                edges.len() - 1
            }
        };
        if let Some((from, to)) = transition {
            self.note_transition(from, to, true);
        }
        self.touch_slot(e.src, appended_at, true);
        self.touch(e.src, StorageRegion::RowHeader, u64::from(e.src), true);
        self.edge_count += 1;
        None
    }

    /// Removes `(src, dst)` via swap-remove (identical buffer reordering
    /// to `StreamingGraph::remove_edge_unchecked`), demoting the tier
    /// when the new length falls below its hysteresis threshold.
    fn remove_edge(&mut self, src: VertexId, dst: VertexId) -> Option<Weight> {
        let pos = self.find(src, dst)?;
        let row = &mut self.rows[src as usize];
        let mut transition: Option<(usize, usize)> = None;
        let (weight, moved_from) = match row {
            Row::Inline { len, slots } => {
                let w = slots[pos].1;
                let last = *len as usize - 1;
                slots[pos] = slots[last];
                *len -= 1;
                (w, last)
            }
            Row::Linear(v) => {
                let (_, w) = v.swap_remove(pos);
                let moved_from = v.len();
                if v.len() <= TIER_INLINE_DEMOTE {
                    let mut slots = [(0, 0.0); TIER_INLINE_CAP];
                    for (i, &e) in v.iter().enumerate() {
                        slots[i] = e;
                    }
                    let len = v.len() as u8;
                    *row = Row::Inline { len, slots };
                    transition = Some((1, 0));
                }
                (w, moved_from)
            }
            Row::Indexed { edges, index } => {
                index.remove(dst);
                let (_, w) = edges.swap_remove(pos);
                if pos < edges.len() {
                    // The former last element moved into `pos`; re-point
                    // its index entry.
                    index.update_pos(edges[pos].0, pos);
                }
                let moved_from = edges.len();
                if edges.len() < TIER_HASH_DEMOTE {
                    let v = std::mem::take(edges);
                    *row = Row::Linear(v);
                    transition = Some((2, 1));
                }
                (w, moved_from)
            }
        };
        if let Some((from, to)) = transition {
            self.note_transition(from, to, false);
        }
        // The swap-remove reads the last slot and writes the hole.
        if moved_from != pos {
            self.touch_slot(src, moved_from, false);
        }
        self.touch_slot(src, pos, true);
        self.touch(src, StorageRegion::RowHeader, u64::from(src), true);
        self.edge_count -= 1;
        Some(weight)
    }

    /// Inserts edges in bulk; same contract as
    /// [`crate::streaming::StreamingGraph::insert_edges`] (bounds check
    /// before the self-loop skip).
    ///
    /// # Errors
    ///
    /// [`ApplyError::VertexOutOfBounds`] for out-of-range endpoints.
    pub fn insert_edges<I: IntoIterator<Item = Edge>>(
        &mut self,
        edges: I,
    ) -> Result<(), ApplyError> {
        for e in edges {
            self.check_bounds(e.src)?;
            self.check_bounds(e.dst)?;
            if e.is_self_loop() {
                continue;
            }
            self.insert_edge(e);
        }
        Ok(())
    }

    /// Applies a validated batch atomically; same contract as
    /// [`crate::streaming::StreamingGraph::apply_batch`].
    ///
    /// # Errors
    ///
    /// [`ApplyError::VertexOutOfBounds`] or [`ApplyError::MissingEdge`];
    /// on error the store is unchanged.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError> {
        for u in batch.updates() {
            self.check_bounds(u.src)?;
            self.check_bounds(u.dst)?;
            if u.kind == UpdateKind::Deletion && !self.contains_edge(u.src, u.dst) {
                return Err(ApplyError::MissingEdge { src: u.src, dst: u.dst });
            }
        }
        let mut applied = AppliedBatch::default();
        for u in batch.updates() {
            match u.kind {
                UpdateKind::Addition => {
                    match self.insert_edge(u.edge()) {
                        None => applied.added.push(u.edge()),
                        Some(old) => applied.reweighted.push((u.edge(), old)),
                    }
                    applied.affected.push(u.dst);
                }
                UpdateKind::Deletion => {
                    let w = self.remove_edge(u.src, u.dst);
                    debug_assert!(w.is_some(), "deletion validated as present above");
                    if let Some(w) = w {
                        applied.deleted.push(Edge::new(u.src, u.dst, w));
                        applied.affected.push(u.dst);
                    }
                }
            }
        }
        applied.affected.sort_unstable();
        applied.affected.dedup();
        Ok(applied)
    }

    /// Applies a batch leniently; same contract (same skipped records,
    /// same reasons, same detail strings) as
    /// [`crate::streaming::StreamingGraph::apply_batch_lenient`].
    pub fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch {
        let mut applied = AppliedBatch::default();
        for u in batch.updates() {
            if self.check_bounds(u.src).is_err() || self.check_bounds(u.dst).is_err() {
                quarantine.record(
                    QuarantineReason::VertexOutOfBounds,
                    None,
                    &format!("({}, {})", u.src, u.dst),
                );
                continue;
            }
            match u.kind {
                UpdateKind::Addition => {
                    match self.insert_edge(u.edge()) {
                        None => applied.added.push(u.edge()),
                        Some(old) => applied.reweighted.push((u.edge(), old)),
                    }
                    applied.affected.push(u.dst);
                }
                UpdateKind::Deletion => match self.remove_edge(u.src, u.dst) {
                    Some(w) => {
                        applied.deleted.push(Edge::new(u.src, u.dst, w));
                        applied.affected.push(u.dst);
                    }
                    None => {
                        quarantine.record(
                            QuarantineReason::AbsentDeletion,
                            None,
                            &format!("({}, {})", u.src, u.dst),
                        );
                    }
                },
            }
        }
        applied.affected.sort_unstable();
        applied.affected.dedup();
        applied
    }

    /// Materializes an immutable CSR snapshot of the current graph.
    #[must_use]
    pub fn snapshot(&self) -> Csr {
        let edges: Vec<Edge> = self.iter_edges().collect();
        Csr::from_edges(self.vertex_count(), &edges)
    }

    /// Iterates all currently present edges, row-major in buffer order.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.rows.iter().enumerate().flat_map(|(v, row)| {
            (0..row.len()).map(move |pos| {
                let (n, w) = row.get(pos);
                Edge::new(v as VertexId, n, w)
            })
        })
    }

    /// All present edges as a vector, row-major in buffer order.
    #[must_use]
    pub fn edges_vec(&self) -> Vec<Edge> {
        self.iter_edges().collect()
    }

    /// Tier occupancy and transition counters.
    #[must_use]
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            inline_vertices: self.tier_counts[0],
            linear_vertices: self.tier_counts[1],
            indexed_vertices: self.tier_counts[2],
            promotions: self.promotions,
            demotions: self.demotions,
        }
    }
}

impl GraphStore for HybridStore {
    fn kind(&self) -> StorageKind {
        StorageKind::Hybrid
    }

    fn num_vertices(&self) -> VertexCount {
        self.vertex_count()
    }

    fn num_edges(&self) -> EdgeCount {
        self.edge_count()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degree(v)
    }

    fn contains_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.contains_edge(src, dst)
    }

    fn edge_weight(&self, src: VertexId, dst: VertexId) -> Option<Weight> {
        self.edge_weight(src, dst)
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId, Weight)) {
        if let Some(row) = self.rows.get(v as usize) {
            for pos in 0..row.len() {
                let (n, w) = row.get(pos);
                f(n, w);
            }
        }
    }

    fn ensure_vertex(&mut self, vertex: VertexId) {
        self.ensure_vertex(vertex);
    }

    fn insert_edges(&mut self, edges: &[Edge]) -> Result<(), ApplyError> {
        HybridStore::insert_edges(self, edges.iter().copied())
    }

    fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<AppliedBatch, ApplyError> {
        HybridStore::apply_batch(self, batch)
    }

    fn apply_batch_lenient(
        &mut self,
        batch: &UpdateBatch,
        quarantine: &mut QuarantineReport,
    ) -> AppliedBatch {
        HybridStore::apply_batch_lenient(self, batch, quarantine)
    }

    fn snapshot(&self) -> Csr {
        HybridStore::snapshot(self)
    }

    fn edges_vec(&self) -> Vec<Edge> {
        HybridStore::edges_vec(self)
    }

    fn stats(&self) -> StorageStats {
        HybridStore::stats(self)
    }

    fn set_touch_tracing(&mut self, enabled: bool) {
        if enabled {
            self.trace.get_or_insert_with(Vec::new);
        } else {
            self.trace = None;
        }
    }

    fn take_update_touches(&mut self) -> Vec<StorageTouch> {
        match &mut self.trace {
            Some(trace) => std::mem::take(trace),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingGraph;
    use crate::update::EdgeUpdate;

    /// Applies the same operations to both stores and asserts every
    /// observable surface agrees — including the buffer order.
    fn assert_equivalent(hybrid: &HybridStore, reference: &StreamingGraph) {
        assert_eq!(hybrid.vertex_count(), reference.vertex_count());
        assert_eq!(hybrid.edge_count(), reference.edge_count());
        assert_eq!(hybrid.edges_vec(), reference.edges_vec(), "buffer order must match");
        assert_eq!(hybrid.snapshot(), reference.snapshot());
        for v in 0..reference.vertex_count() as VertexId {
            assert_eq!(hybrid.degree(v), reference.degree(v), "degree of {v}");
        }
    }

    fn star_edges(center: VertexId, n: usize) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(center, center + 1 + i as VertexId, i as f32 + 1.0)).collect()
    }

    #[test]
    fn rows_promote_through_all_tiers_and_demote_back() {
        let n = TIER_HASH_PROMOTE + 8;
        let mut h = HybridStore::with_capacity(n + 2);
        let mut g = StreamingGraph::with_capacity(n + 2);
        // Grow one row through inline → linear → indexed.
        for (i, e) in star_edges(0, n).into_iter().enumerate() {
            h.insert_edge(e);
            g.insert_edges([e]).unwrap();
            let degree = i + 1;
            let want_tier = if degree <= TIER_INLINE_CAP {
                0
            } else if degree <= TIER_HASH_PROMOTE {
                1
            } else {
                2
            };
            assert_eq!(h.rows[0].tier(), want_tier, "after {} inserts", i + 1);
            assert_equivalent(&h, &g);
        }
        assert_eq!(h.stats().promotions, 2);
        assert_eq!(h.stats().indexed_vertices, 1);
        // Shrink it back down; hysteresis demotes at < 8 and ≤ 2.
        let dsts: Vec<VertexId> = h.edges_vec().iter().map(|e| e.dst).collect();
        for (removed, dst) in dsts.into_iter().enumerate() {
            assert!(h.remove_edge(0, dst).is_some());
            let batch = UpdateBatch::from_updates(vec![EdgeUpdate::deletion(0, dst)]).unwrap();
            g.apply_batch(&batch).unwrap();
            let left = n - removed - 1;
            let want_tier = if left >= TIER_HASH_DEMOTE {
                2
            } else if left > TIER_INLINE_DEMOTE {
                1
            } else {
                0
            };
            assert_eq!(h.rows[0].tier(), want_tier, "with {left} edges left");
            assert_equivalent(&h, &g);
        }
        assert_eq!(h.stats().demotions, 2);
        assert_eq!(h.stats().inline_vertices, h.vertex_count() as u64);
    }

    #[test]
    fn apply_batch_matches_streaming_graph_exactly() {
        let mut h = HybridStore::with_capacity(8);
        let mut g = StreamingGraph::with_capacity(8);
        let initial = [Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0), Edge::new(2, 3, 3.0)];
        h.insert_edges(initial).unwrap();
        g.insert_edges(initial).unwrap();

        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(3, 4, 2.0),
            EdgeUpdate::addition(0, 1, 9.0), // reweight
            EdgeUpdate::deletion(1, 2),
        ])
        .unwrap();
        let from_hybrid = h.apply_batch(&batch).unwrap();
        let from_graph = g.apply_batch(&batch).unwrap();
        assert_eq!(from_hybrid, from_graph);
        assert_equivalent(&h, &g);
    }

    #[test]
    fn strict_apply_is_atomic_on_failure() {
        let mut h = HybridStore::with_capacity(4);
        h.insert_edges([Edge::new(0, 1, 1.0)]).unwrap();
        let before = h.edges_vec();
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(2, 3, 1.0),
            EdgeUpdate::deletion(3, 0), // absent
        ])
        .unwrap();
        assert_eq!(h.apply_batch(&batch).unwrap_err(), ApplyError::MissingEdge { src: 3, dst: 0 });
        assert_eq!(h.edges_vec(), before, "failed batch must not mutate the store");
    }

    #[test]
    fn lenient_apply_quarantines_like_streaming_graph() {
        let initial = [Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)];
        let batch = UpdateBatch::from_updates(vec![
            EdgeUpdate::addition(2, 3, 2.0),
            EdgeUpdate::deletion(3, 0),       // absent
            EdgeUpdate::addition(0, 99, 1.0), // out of bounds
            EdgeUpdate::deletion(1, 2),       // fine
        ])
        .unwrap();

        let mut h = HybridStore::with_capacity(6);
        h.insert_edges(initial).unwrap();
        let mut hq = QuarantineReport::new();
        let from_hybrid = h.apply_batch_lenient(&batch, &mut hq);

        let mut g = StreamingGraph::with_capacity(6);
        g.insert_edges(initial).unwrap();
        let mut gq = QuarantineReport::new();
        let from_graph = g.apply_batch_lenient(&batch, &mut gq);

        assert_eq!(from_hybrid, from_graph);
        assert_eq!(hq.total(), gq.total());
        assert_eq!(
            hq.count(QuarantineReason::VertexOutOfBounds),
            gq.count(QuarantineReason::VertexOutOfBounds)
        );
        assert_eq!(
            hq.count(QuarantineReason::AbsentDeletion),
            gq.count(QuarantineReason::AbsentDeletion)
        );
        assert_equivalent(&h, &g);
    }

    #[test]
    fn hash_index_survives_heavy_churn() {
        let mut h = HybridStore::with_capacity(512);
        let mut g = StreamingGraph::with_capacity(512);
        // Deterministic add/delete churn on one hub vertex, enough to
        // grow the index several times and exercise backward-shift
        // deletion clusters.
        let mut present: Vec<VertexId> = Vec::new();
        let mut x: u64 = 0x5DEECE66D;
        for step in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let delete = !present.is_empty() && (x >> 33).is_multiple_of(3);
            if delete {
                let at = ((x >> 20) as usize) % present.len();
                let dst = present.swap_remove(at);
                let batch = UpdateBatch::from_updates(vec![EdgeUpdate::deletion(0, dst)]).unwrap();
                h.apply_batch(&batch).unwrap();
                g.apply_batch(&batch).unwrap();
            } else {
                let dst = 1 + ((x >> 17) % 500) as VertexId;
                if !present.contains(&dst) {
                    present.push(dst);
                }
                let batch =
                    UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, dst, 1.0)]).unwrap();
                h.apply_batch(&batch).unwrap();
                g.apply_batch(&batch).unwrap();
            }
            if step % 97 == 0 {
                assert_equivalent(&h, &g);
            }
        }
        assert_equivalent(&h, &g);
        // The hub really reached the indexed tier at some point.
        assert!(h.stats().promotions >= 2, "churn must cross tier boundaries");
    }

    #[test]
    fn insert_edges_checks_bounds_before_self_loop_skip() {
        let mut h = HybridStore::with_capacity(2);
        // Same contract as StreamingGraph: an out-of-bounds self-loop is
        // a bounds error, not a silent skip.
        assert!(matches!(
            h.insert_edges([Edge::new(9, 9, 1.0)]),
            Err(ApplyError::VertexOutOfBounds { vertex: 9, .. })
        ));
        h.insert_edges([Edge::new(1, 1, 1.0)]).unwrap();
        assert_eq!(h.edge_count(), 0, "in-bounds self-loops are skipped");
    }

    #[test]
    fn touch_tracing_is_opt_in_and_drains() {
        let mut h = HybridStore::with_capacity(4);
        h.insert_edges([Edge::new(0, 1, 1.0)]).unwrap();
        assert!(h.take_update_touches().is_empty(), "tracing off by default");
        h.set_touch_tracing(true);
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 2, 1.0)]).unwrap();
        let _ = h.apply_batch(&batch).unwrap();
        let touches = h.take_update_touches();
        assert!(!touches.is_empty());
        assert!(touches.iter().all(|t| t.vertex == 0));
        assert!(h.take_update_touches().is_empty(), "drained");
        h.set_touch_tracing(false);
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 3, 1.0)]).unwrap();
        let _ = h.apply_batch(&batch).unwrap();
        assert!(h.take_update_touches().is_empty());
    }

    #[test]
    fn indexed_rows_record_hash_probes() {
        let mut h = HybridStore::with_capacity(64);
        h.insert_edges(star_edges(0, TIER_HASH_PROMOTE + 4)).unwrap();
        h.set_touch_tracing(true);
        let batch = UpdateBatch::from_updates(vec![EdgeUpdate::addition(0, 60, 1.0)]).unwrap();
        let _ = h.apply_batch(&batch).unwrap();
        let touches = h.take_update_touches();
        assert!(
            touches.iter().any(|t| t.region == StorageRegion::HashSlot),
            "indexed-tier lookups must surface hash probes, got {touches:?}"
        );
    }

    #[test]
    fn ensure_vertex_grows_inline_tier() {
        let mut h = HybridStore::with_capacity(1);
        h.ensure_vertex(10);
        assert_eq!(h.vertex_count(), 11);
        assert_eq!(h.stats().inline_vertices, 11);
        h.insert_edges([Edge::new(10, 0, 1.0)]).unwrap();
        assert!(h.contains_edge(10, 0));
    }
}
