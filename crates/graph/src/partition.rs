//! Vertex-range chunking for parallel processing over the simulated cores.
//!
//! The software layer divides the graph into chunks — contiguous vertex
//! ranges — and assigns them to cores (§3.2.1). Chunks are balanced by edge
//! count, and a deterministic work-stealing schedule models the
//! load-balancing strategy the paper cites (Blumofe & Leiserson).

use crate::csr::Csr;
use crate::types::VertexId;

/// A contiguous vertex range `[start, end)` with its edge weight (count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First vertex in the chunk.
    pub start: VertexId,
    /// One past the last vertex.
    pub end: VertexId,
    /// Number of out-edges owned by the chunk.
    pub edges: usize,
}

impl Chunk {
    /// Number of vertices in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the chunk contains no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether vertex `v` belongs to this chunk.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        (self.start..self.end).contains(&v)
    }

    /// Iterates the chunk's vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

/// Splits the graph into `target_chunks` contiguous chunks with roughly
/// equal edge counts. Returns fewer chunks when the graph is small.
///
/// # Panics
///
/// Panics if `target_chunks == 0`.
#[must_use]
pub fn partition_by_edges(graph: &Csr, target_chunks: usize) -> Vec<Chunk> {
    assert!(target_chunks > 0, "need at least one chunk");
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let total_edges = graph.edge_count();
    let per_chunk = (total_edges / target_chunks).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0 as VertexId;
    let mut acc = 0usize;
    for v in 0..n as VertexId {
        acc += graph.degree(v);
        let is_last_vertex = v as usize + 1 == n;
        if (acc >= per_chunk && chunks.len() + 1 < target_chunks) || is_last_vertex {
            chunks.push(Chunk { start, end: v + 1, edges: acc });
            start = v + 1;
            acc = 0;
        }
    }
    chunks
}

/// Finds the chunk that owns vertex `v` (chunks are sorted by range).
#[must_use]
pub fn owner_of(chunks: &[Chunk], v: VertexId) -> Option<usize> {
    chunks
        .binary_search_by(|c| {
            if v < c.start {
                std::cmp::Ordering::Greater
            } else if v >= c.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .ok()
}

/// Deterministic work-stealing schedule: chunks are dealt round-robin to
/// `cores` queues; when the per-chunk costs are known, `balance` reassigns
/// greedily (longest-processing-time-first), which is how the simulator
/// models the steady state of a work-stealing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<Vec<usize>>,
}

impl Schedule {
    /// Deals `chunk_count` chunk indexes round-robin over `cores` queues.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn round_robin(chunk_count: usize, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let mut assignments = vec![Vec::new(); cores];
        for c in 0..chunk_count {
            assignments[c % cores].push(c);
        }
        Self { assignments }
    }

    /// Builds a balanced schedule from per-chunk costs using LPT greedy
    /// assignment — the deterministic equivalent of work stealing's
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    #[must_use]
    pub fn balance(costs: &[u64], cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
        let mut load = vec![0u64; cores];
        let mut assignments = vec![Vec::new(); cores];
        for i in order {
            // `cores > 0` is asserted above, so the range is never empty.
            let core = (0..cores).min_by_key(|&c| (load[c], c)).unwrap_or(0);
            load[core] += costs[i];
            assignments[core].push(i);
        }
        Self { assignments }
    }

    /// The chunk indexes queued on `core`.
    #[must_use]
    pub fn chunks_for(&self, core: usize) -> &[usize] {
        &self.assignments[core]
    }

    /// Number of cores in the schedule.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.assignments.len()
    }

    /// Makespan under the given per-chunk costs (max summed load per core).
    #[must_use]
    pub fn makespan(&self, costs: &[u64]) -> u64 {
        self.assignments.iter().map(|q| q.iter().map(|&c| costs[c]).sum()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn star(n: usize) -> Csr {
        // Vertex 0 points to everyone: extremely unbalanced degrees.
        let edges: Vec<Edge> = (1..n as VertexId).map(|v| Edge::new(0, v, 1.0)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn chunks_cover_all_vertices_exactly_once() {
        let g = star(100);
        let chunks = partition_by_edges(&g, 8);
        let mut covered = [false; 100];
        for c in &chunks {
            for v in c.vertices() {
                assert!(!covered[v as usize], "vertex {v} in two chunks");
                covered[v as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn chunk_edges_sum_to_graph_edges() {
        let g = star(64);
        let chunks = partition_by_edges(&g, 4);
        let sum: usize = chunks.iter().map(|c| c.edges).sum();
        assert_eq!(sum, g.edge_count());
    }

    #[test]
    fn owner_of_finds_the_right_chunk() {
        let g = star(100);
        let chunks = partition_by_edges(&g, 8);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(owner_of(&chunks, c.start), Some(i));
            assert_eq!(owner_of(&chunks, c.end - 1), Some(i));
        }
        assert_eq!(owner_of(&chunks, 100), None);
    }

    #[test]
    fn empty_graph_partitions_to_nothing() {
        let g = Csr::from_edges(0, &[]);
        assert!(partition_by_edges(&g, 4).is_empty());
    }

    #[test]
    fn round_robin_deals_evenly() {
        let s = Schedule::round_robin(10, 4);
        assert_eq!(s.chunks_for(0), &[0, 4, 8]);
        assert_eq!(s.chunks_for(1), &[1, 5, 9]);
        assert_eq!(s.chunks_for(3), &[3, 7]);
    }

    #[test]
    fn balance_beats_round_robin_on_skewed_costs() {
        let costs = vec![100, 1, 1, 1, 1, 1, 1, 1];
        let rr = Schedule::round_robin(costs.len(), 4);
        let bal = Schedule::balance(&costs, 4);
        assert!(bal.makespan(&costs) <= rr.makespan(&costs));
        assert_eq!(bal.makespan(&costs), 100);
    }

    #[test]
    fn balance_assigns_every_chunk_once() {
        let costs = vec![5, 3, 8, 1, 9, 2];
        let s = Schedule::balance(&costs, 3);
        let mut all: Vec<usize> = (0..s.cores()).flat_map(|c| s.chunks_for(c).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = Schedule::round_robin(4, 0);
    }
}
