//! Vertex-range chunking for parallel processing over the simulated cores.
//!
//! The software layer divides the graph into chunks — contiguous vertex
//! ranges — and assigns them to cores (§3.2.1). Chunks are balanced by edge
//! count, and a deterministic work-stealing schedule models the
//! load-balancing strategy the paper cites (Blumofe & Leiserson).

use crate::csr::Csr;
use crate::types::VertexId;

/// A contiguous vertex range `[start, end)` with its edge weight (count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First vertex in the chunk.
    pub start: VertexId,
    /// One past the last vertex.
    pub end: VertexId,
    /// Number of out-edges owned by the chunk.
    pub edges: usize,
}

impl Chunk {
    /// Number of vertices in the chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the chunk contains no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether vertex `v` belongs to this chunk.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        (self.start..self.end).contains(&v)
    }

    /// Iterates the chunk's vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

/// Splits the graph into `target_chunks` contiguous chunks with roughly
/// equal edge counts. Returns fewer chunks when the graph is small, a
/// single chunk when `target_chunks == 0` (clamped to 1), and no chunks
/// for an empty graph.
#[must_use]
pub fn partition_by_edges(graph: &Csr, target_chunks: usize) -> Vec<Chunk> {
    let target_chunks = target_chunks.max(1);
    let n = graph.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let total_edges = graph.edge_count();
    let per_chunk = (total_edges / target_chunks).max(1);
    let mut chunks = Vec::with_capacity(target_chunks);
    let mut start = 0 as VertexId;
    let mut acc = 0usize;
    for v in 0..n as VertexId {
        acc += graph.degree(v);
        let is_last_vertex = v as usize + 1 == n;
        if (acc >= per_chunk && chunks.len() + 1 < target_chunks) || is_last_vertex {
            chunks.push(Chunk { start, end: v + 1, edges: acc });
            start = v + 1;
            acc = 0;
        }
    }
    chunks
}

/// Finds the chunk that owns vertex `v` (chunks are sorted by range).
#[must_use]
pub fn owner_of(chunks: &[Chunk], v: VertexId) -> Option<usize> {
    chunks
        .binary_search_by(|c| {
            if v < c.start {
                std::cmp::Ordering::Greater
            } else if v >= c.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .ok()
}

/// Deterministic work-stealing schedule: chunks are dealt round-robin to
/// `cores` queues; when the per-chunk costs are known, `balance` reassigns
/// greedily (longest-processing-time-first), which is how the simulator
/// models the steady state of a work-stealing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    assignments: Vec<Vec<usize>>,
}

impl Schedule {
    /// Deals `chunk_count` chunk indexes round-robin over `cores` queues.
    /// With `cores == 0` the schedule is empty; it can only carry zero
    /// chunks, so `chunk_count` must also be zero in that case.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` while `chunk_count > 0` (the chunks would
    /// silently vanish).
    #[must_use]
    pub fn round_robin(chunk_count: usize, cores: usize) -> Self {
        if cores == 0 {
            assert!(chunk_count == 0, "cannot deal {chunk_count} chunks over zero cores");
            return Self { assignments: Vec::new() };
        }
        let mut assignments = vec![Vec::new(); cores];
        for c in 0..chunk_count {
            assignments[c % cores].push(c);
        }
        Self { assignments }
    }

    /// Builds a balanced schedule from per-chunk costs using LPT greedy
    /// assignment — the deterministic equivalent of work stealing's
    /// outcome. More cores than chunks leaves the surplus cores with empty
    /// queues; with `cores == 0` the cost list must be empty.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` while `costs` is non-empty.
    #[must_use]
    pub fn balance(costs: &[u64], cores: usize) -> Self {
        if cores == 0 {
            assert!(costs.is_empty(), "cannot balance {} chunks over zero cores", costs.len());
            return Self { assignments: Vec::new() };
        }
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
        let mut load = vec![0u64; cores];
        let mut assignments = vec![Vec::new(); cores];
        for i in order {
            // `cores > 0` is asserted above, so the range is never empty.
            let core = (0..cores).min_by_key(|&c| (load[c], c)).unwrap_or(0);
            load[core] += costs[i];
            assignments[core].push(i);
        }
        Self { assignments }
    }

    /// The chunk indexes queued on `core`.
    #[must_use]
    pub fn chunks_for(&self, core: usize) -> &[usize] {
        &self.assignments[core]
    }

    /// Number of cores in the schedule.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.assignments.len()
    }

    /// Makespan under the given per-chunk costs (max summed load per core).
    #[must_use]
    pub fn makespan(&self, costs: &[u64]) -> u64 {
        self.assignments.iter().map(|q| q.iter().map(|&c| costs[c]).sum()).max().unwrap_or(0)
    }
}

/// Static assignment of simulated cores to host-side replay shards.
///
/// A sharded run splits the machine's private-cache replay across host
/// worker threads; each shard owns a fixed set of cores for the whole run
/// (the per-core cache state lives with the shard). The plan is advisory
/// load balancing only — results are byte-identical under any plan, so a
/// skewed plan costs wall-clock, never correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards[s]` = the core ids owned by shard `s`, each sorted ascending.
    shards: Vec<Vec<usize>>,
    /// `shard_of[c]` = owning shard of core `c`.
    shard_of: Vec<usize>,
}

impl ShardPlan {
    /// Deals `cores` round-robin over `shards` worker slots. `shards` is
    /// clamped to at least 1; surplus shards (more shards than cores) stay
    /// empty.
    #[must_use]
    pub fn uniform(cores: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let sched = Schedule::round_robin(cores, shards);
        Self::from_schedule(&sched, cores)
    }

    /// Balances cores over `shards` worker slots by their chunk edge
    /// weights: core `c` owns every chunk with `chunk_id % cores == c`
    /// (the dealing used by the batch context), its cost is the summed
    /// edge count of those chunks, and the shards are filled LPT-greedily
    /// ([`Schedule::balance`]). Degenerate inputs (no chunks, an empty
    /// graph, more shards than cores) all yield a valid plan.
    #[must_use]
    pub fn balanced(chunks: &[Chunk], cores: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut costs = vec![0u64; cores];
        for (i, chunk) in chunks.iter().enumerate() {
            if cores > 0 {
                costs[i % cores] += chunk.edges as u64;
            }
        }
        let sched = Schedule::balance(&costs, shards);
        Self::from_schedule(&sched, cores)
    }

    fn from_schedule(sched: &Schedule, cores: usize) -> Self {
        let mut shards: Vec<Vec<usize>> =
            (0..sched.cores()).map(|s| sched.chunks_for(s).to_vec()).collect();
        for shard in &mut shards {
            shard.sort_unstable();
        }
        let mut shard_of = vec![0usize; cores];
        for (s, owned) in shards.iter().enumerate() {
            for &c in owned {
                shard_of[c] = s;
            }
        }
        Self { shards, shard_of }
    }

    /// Number of shards (≥ 1).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of cores covered by the plan.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.shard_of.len()
    }

    /// The cores owned by shard `s`, sorted ascending.
    #[must_use]
    pub fn cores_for(&self, s: usize) -> &[usize] {
        &self.shards[s]
    }

    /// The shard owning core `c`.
    #[must_use]
    pub fn shard_of(&self, c: usize) -> usize {
        self.shard_of[c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn star(n: usize) -> Csr {
        // Vertex 0 points to everyone: extremely unbalanced degrees.
        let edges: Vec<Edge> = (1..n as VertexId).map(|v| Edge::new(0, v, 1.0)).collect();
        Csr::from_edges(n, &edges)
    }

    #[test]
    fn chunks_cover_all_vertices_exactly_once() {
        let g = star(100);
        let chunks = partition_by_edges(&g, 8);
        let mut covered = [false; 100];
        for c in &chunks {
            for v in c.vertices() {
                assert!(!covered[v as usize], "vertex {v} in two chunks");
                covered[v as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn chunk_edges_sum_to_graph_edges() {
        let g = star(64);
        let chunks = partition_by_edges(&g, 4);
        let sum: usize = chunks.iter().map(|c| c.edges).sum();
        assert_eq!(sum, g.edge_count());
    }

    #[test]
    fn owner_of_finds_the_right_chunk() {
        let g = star(100);
        let chunks = partition_by_edges(&g, 8);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(owner_of(&chunks, c.start), Some(i));
            assert_eq!(owner_of(&chunks, c.end - 1), Some(i));
        }
        assert_eq!(owner_of(&chunks, 100), None);
    }

    #[test]
    fn empty_graph_partitions_to_nothing() {
        let g = Csr::from_edges(0, &[]);
        assert!(partition_by_edges(&g, 4).is_empty());
    }

    #[test]
    fn round_robin_deals_evenly() {
        let s = Schedule::round_robin(10, 4);
        assert_eq!(s.chunks_for(0), &[0, 4, 8]);
        assert_eq!(s.chunks_for(1), &[1, 5, 9]);
        assert_eq!(s.chunks_for(3), &[3, 7]);
    }

    #[test]
    fn balance_beats_round_robin_on_skewed_costs() {
        let costs = vec![100, 1, 1, 1, 1, 1, 1, 1];
        let rr = Schedule::round_robin(costs.len(), 4);
        let bal = Schedule::balance(&costs, 4);
        assert!(bal.makespan(&costs) <= rr.makespan(&costs));
        assert_eq!(bal.makespan(&costs), 100);
    }

    #[test]
    fn balance_assigns_every_chunk_once() {
        let costs = vec![5, 3, 8, 1, 9, 2];
        let s = Schedule::balance(&costs, 3);
        let mut all: Vec<usize> = (0..s.cores()).flat_map(|c| s.chunks_for(c).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_target_chunks_clamps_to_one() {
        let g = star(32);
        let chunks = partition_by_edges(&g, 0);
        assert_eq!(chunks.len(), 1);
        assert_eq!((chunks[0].start, chunks[0].end), (0, 32));
        assert_eq!(chunks[0].edges, g.edge_count());
    }

    #[test]
    fn more_chunks_than_vertices_still_covers() {
        let g = star(3);
        let chunks = partition_by_edges(&g, 16);
        assert!(chunks.len() <= 3);
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn zero_cores_with_no_chunks_is_an_empty_schedule() {
        assert_eq!(Schedule::round_robin(0, 0).cores(), 0);
        let s = Schedule::balance(&[], 0);
        assert_eq!(s.cores(), 0);
        assert_eq!(s.makespan(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "zero cores")]
    fn zero_cores_with_chunks_panics() {
        let _ = Schedule::round_robin(4, 0);
    }

    #[test]
    fn balance_with_more_cores_than_chunks_leaves_empty_queues() {
        let s = Schedule::balance(&[10, 20], 5);
        assert_eq!(s.cores(), 5);
        let assigned: usize = (0..5).map(|c| s.chunks_for(c).len()).sum();
        assert_eq!(assigned, 2);
        assert_eq!(s.makespan(&[10, 20]), 20);
    }

    #[test]
    fn shard_plan_covers_every_core_exactly_once() {
        let g = star(100);
        let chunks = partition_by_edges(&g, 16);
        let plan = ShardPlan::balanced(&chunks, 4, 3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.cores(), 4);
        let mut all: Vec<usize> =
            (0..plan.shards()).flat_map(|s| plan.cores_for(s).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        for c in 0..4 {
            assert!(plan.cores_for(plan.shard_of(c)).contains(&c));
        }
    }

    #[test]
    fn shard_plan_degenerate_inputs() {
        // No chunks (empty graph): every core still lands on some shard.
        let plan = ShardPlan::balanced(&[], 4, 2);
        let owned: usize = (0..plan.shards()).map(|s| plan.cores_for(s).len()).sum();
        assert_eq!(owned, 4);
        // More shards than cores: surplus shards are empty but valid.
        let plan = ShardPlan::uniform(2, 8);
        assert_eq!(plan.shards(), 8);
        assert_eq!((0..8).map(|s| plan.cores_for(s).len()).sum::<usize>(), 2);
        // Zero requested shards clamps to one.
        let plan = ShardPlan::uniform(3, 0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.cores_for(0), &[0, 1, 2]);
    }

    #[test]
    fn shard_plan_balances_skewed_core_loads() {
        // Star graph: chunk 0 (vertex 0) holds nearly every edge, so core 0
        // is heavy. The heavy core must sit alone-ish: makespan well under
        // a naive half-half split is not guaranteed, but the heavy core's
        // shard must not also get every other core.
        let g = star(64);
        let chunks = partition_by_edges(&g, 8);
        let plan = ShardPlan::balanced(&chunks, 8, 2);
        let heavy = plan.shard_of(0);
        assert!(plan.cores_for(heavy).len() < 8, "heavy core must not absorb all cores");
    }
}
