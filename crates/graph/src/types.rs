//! Fundamental scalar types shared across the workspace.
//!
//! The paper stores vertex identifiers and per-vertex states as 4-byte
//! quantities (§2.2: "4 byte per vertex state"); we mirror that so the cache
//! simulator sees realistic element-per-line ratios (16 states per 64 B line).

/// Identifier of a vertex. 4 bytes, matching the paper's data layout.
pub type VertexId = u32;

/// Edge weight. 4 bytes; weighted algorithms (SSSP, Adsorption) use it,
/// unweighted ones (CC, PageRank) ignore it.
pub type Weight = f32;

/// Count of vertices in a graph.
pub type VertexCount = usize;

/// Count of edges in a graph.
pub type EdgeCount = usize;

/// A directed, weighted edge `(src, dst, weight)`.
///
/// Kept as a plain tuple-struct so edge lists are cheap to generate, sort,
/// and stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight.
    pub weight: Weight,
}

impl Edge {
    /// Creates a new edge.
    ///
    /// ```
    /// use tdgraph_graph::types::Edge;
    /// let e = Edge::new(1, 2, 0.5);
    /// assert_eq!((e.src, e.dst), (1, 2));
    /// ```
    #[must_use]
    pub fn new(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Self { src, dst, weight }
    }

    /// The edge with source and destination swapped (used to build
    /// transposed graphs for pull-direction gathers).
    #[must_use]
    pub fn reversed(self) -> Self {
        Self { src: self.dst, dst: self.src, weight: self.weight }
    }

    /// Whether the edge is a self-loop.
    #[must_use]
    pub fn is_self_loop(self) -> bool {
        self.src == self.dst
    }
}

/// Number of bytes per vertex state element (4 B, §2.2).
pub const STATE_BYTES: usize = 4;

/// Number of bytes per cache line in the simulated system (Table 1).
pub const CACHE_LINE_BYTES: usize = 64;

/// Vertex-state elements per cache line.
pub const STATES_PER_LINE: usize = CACHE_LINE_BYTES / STATE_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructor_and_accessors() {
        let e = Edge::new(3, 9, 2.5);
        assert_eq!(e.src, 3);
        assert_eq!(e.dst, 9);
        assert_eq!(e.weight, 2.5);
    }

    #[test]
    fn edge_reversed_swaps_endpoints_and_keeps_weight() {
        let e = Edge::new(3, 9, 2.5).reversed();
        assert_eq!(e.src, 9);
        assert_eq!(e.dst, 3);
        assert_eq!(e.weight, 2.5);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(4, 4, 1.0).is_self_loop());
        assert!(!Edge::new(4, 5, 1.0).is_self_loop());
    }

    #[test]
    fn line_geometry_matches_paper() {
        assert_eq!(STATES_PER_LINE, 16);
    }
}
