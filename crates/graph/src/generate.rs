//! Seeded synthetic graph generators.
//!
//! The paper's datasets come from SNAP; this reproduction cannot ship them,
//! so it substitutes seeded R-MAT graphs whose degree skew matches the
//! power-law property both TDGraph observations rely on (§2.4). A uniform
//! (Erdős–Rényi-style) generator is provided as a non-skewed control for
//! tests and ablations.

use crate::prng::Xoshiro256StarStar;
use crate::types::{Edge, VertexCount, VertexId};

/// Configuration of an R-MAT generator.
///
/// Produces `2^scale` vertices and `edge_factor * 2^scale` edges. The
/// default partition probabilities (`a=0.66, b=0.16, c=0.14, d=0.04`) are
/// steeper than Graph500's 0.57/0.19/0.19/0.05: at the reproduction's
/// scaled-down sizes, the steeper recursion restores the degree/access
/// skew the paper's full-size SNAP graphs exhibit (observation two, Fig
/// 4b) — power-law concentration grows with graph size, so matching the
/// *phenomenon* requires a steeper generator at small scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// PRNG seed.
    pub seed: u64,
    /// Maximum edge weight; weights are uniform integers in
    /// `{1, …, max_weight}` (the convention of the streaming-graph papers:
    /// SNAP graphs are unweighted, so small random integer weights are
    /// assigned — keeping improvement cascades deep, unlike continuous
    /// weights whose tiny deltas die out immediately).
    pub max_weight: u32,
}

impl RmatConfig {
    /// Creates a config with the default skew and seed 1.
    #[must_use]
    pub fn new(scale: u32, edge_factor: usize) -> Self {
        Self { scale, edge_factor, a: 0.66, b: 0.16, c: 0.14, seed: 1, max_weight: 64 }
    }

    /// Replaces the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the quadrant probabilities (the remaining mass goes to `d`).
    ///
    /// # Panics
    ///
    /// Panics if `a + b + c > 1` or any is negative.
    #[must_use]
    pub fn with_skew(mut self, a: f64, b: f64, c: f64) -> Self {
        assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0, "invalid R-MAT skew");
        self.a = a;
        self.b = b;
        self.c = c;
        self
    }

    /// Number of vertices this config generates.
    #[must_use]
    pub fn vertex_count(&self) -> VertexCount {
        1usize << self.scale
    }

    /// Number of edges this config aims to generate (before self-loop
    /// rejection).
    #[must_use]
    pub fn target_edge_count(&self) -> usize {
        self.edge_factor << self.scale
    }
}

/// R-MAT recursive-quadrant generator.
#[derive(Debug)]
pub struct Rmat {
    config: RmatConfig,
}

impl Rmat {
    /// Creates a generator for `config`.
    #[must_use]
    pub fn new(config: RmatConfig) -> Self {
        Self { config }
    }

    /// Generates the edge list. Self-loops are re-drawn; duplicate edges may
    /// remain (the [`crate::streaming::StreamingGraph`] collapses them).
    #[must_use]
    pub fn edges(&self) -> Vec<Edge> {
        let mut rng = Xoshiro256StarStar::new(self.config.seed);
        let n = self.config.vertex_count();
        let mut out = Vec::with_capacity(self.config.target_edge_count());
        for _ in 0..self.config.target_edge_count() {
            let mut e = self.draw_edge(&mut rng, n);
            let mut tries = 0;
            while e.is_self_loop() && tries < 16 {
                e = self.draw_edge(&mut rng, n);
                tries += 1;
            }
            if !e.is_self_loop() {
                out.push(e);
            }
        }
        out
    }

    fn draw_edge(&self, rng: &mut Xoshiro256StarStar, n: VertexCount) -> Edge {
        let (mut x0, mut x1) = (0usize, n);
        let (mut y0, mut y1) = (0usize, n);
        while x1 - x0 > 1 {
            let r = rng.next_f64();
            let (right, down) = if r < self.config.a {
                (false, false)
            } else if r < self.config.a + self.config.b {
                (true, false)
            } else if r < self.config.a + self.config.b + self.config.c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                y0 = ym;
            } else {
                y1 = ym;
            }
            if down {
                x0 = xm;
            } else {
                x1 = xm;
            }
        }
        let w = (rng.next_below(u64::from(self.config.max_weight)) + 1) as f32;
        Edge::new(x0 as VertexId, y0 as VertexId, w)
    }
}

/// Clustered R-MAT: `clusters` R-MAT communities of `2^scale` vertices
/// each, arranged in a ring and joined by sparse random bridges.
///
/// Pure R-MAT graphs have diameter ≈ log₂(|V|), far below the diameters the
/// paper's SNAP datasets report (Table 2: 9–44). Real social graphs get
/// their long effective diameter from community structure with sparse
/// bridges; this generator reproduces that, giving the propagation
/// *dispersion* (different roots' cascades arriving at common vertices at
/// different times) that observation one of the paper rests on. The
/// diameter grows linearly with `clusters` while each community keeps the
/// power-law skew of observation two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredRmat {
    /// Per-community R-MAT configuration.
    pub community: RmatConfig,
    /// Number of communities in the ring.
    pub clusters: usize,
    /// Directed bridge edges between each pair of adjacent communities.
    pub bridges_per_link: usize,
}

impl ClusteredRmat {
    /// Creates a clustered generator.
    ///
    /// # Panics
    ///
    /// Panics if `clusters == 0`.
    #[must_use]
    pub fn new(community: RmatConfig, clusters: usize, bridges_per_link: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        Self { community, clusters, bridges_per_link }
    }

    /// Total vertex count.
    #[must_use]
    pub fn vertex_count(&self) -> VertexCount {
        self.community.vertex_count() * self.clusters
    }

    /// Generates the edge list: `clusters` independent R-MAT communities
    /// (distinct seeds) plus ring bridges in both directions.
    #[must_use]
    pub fn edges(&self) -> Vec<Edge> {
        let per = self.community.vertex_count();
        let mut out = Vec::new();
        for c in 0..self.clusters {
            let cfg = self.community.with_seed(self.community.seed.wrapping_add(c as u64));
            let base = (c * per) as VertexId;
            for e in Rmat::new(cfg).edges() {
                out.push(Edge::new(e.src + base, e.dst + base, e.weight));
            }
        }
        let mut rng = Xoshiro256StarStar::new(self.community.seed ^ 0xB21_D6E5);
        for c in 0..self.clusters {
            let here = (c * per) as VertexId;
            let next = (((c + 1) % self.clusters) * per) as VertexId;
            for _ in 0..self.bridges_per_link {
                let src = here + rng.next_index(per) as VertexId;
                let dst = next + rng.next_index(per) as VertexId;
                let w = (rng.next_below(u64::from(self.community.max_weight)) + 1) as f32;
                out.push(Edge::new(src, dst, w));
                // A sparser reverse bridge keeps the ring weakly cyclic.
                if rng.next_bool(0.5) {
                    let rsrc = next + rng.next_index(per) as VertexId;
                    let rdst = here + rng.next_index(per) as VertexId;
                    out.push(Edge::new(rsrc, rdst, w));
                }
            }
        }
        out
    }
}

/// Uniform random digraph: `edge_count` edges drawn uniformly over all
/// non-loop vertex pairs. No degree skew — the control case.
#[derive(Debug)]
pub struct Uniform {
    vertex_count: VertexCount,
    edge_count: usize,
    seed: u64,
    max_weight: u32,
}

impl Uniform {
    /// Creates a uniform generator.
    ///
    /// # Panics
    ///
    /// Panics if `vertex_count < 2` and `edge_count > 0`.
    #[must_use]
    pub fn new(vertex_count: VertexCount, edge_count: usize, seed: u64) -> Self {
        assert!(
            edge_count == 0 || vertex_count >= 2,
            "uniform generation needs at least 2 vertices"
        );
        Self { vertex_count, edge_count, seed, max_weight: 4 }
    }

    /// Generates the edge list (self-loops excluded, duplicates possible).
    #[must_use]
    pub fn edges(&self) -> Vec<Edge> {
        let mut rng = Xoshiro256StarStar::new(self.seed);
        let mut out = Vec::with_capacity(self.edge_count);
        for _ in 0..self.edge_count {
            let src = rng.next_index(self.vertex_count) as VertexId;
            let mut dst = rng.next_index(self.vertex_count) as VertexId;
            while dst == src {
                dst = rng.next_index(self.vertex_count) as VertexId;
            }
            let w = (rng.next_below(u64::from(self.max_weight)) + 1) as f32;
            out.push(Edge::new(src, dst, w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let cfg = RmatConfig::new(8, 8).with_seed(99);
        let a = Rmat::new(cfg).edges();
        let b = Rmat::new(cfg).edges();
        assert_eq!(a, b);
        let c = Rmat::new(cfg.with_seed(100)).edges();
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_respects_bounds_and_rejects_self_loops() {
        let cfg = RmatConfig::new(7, 8).with_seed(3);
        for e in Rmat::new(cfg).edges() {
            assert!((e.src as usize) < cfg.vertex_count());
            assert!((e.dst as usize) < cfg.vertex_count());
            assert!(!e.is_self_loop());
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn rmat_produces_skewed_degrees() {
        let cfg = RmatConfig::new(10, 16).with_seed(5);
        let edges = Rmat::new(cfg).edges();
        let g = Csr::from_edges(cfg.vertex_count(), &edges);
        let mut degrees: Vec<usize> =
            (0..g.vertex_count() as VertexId).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|x, y| y.cmp(x));
        let top1pct: usize = degrees.iter().take(degrees.len() / 100).sum();
        let total: usize = degrees.iter().sum();
        // Power-law skew: top 1% of vertices should own far more than 1% of
        // edges (observation two of the paper rests on this).
        assert!(
            top1pct as f64 > 0.10 * total as f64,
            "top-1% vertices own only {top1pct}/{total} edges — not skewed"
        );
    }

    #[test]
    fn uniform_is_not_skewed_like_rmat() {
        let n = 1024;
        let edges = Uniform::new(n, n * 16, 7).edges();
        let g = Csr::from_edges(n, &edges);
        let mut degrees: Vec<usize> =
            (0..g.vertex_count() as VertexId).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|x, y| y.cmp(x));
        let top1pct: usize = degrees.iter().take(degrees.len() / 100).sum();
        let total: usize = degrees.iter().sum();
        assert!((top1pct as f64) < 0.05 * total as f64);
    }

    #[test]
    fn with_skew_validates() {
        let ok = RmatConfig::new(4, 2).with_skew(0.25, 0.25, 0.25);
        assert_eq!(ok.a, 0.25);
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT skew")]
    fn with_skew_rejects_excess_mass() {
        let _ = RmatConfig::new(4, 2).with_skew(0.6, 0.3, 0.3);
    }

    #[test]
    fn uniform_deterministic() {
        let a = Uniform::new(64, 256, 11).edges();
        let b = Uniform::new(64, 256, 11).edges();
        assert_eq!(a, b);
    }
}
